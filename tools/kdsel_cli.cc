// kdsel — command-line interface to the KDSelector system, mirroring
// the demo paper's three-step pipeline (selector learning, model
// selection, anomaly detection) plus dataset generation and selector
// management.
//
//   kdsel generate --out data/ --series 6 --seed 42
//   kdsel label    --data data/ --out perf.csv
//   kdsel train    --data data/ --perf perf.csv --dir selectors/
//                  --name mysel --backbone ResNet --pisl --mki --pa
//   kdsel list     --dir selectors/
//   kdsel detect   --dir selectors/ --name mysel --data data/
//                  --dataset YAHOO --index 0
//
// Each subcommand prints --help-style usage when required flags are
// missing.

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/stringutil.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "metrics/range_metrics.h"
#include "net/listener.h"
#include "net/server.h"
#include "net/signal.h"
#include "nn/kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "stream/protocol.h"
#include "stream/scorer.h"
#include "ts/dataset.h"
#include "tsad/detector.h"

namespace {

using namespace kdsel;
namespace fs = std::filesystem;

/// Minimal flag parser: --key value and boolean --key.
class Flags {
 public:
  Flags(int argc, char** argv, int begin) {
    for (int i = begin; i < argc; ++i) {
      std::string arg = argv[i];
      if (!StartsWith(arg, "--")) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
        continue;
      }
      std::string key = arg.substr(2);
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  /// Parses --key as a non-negative integer. Rejects garbage (empty
  /// value, trailing junk, negatives, overflow) with a usage error
  /// rather than silently proceeding with strtoull's 0.
  uint64_t GetInt(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    auto value = ParseUint64(it->second);
    if (!value.ok()) {
      std::fprintf(stderr, "invalid integer for --%s: '%s'\n", key.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return *value;
  }
  /// Parses --key as a double with the same strict-or-exit contract as
  /// GetInt.
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    auto value = ParseDouble(it->second);
    if (!value.ok()) {
      std::fprintf(stderr, "invalid number for --%s: '%s'\n", key.c_str(),
                   it->second.c_str());
      std::exit(2);
    }
    return *value;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Loads every dataset directory under `root` (each has a manifest.csv).
StatusOr<std::vector<ts::Dataset>> LoadAllDatasets(const std::string& root) {
  std::vector<ts::Dataset> datasets;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound("data directory not found: " + root);
  }
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    if (!fs::exists(entry.path() / "manifest.csv")) continue;
    KDSEL_ASSIGN_OR_RETURN(auto ds, ts::LoadDataset(entry.path().string()));
    ds.name = entry.path().filename().string();
    datasets.push_back(std::move(ds));
  }
  if (datasets.empty()) {
    return Status::NotFound("no datasets (manifest.csv) under " + root);
  }
  return datasets;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel generate --out DIR [--series N] [--min-len N]"
                 " [--max-len N] [--seed S] [--families A,B,...]\n");
    return 2;
  }
  datagen::BenchmarkOptions opts;
  opts.series_per_family = flags.GetInt("series", 6);
  opts.min_length = flags.GetInt("min-len", 512);
  opts.max_length = flags.GetInt("max-len", 1024);
  opts.seed = flags.GetInt("seed", 42);

  std::vector<datagen::Family> families;
  if (flags.Has("families")) {
    for (const auto& name : Split(flags.Get("families", ""), ',')) {
      auto family = datagen::FamilyFromName(name);
      if (!family.ok()) return Fail(family.status());
      families.push_back(*family);
    }
  } else {
    families = datagen::AllFamilies();
  }

  for (auto family : families) {
    auto dataset = datagen::GenerateFamilyDataset(family, opts);
    if (!dataset.ok()) return Fail(dataset.status());
    const std::string dir =
        (fs::path(out) / datagen::FamilyName(family)).string();
    Status saved = ts::SaveDataset(*dataset, dir);
    if (!saved.ok()) return Fail(saved);
    std::printf("wrote %zu series to %s\n", dataset->size(), dir.c_str());
  }
  return 0;
}

int CmdLabel(const Flags& flags) {
  const std::string data_dir = flags.Get("data", "");
  const std::string out = flags.Get("out", "");
  if (data_dir.empty() || out.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel label --data DIR --out FILE"
                 " [--metric AUC-PR] [--seed S]\n");
    return 2;
  }
  auto metric = metrics::MetricFromName(flags.Get("metric", "AUC-PR"));
  if (!metric.ok()) return Fail(metric.status());
  auto datasets = LoadAllDatasets(data_dir);
  if (!datasets.ok()) return Fail(datasets.status());
  auto models = tsad::BuildDefaultModelSet(flags.GetInt("seed", 42));

  CsvTable table;
  table.header = {"dataset", "series"};
  for (const auto& m : models) table.header.push_back(m->name());
  size_t done = 0, total = 0;
  for (const auto& ds : *datasets) total += ds.size();
  for (const auto& ds : *datasets) {
    for (const auto& series : ds.series) {
      auto perf = core::EvaluateDetectorsOnSeries(models, series, *metric);
      if (!perf.ok()) return Fail(perf.status());
      std::vector<std::string> row{ds.name, series.name()};
      for (float p : *perf) row.push_back(StrFormat("%.6f", p));
      table.rows.push_back(std::move(row));
      std::fprintf(stderr, "\rlabeling: %zu/%zu series", ++done, total);
    }
  }
  std::fprintf(stderr, "\n");
  Status written = WriteCsv(out, table);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %s (%zu rows, metric %s)\n", out.c_str(),
              table.rows.size(), metrics::MetricToString(*metric));
  return 0;
}

int CmdTrain(const Flags& flags) {
  const std::string data_dir = flags.Get("data", "");
  const std::string perf_path = flags.Get("perf", "");
  const std::string sel_dir = flags.Get("dir", "");
  const std::string name = flags.Get("name", "");
  if (data_dir.empty() || perf_path.empty() || sel_dir.empty() ||
      name.empty()) {
    std::fprintf(
        stderr,
        "usage: kdsel train --data DIR --perf FILE --dir SELECTOR_DIR"
        " --name NAME [--backbone ResNet] [--window 64] [--epochs 12]\n"
        "             [--pisl] [--mki] [--pa | --infobatch] [--seed S]\n"
        "             [--verbose]\n");
    return 2;
  }
  auto datasets = LoadAllDatasets(data_dir);
  if (!datasets.ok()) return Fail(datasets.status());
  auto perf_csv = ReadCsv(perf_path, /*has_header=*/true);
  if (!perf_csv.ok()) return Fail(perf_csv.status());

  std::map<std::string, std::vector<float>> perf_by_series;
  for (const auto& row : perf_csv->rows) {
    if (row.size() < 3) continue;
    std::vector<float> perf;
    for (size_t j = 2; j < row.size(); ++j) {
      auto value = ParseFloat(row[j]);
      if (!value.ok()) {
        return Fail(Status::IoError("bad performance cell: " +
                                    value.status().message()));
      }
      perf.push_back(*value);
    }
    perf_by_series[row[1]] = std::move(perf);
  }

  std::vector<ts::TimeSeries> series;
  std::vector<std::vector<float>> performance;
  for (auto& ds : *datasets) {
    for (auto& s : ds.series) {
      auto it = perf_by_series.find(s.name());
      if (it == perf_by_series.end()) continue;
      s.SetMeta("dataset", ds.name);
      s.SetMeta("domain", ds.domain_description);
      series.push_back(s);
      performance.push_back(it->second);
    }
  }
  if (series.empty()) {
    return Fail(Status::NotFound(
        "no series matched between the data directory and the perf file"));
  }
  std::printf("training on %zu labeled series\n", series.size());

  ts::WindowOptions window_opts;
  window_opts.length = flags.GetInt("window", 64);
  window_opts.stride = window_opts.length;
  auto data =
      core::BuildSelectorTrainingData(series, performance, window_opts);
  if (!data.ok()) return Fail(data.status());

  core::TrainerOptions opts;
  opts.backbone = flags.Get("backbone", "ResNet");
  opts.epochs = flags.GetInt("epochs", 12);
  opts.seed = flags.GetInt("seed", 1);
  opts.use_pisl = flags.Has("pisl");
  opts.use_mki = flags.Has("mki");
  if (flags.Has("pa")) opts.pruning.mode = core::PruningMode::kPa;
  if (flags.Has("infobatch")) {
    opts.pruning.mode = core::PruningMode::kInfoBatch;
  }
  opts.verbose = flags.Has("verbose");
  core::TrainStats stats;
  auto selector = core::TrainSelector(*data, opts, &stats);
  if (!selector.ok()) return Fail(selector.status());
  std::printf("trained %s: %.1fs, %zu/%zu sample visits\n",
              (*selector)->name().c_str(), stats.train_seconds,
              stats.samples_visited, stats.full_dataset_visits);

  core::SelectorManager manager(sel_dir);
  Status saved = manager.Save(**selector, name);
  if (!saved.ok()) return Fail(saved);
  std::printf("saved selector '%s' under %s\n", name.c_str(),
              sel_dir.c_str());
  return 0;
}

int CmdList(const Flags& flags) {
  const std::string sel_dir = flags.Get("dir", "");
  if (sel_dir.empty()) {
    std::fprintf(stderr, "usage: kdsel list --dir SELECTOR_DIR\n");
    return 2;
  }
  core::SelectorManager manager(sel_dir);
  auto names = manager.List();
  if (!names.ok()) return Fail(names.status());
  if (names->empty()) {
    std::printf("(no selectors in %s)\n", sel_dir.c_str());
    return 0;
  }
  for (const auto& name : *names) std::printf("%s\n", name.c_str());
  return 0;
}

int CmdDetect(const Flags& flags) {
  const std::string sel_dir = flags.Get("dir", "");
  const std::string name = flags.Get("name", "");
  const std::string data_dir = flags.Get("data", "");
  const std::string dataset_name = flags.Get("dataset", "");
  if (sel_dir.empty() || name.empty() || data_dir.empty() ||
      dataset_name.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel detect --dir SELECTOR_DIR --name NAME"
                 " --data DIR --dataset NAME [--index 0] [--window 64]\n");
    return 2;
  }
  core::SelectorManager manager(sel_dir);
  auto selector = manager.Load(name);
  if (!selector.ok()) return Fail(selector.status());

  auto dataset =
      ts::LoadDataset((fs::path(data_dir) / dataset_name).string());
  if (!dataset.ok()) return Fail(dataset.status());
  const size_t index = flags.GetInt("index", 0);
  if (index >= dataset->size()) {
    return Fail(Status::OutOfRange(
        StrFormat("dataset has %zu series, requested index %zu",
                  dataset->size(), index)));
  }

  auto models = tsad::BuildDefaultModelSet(flags.GetInt("seed", 42));
  ts::WindowOptions window_opts;
  window_opts.length = (*selector)->input_length();
  window_opts.stride = window_opts.length;
  auto result = core::DetectWithSelection(**selector, models,
                                          dataset->series[index],
                                          window_opts);
  if (!result.ok()) return Fail(result.status());

  std::printf("series: %s (%zu points)\n",
              dataset->series[index].name().c_str(),
              dataset->series[index].length());
  std::printf("selected model: %s\n", result->model_name.c_str());
  std::printf("votes:");
  for (size_t j = 0; j < result->votes.size(); ++j) {
    if (result->votes[j] > 0) {
      std::printf(" %s=%d", models[j]->name().c_str(), result->votes[j]);
    }
  }
  std::printf("\n");
  if (dataset->series[index].has_labels()) {
    std::printf("detection AUC-PR: %.4f\n", result->auc_pr);
  }
  if (flags.Has("scores-out")) {
    CsvTable table;
    table.header = {"score"};
    for (float s : result->anomaly_scores) {
      table.rows.push_back({StrFormat("%.6f", s)});
    }
    Status written = WriteCsv(flags.Get("scores-out", ""), table);
    if (!written.ok()) return Fail(written);
    std::printf("anomaly scores written to %s\n",
                flags.Get("scores-out", "").c_str());
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  const std::string sel_dir = flags.Get("dir", "");
  if (sel_dir.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel serve --dir SELECTOR_DIR [--workers 4]"
                 " [--max-batch 8] [--max-delay-us 1000]\n"
                 "             [--queue 1024] [--seed 42] [--preload]\n"
                 "             [--listen HOST:PORT [--shards 1]"
                 " [--slo-ms 0]]\n"
                 "speaks newline-delimited JSON on stdin/stdout by default;"
                 " --listen serves the same\n"
                 "protocol over TCP with SLO-aware load shedding;"
                 " see README section 'kdsel serve'\n");
    return 2;
  }
  auto registry = std::make_unique<serve::SelectorRegistry>(
      core::SelectorManager(sel_dir));
  if (flags.Has("preload")) {
    auto names = registry->DiskNames();
    if (!names.ok()) return Fail(names.status());
    for (const auto& name : *names) {
      Status loaded = registry->Load(name);
      if (!loaded.ok()) return Fail(loaded);
      std::fprintf(stderr, "preloaded selector '%s'\n", name.c_str());
    }
  }

  serve::ServerOptions opts;
  opts.num_workers = flags.GetInt("workers", 4);
  opts.max_batch = flags.GetInt("max-batch", 8);
  opts.max_delay_us = static_cast<int64_t>(flags.GetInt("max-delay-us", 1000));
  opts.queue_capacity = flags.GetInt("queue", 1024);
  opts.detector_seed = flags.GetInt("seed", 42);

  serve::InferenceServer server(registry.get(), opts);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);

  // SIGINT/SIGTERM drain in-flight requests and print final stats in
  // both transports instead of killing the process mid-reply.
  Status handlers = net::InstallShutdownHandlers();
  if (!handlers.ok()) return Fail(handlers);

  if (flags.Has("listen")) {
    net::NetServerOptions net_opts;
    net_opts.listen = flags.Get("listen", "127.0.0.1:7070");
    net_opts.shards = static_cast<size_t>(flags.GetInt("shards", 1));
    net_opts.slo_ms = flags.GetDouble("slo-ms", 0.0);
    net::NetServer net(&server, net_opts);
    Status listening = net.Start();
    if (!listening.ok()) {
      server.Stop();
      return Fail(listening);
    }
    std::fprintf(stderr,
                 "kdsel serve: listening on %s port %u, %zu shards,"
                 " slo %.3f ms, %zu workers, max_batch %zu\n",
                 net_opts.listen.c_str(), net.port(), net_opts.shards,
                 net_opts.slo_ms, opts.num_workers, opts.max_batch);
    net::WaitForShutdownSignal();
    std::fprintf(stderr, "kdsel serve: shutdown signal, draining\n");
    net.Stop();  // Flushes in-flight replies before workers stop.
    server.Stop();
    std::fprintf(stderr,
                 "kdsel serve: shed %llu (rate %.4f), final stats %s\n",
                 static_cast<unsigned long long>(net.shedder().shed_count()),
                 server.stats().ShedRate(),
                 server.stats().ToJsonString().c_str());
    return 0;
  }

  std::fprintf(stderr,
               "kdsel serve: %zu workers, max_batch %zu, max_delay %lld us,"
               " queue %zu — reading NDJSON from stdin\n",
               opts.num_workers, opts.max_batch,
               static_cast<long long>(opts.max_delay_us), opts.queue_capacity);

  // Handlers installed without SA_RESTART: a signal pops std::getline out
  // of its blocking read with eof set, so the loop drains and returns.
  Status session = serve::RunServeLoop(std::cin, std::cout, server);
  server.Stop();
  if (net::ShutdownRequested()) {
    std::fprintf(stderr, "kdsel serve: shutdown signal, drained\n");
  }
  std::fprintf(stderr, "kdsel serve: final stats %s\n",
               server.stats().ToJsonString().c_str());
  if (!session.ok()) return Fail(session);
  return 0;
}

/// One-shot telemetry client: connects to a running `kdsel serve
/// --listen` instance, issues one "ops" request and prints the reply.
/// The prometheus view unwraps the JSON envelope and prints the raw
/// exposition text, so the output pipes straight into a scraper.
int CmdOps(const Flags& flags) {
  const std::string connect = flags.Get("connect", "");
  const std::string view = flags.Get("view", "snapshot");
  if (connect.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel ops --connect HOST:PORT"
                 " [--view snapshot|flight|prometheus] [--id 0]\n"
                 "fetches live telemetry from a running"
                 " 'kdsel serve --listen' instance:\n"
                 "  snapshot    server stats + metrics + shedder state"
                 " (JSON)\n"
                 "  flight      flight-recorder dump: recent and slowest"
                 " requests (JSON)\n"
                 "  prometheus  metrics in Prometheus text exposition"
                 " format\n");
    return 2;
  }
  if (view != "snapshot" && view != "flight" && view != "prometheus") {
    std::fprintf(stderr,
                 "invalid --view '%s' (expected snapshot, flight or"
                 " prometheus)\n",
                 view.c_str());
    return 2;
  }
  auto host_port = net::ParseHostPort(connect);
  if (!host_port.ok()) return Fail(host_port.status());
  auto connected = net::ConnectTcp(*host_port);
  if (!connected.ok()) return Fail(connected.status());
  const int fd = *connected;

  const std::string request =
      "{\"op\":\"ops\",\"id\":" +
      std::to_string(static_cast<int64_t>(flags.GetInt("id", 0))) +
      ",\"view\":\"" + view + "\"}\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = write(fd, request.data() + off, request.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      return Fail(Status::IoError(std::string("write: ") +
                                  std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }

  std::string reply;
  char buffer[64 * 1024];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  const size_t newline = reply.find('\n');
  if (newline == std::string::npos) {
    return Fail(Status::IoError("connection closed before a reply line"));
  }
  reply.resize(newline);

  if (view == "prometheus") {
    auto doc = serve::Json::Parse(reply);
    if (doc.ok() && doc->is_object() && doc->GetBool("ok", false)) {
      if (const serve::Json* text = doc->Find("prometheus");
          text != nullptr && text->is_string()) {
        std::fputs(text->as_string().c_str(), stdout);
        return 0;
      }
    }
    // Not the expected envelope (likely a structured error): fall
    // through and print the raw reply line.
  }
  std::printf("%s\n", reply.c_str());
  return 0;
}

int CmdStream(const Flags& flags) {
  const std::string sel_dir = flags.Get("dir", "");
  const std::string selector = flags.Get("selector", "");
  if (sel_dir.empty() || selector.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel stream --dir SELECTOR_DIR --selector NAME"
                 " [--window 256] [--rescore 128]\n"
                 "             [--drift-check 16] [--drift-threshold 16.0]"
                 " [--drift-calibration 64]\n"
                 "             [--drift-patience 3] [--batch 256] [--seed 42]"
                 " [--preload]\n"
                 "speaks newline-delimited JSON on stdin/stdout;"
                 " see README section 'kdsel stream'\n");
    return 2;
  }
  auto registry = std::make_unique<serve::SelectorRegistry>(
      core::SelectorManager(sel_dir));
  if (flags.Has("preload")) {
    auto names = registry->DiskNames();
    if (!names.ok()) return Fail(names.status());
    for (const auto& name : *names) {
      Status loaded = registry->Load(name);
      if (!loaded.ok()) return Fail(loaded);
      std::fprintf(stderr, "preloaded selector '%s'\n", name.c_str());
    }
  }

  stream::StreamOptions opts;
  opts.selector = selector;
  opts.window = flags.GetInt("window", 256);
  opts.rescore_interval = flags.GetInt("rescore", 128);
  opts.drift_check_interval = flags.GetInt("drift-check", 16);
  opts.drift.threshold = flags.GetDouble("drift-threshold", 16.0);
  opts.drift.calibration = flags.GetInt("drift-calibration", 64);
  opts.drift.patience = flags.GetInt("drift-patience", 3);
  // Selected model indices map onto the default TSAD model set; resolve
  // their display names so events carry "iforest" rather than "model_3".
  const uint64_t seed = flags.GetInt("seed", 42);
  for (const auto& model : tsad::BuildDefaultModelSet(seed)) {
    opts.model_names.push_back(model->name());
  }

  stream::StreamScorer scorer(registry.get(), opts);
  std::fprintf(stderr,
               "kdsel stream: selector '%s', window %zu, rescore every %zu"
               " points, drift check every %zu — reading NDJSON from stdin\n",
               selector.c_str(), opts.window, opts.rescore_interval,
               opts.drift_check_interval);

  // Installed without SA_RESTART so SIGINT/SIGTERM pop the loop's
  // blocking getline with eof set: the session drains buffered events
  // and the final stats line below still prints.
  Status handlers = net::InstallShutdownHandlers();
  if (!handlers.ok()) return Fail(handlers);

  stream::StreamLoopOptions loop_opts;
  loop_opts.max_batch = flags.GetInt("batch", 256);
  Status session =
      stream::RunStreamLoop(std::cin, std::cout, scorer, *registry, loop_opts);
  if (net::ShutdownRequested()) {
    std::fprintf(stderr, "kdsel stream: shutdown signal, drained\n");
  }
  std::fprintf(stderr, "kdsel stream: final stats series=%zu points=%zu\n",
               scorer.series_count(), scorer.points_ingested());
  if (!session.ok()) return Fail(session);
  return 0;
}

/// Runs a small fully in-memory pipeline (synthetic data -> detector
/// performance matrix -> selector training with PISL+MKI+PA) with span
/// recording on, and writes the chrome://tracing JSON. The same spans
/// fire in any run via KDSEL_TRACE; this subcommand is the zero-setup
/// way to get a representative trace.
int CmdTrace(const Flags& flags) {
  const std::string out_path = flags.Get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel trace --out TRACE_JSON [--epochs 4]"
                 " [--series 8] [--window 64] [--seed 7]\n"
                 "       [--metrics-out METRICS_JSON]\n");
    return 2;
  }
  const size_t epochs = flags.GetInt("epochs", 4);
  const size_t max_series = flags.GetInt("series", 8);
  const uint64_t seed = flags.GetInt("seed", 7);

  datagen::BenchmarkOptions gen;
  gen.series_per_family = 1;
  gen.min_length = 400;
  gen.max_length = 800;
  gen.seed = seed;
  auto datasets = datagen::GenerateBenchmark(gen);
  if (!datasets.ok()) return Fail(datasets.status());

  std::vector<ts::TimeSeries> series;
  for (auto& ds : *datasets) {
    for (auto& s : ds.series) {
      if (series.size() >= max_series) break;
      s.SetMeta("dataset", ds.name);
      s.SetMeta("domain", ds.domain_description);
      series.push_back(std::move(s));
    }
  }
  auto models = tsad::BuildDefaultModelSet(seed);

  obs::StartTracing();

  std::vector<const ts::TimeSeries*> series_ptrs;
  for (const auto& s : series) series_ptrs.push_back(&s);
  auto performance = core::EvaluatePerformanceMatrix(models, series_ptrs);
  if (!performance.ok()) return Fail(performance.status());

  ts::WindowOptions window_opts;
  window_opts.length = flags.GetInt("window", 64);
  window_opts.stride = window_opts.length;
  auto data =
      core::BuildSelectorTrainingData(series, *performance, window_opts);
  if (!data.ok()) return Fail(data.status());

  core::TrainerOptions opts;
  opts.epochs = epochs;
  opts.seed = seed;
  opts.use_pisl = true;
  opts.use_mki = true;
  opts.pruning.mode = core::PruningMode::kPa;
  opts.verbose = flags.Has("verbose");
  core::TrainStats stats;
  auto selector = core::TrainSelector(*data, opts, &stats);
  if (!selector.ok()) return Fail(selector.status());

  obs::StopTracing();
  Status written = obs::WriteChromeTrace(out_path);
  if (!written.ok()) return Fail(written);
  std::printf("trained %s in %.1fs (%zu windows, %zu epochs)\n",
              (*selector)->name().c_str(), stats.train_seconds,
              data->windows.size(), epochs);
  std::printf("wrote %zu spans to %s (%llu dropped)"
              " — load in chrome://tracing or ui.perfetto.dev\n",
              obs::CollectTraceEvents().size(), out_path.c_str(),
              static_cast<unsigned long long>(obs::DroppedTraceEvents()));
  if (flags.Has("metrics-out")) {
    const std::string metrics_path = flags.Get("metrics-out", "");
    std::ofstream metrics_out(metrics_path);
    metrics_out << obs::MetricsRegistry::Global().SnapshotJson() << "\n";
    if (!metrics_out.good()) {
      return Fail(Status::IoError("cannot write " + metrics_path));
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}

/// Post-training int8 quantization of a saved selector. Calibration
/// sweeps inference over windows drawn from every synthetic family, so
/// the recorded activation ranges cover the benchmark's full input
/// distribution. The result is saved as `<name>.int8` next to the fp32
/// original — the serving registry treats it as an independent entry,
/// so both variants can be resident (and hot-reloaded) simultaneously.
int CmdQuantize(const Flags& flags) {
  const std::string sel_dir = flags.Get("dir", "");
  const std::string name = flags.Get("name", "");
  if (sel_dir.empty() || name.empty()) {
    std::fprintf(stderr,
                 "usage: kdsel quantize --dir SELECTOR_DIR --name NAME"
                 " [--out NAME.int8] [--calib-series 2] [--seed 7]\n");
    return 2;
  }
  const std::string out_name = flags.Get("out", name + ".int8");
  core::SelectorManager manager(sel_dir);
  auto selector = manager.Load(name);
  if (!selector.ok()) return Fail(selector.status());

  datagen::BenchmarkOptions gen;
  gen.series_per_family = flags.GetInt("calib-series", 2);
  gen.min_length = 400;
  gen.max_length = 800;
  gen.seed = flags.GetInt("seed", 7);
  auto datasets = datagen::GenerateBenchmark(gen);
  if (!datasets.ok()) return Fail(datasets.status());

  ts::WindowOptions window_opts;
  window_opts.length = (*selector)->input_length();
  window_opts.stride = window_opts.length;
  std::vector<std::vector<float>> calibration;
  for (const auto& ds : *datasets) {
    for (const auto& s : ds.series) {
      auto windows = ts::ExtractWindows(s, 0, window_opts);
      if (!windows.ok()) return Fail(windows.status());
      for (auto& w : *windows) calibration.push_back(std::move(w.values));
    }
  }
  std::printf("calibrating on %zu windows from %zu datasets\n",
              calibration.size(), datasets->size());

  auto quantized = (*selector)->QuantizeInt8(calibration);
  if (!quantized.ok()) return Fail(quantized.status());
  Status saved = manager.Save(**quantized, out_name);
  if (!saved.ok()) return Fail(saved);
  std::printf("saved int8 selector '%s' under %s\n", out_name.c_str(),
              sel_dir.c_str());
  return 0;
}

int CmdVersion() {
  const nn::kernels::Ops& ops = nn::kernels::Dispatch();
  std::string available;
  std::string int8_impls;
  for (nn::kernels::Variant v : nn::kernels::SupportedVariants()) {
    if (!available.empty()) available += " ";
    available += nn::kernels::VariantName(v);
    if (!int8_impls.empty()) int8_impls += " ";
    int8_impls += nn::kernels::VariantName(v);
    int8_impls += "=";
    int8_impls += nn::kernels::GetOps(v).i8_impl;
  }
  std::printf("kdsel (KDSelector reproduction)\n");
  std::printf("simd variant:       %s%s\n", ops.name,
              std::getenv("KDSEL_SIMD") != nullptr ? " (from KDSEL_SIMD)"
                                                   : "");
  std::printf("variants available: %s\n", available.c_str());
  std::printf("int8 kernels:       %s\n", int8_impls.c_str());
  std::printf("threads:            %zu\n", ThreadPool::Global().threads());
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "kdsel — TSAD model selection with KDSelector\n"
      "subcommands:\n"
      "  generate   synthesize benchmark datasets to a directory\n"
      "  label      run the 12-model TSAD set, write the performance CSV\n"
      "  train      learn a selector (optionally +PISL/+MKI/+PA) and save\n"
      "  list       list saved selectors\n"
      "  detect     select a model for a series and run the detection\n"
      "  serve      long-lived inference server (NDJSON on stdin/stdout)\n"
      "  ops        fetch live telemetry from a running TCP server\n"
      "  stream     online scorer: incremental features + drift-triggered"
      " re-selection\n"
      "  quantize   int8-quantize a saved selector (served as NAME.int8)\n"
      "  trace      record a chrome://tracing profile of a small training "
      "run\n"
      "  version    print the active SIMD kernel variant and thread count\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string cmd = argv[1];
  // KDSEL_TRACE=<path>: record spans for the whole invocation and write
  // the chrome-trace JSON at exit (works for every subcommand).
  obs::InitTracingFromEnv();
  if (cmd == "version" || cmd == "--version") return CmdVersion();
  Flags flags(argc, argv, 2);
  if (!flags.ok()) return 2;
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "label") return CmdLabel(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "list") return CmdList(flags);
  if (cmd == "detect") return CmdDetect(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "ops") return CmdOps(flags);
  if (cmd == "stream") return CmdStream(flags);
  if (cmd == "quantize") return CmdQuantize(flags);
  if (cmd == "trace") return CmdTrace(flags);
  PrintUsage();
  return 2;
}
