#!/usr/bin/env python3
"""Schema check for a METRICS_*.json snapshot written by a bench binary.

CI runs this after `bench_micro --report` / `bench_streaming --report` to
catch silent instrumentation regressions: if a refactor drops a metric
registration (or renames it outside the kdsel.<layer>.<name> convention),
the snapshot loses the key and this script fails the job.

Only metrics the corresponding bench path actually exercises are
required -- trainer and pruning metrics belong to `kdsel trace` runs.
The `--profile` flag picks the required set: `micro` (default) for
bench_micro's parallel/kernel paths, `stream` for bench_streaming's
kdsel.stream.* instrumentation.

Usage: check_metrics_snapshot.py [--profile micro|stream] METRICS_x.json
"""

import json
import sys

# (section, metric name) pairs that a bench run must have populated, per
# profile. Counters/gauges map to numbers, histograms to summary dicts.
REQUIRED_BY_PROFILE = {
    "micro": [
        ("counters", "kdsel.parallel.jobs"),
        ("counters", "kdsel.parallel.chunks"),
        ("counters", "kdsel.nn.workspace.pool_hits"),
        ("counters", "kdsel.nn.workspace.pool_misses"),
        ("gauges", "kdsel.parallel.threads"),
        ("gauges", "kdsel.nn.kernel_variant"),
        ("histograms", "kdsel.parallel.job_us"),
    ],
    "stream": [
        ("counters", "kdsel.stream.points"),
        ("counters", "kdsel.stream.rescores"),
        ("counters", "kdsel.stream.recomputes"),
        ("counters", "kdsel.stream.drift_events"),
        ("counters", "kdsel.stream.selection_changes"),
        ("gauges", "kdsel.stream.series"),
        ("histograms", "kdsel.stream.rescore_us"),
    ],
}

HISTOGRAM_KEYS = ["count", "samples", "min", "max", "mean", "p50", "p95", "p99"]


def main(argv):
    args = argv[1:]
    profile = "micro"
    if args and args[0] == "--profile":
        if len(args) < 2 or args[1] not in REQUIRED_BY_PROFILE:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        profile = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)

    errors = []
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            errors.append(f"missing section '{section}'")
    for section, name in REQUIRED_BY_PROFILE[profile]:
        value = snapshot.get(section, {}).get(name)
        if value is None:
            errors.append(f"missing {section[:-1]} '{name}'")
        elif section == "histograms":
            for key in HISTOGRAM_KEYS:
                if key not in value:
                    errors.append(f"histogram '{name}' missing key '{key}'")
        elif not isinstance(value, (int, float)):
            errors.append(f"{section[:-1]} '{name}' is not numeric: {value!r}")

    # Names outside the convention are almost always typos.
    for section in ("counters", "gauges", "histograms"):
        for name in snapshot.get(section, {}):
            if not name.startswith("kdsel."):
                errors.append(
                    f"{section[:-1]} '{name}' violates kdsel.<layer>.<name>"
                )

    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        return 1
    total = sum(len(snapshot.get(s, {})) for s in
                ("counters", "gauges", "histograms"))
    print(f"{path}: ok ({total} metrics, all required keys present)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
