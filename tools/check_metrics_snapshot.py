#!/usr/bin/env python3
"""Schema check for a METRICS_*.json snapshot written by a bench binary.

CI runs this after `bench_micro --report` / `bench_streaming --report` to
catch silent instrumentation regressions: if a refactor drops a metric
registration (or renames it outside the kdsel.<layer>.<name> convention),
the snapshot loses the key and this script fails the job.

Only metrics the corresponding bench path actually exercises are
required -- trainer and pruning metrics belong to `kdsel trace` runs.
The `--profile` flag picks the required set: `micro` (default) for
bench_micro's parallel/kernel paths, `stream` for bench_streaming's
kdsel.stream.* instrumentation.

`--profile kernels` instead validates a BENCH_kernels.json written by
`bench_micro --report-kernels`: every dispatch variant that reports at
all must carry the full workload set including the int8 rows
(i8_matmul_256, selector_forward_int8) with their speedup_vs_fp32
metric, and no row may smuggle in a non-positive speedup_vs_1t (the
writer omits the key when there is no 1-thread baseline).

`--profile serving` validates a BENCH_serving.json written by
bench_serving: every row must carry the latency percentiles
(p50/p99/p999), throughput and shed counters, and any row named
overload* must actually have shed requests -- an overload run that
sheds nothing means the SLO admission path silently stopped firing.

`--profile ops` validates a live-telemetry snapshot saved from
`kdsel ops --connect HOST:PORT` (one NDJSON reply line). The envelope
must be ok:true with stats (including shed/shed_rate), a shedder
object, and a metrics snapshot where every per-stage request histogram
(kdsel.net.stage.* and kdsel.net.e2e) is present AND non-empty: a
stage histogram with zero samples under load means the request-tracing
path silently stopped stamping that stage.

Usage: check_metrics_snapshot.py [--profile micro|stream] METRICS_x.json
       check_metrics_snapshot.py --profile kernels BENCH_kernels.json
       check_metrics_snapshot.py --profile serving BENCH_serving.json
       check_metrics_snapshot.py --profile ops ops_snapshot.json
"""

import json
import sys

# (section, metric name) pairs that a bench run must have populated, per
# profile. Counters/gauges map to numbers, histograms to summary dicts.
REQUIRED_BY_PROFILE = {
    "micro": [
        ("counters", "kdsel.parallel.jobs"),
        ("counters", "kdsel.parallel.chunks"),
        ("counters", "kdsel.nn.workspace.pool_hits"),
        ("counters", "kdsel.nn.workspace.pool_misses"),
        ("gauges", "kdsel.parallel.threads"),
        ("gauges", "kdsel.nn.kernel_variant"),
        ("histograms", "kdsel.parallel.job_us"),
    ],
    "stream": [
        ("counters", "kdsel.stream.points"),
        ("counters", "kdsel.stream.rescores"),
        ("counters", "kdsel.stream.recomputes"),
        ("counters", "kdsel.stream.drift_events"),
        ("counters", "kdsel.stream.selection_changes"),
        ("gauges", "kdsel.stream.series"),
        ("histograms", "kdsel.stream.rescore_us"),
    ],
}

HISTOGRAM_KEYS = [
    "count", "samples", "min", "max", "mean", "p50", "p95", "p99", "p999",
]

# Workloads every reporting dispatch variant must measure at 1 thread in
# BENCH_kernels.json. The int8 rows are load-bearing: dropping them
# would silently retire the quantized-inference perf tracking.
KERNEL_WORKLOADS = [
    "matmul_256",
    "i8_matmul_256",
    "conv1d_forward",
    "selector_forward_fp32",
    "selector_forward_int8",
]

# (workload prefix, required metrics key) for kernel report rows.
KERNEL_REQUIRED_METRICS = [
    ("i8_matmul_256:", "speedup_vs_fp32"),
    ("i8_matmul_256:", "speedup_vs_scalar"),
    ("selector_forward_int8:", "speedup_vs_fp32"),
]


def check_bench_kernels(path, snapshot):
    errors = []
    entries = snapshot.get("entries")
    if not isinstance(entries, list) or not entries:
        return [f"{path}: missing or empty 'entries'"]
    variants = sorted(
        {e["name"].split(":", 1)[1]
         for e in entries if ":" in e.get("name", "")}
    )
    if "scalar" not in variants:
        errors.append(f"{path}: no scalar-variant rows (got {variants})")
    rows = {(e.get("name"), e.get("threads")) for e in entries}
    for variant in variants:
        for workload in KERNEL_WORKLOADS:
            if (f"{workload}:{variant}", 1) not in rows:
                errors.append(
                    f"{path}: missing 1-thread row '{workload}:{variant}'"
                )
    for e in entries:
        name = e.get("name", "?")
        speedup = e.get("speedup_vs_1t")
        if speedup is not None and not speedup > 0:
            errors.append(
                f"{path}: '{name}' has non-positive speedup_vs_1t "
                f"{speedup!r} (must be omitted without a baseline)"
            )
        metrics = e.get("metrics", {})
        for prefix, key in KERNEL_REQUIRED_METRICS:
            if name.startswith(prefix) and key not in metrics:
                errors.append(f"{path}: '{name}' missing metric '{key}'")
    return errors


# Metrics every BENCH_serving.json row must report. The percentile trio
# is the SLO evidence; shed/req_per_s are the load-shedding contract.
SERVING_REQUIRED_METRICS = [
    "req_per_s",
    "p50_ms",
    "p99_ms",
    "p999_ms",
    "shed",
    "shed_rate",
    "ok",
    "errors",
    "slo_ms",
    # From the driver's mid-run `ops` scrape: stage decomposition and
    # flight-recorder evidence. Missing keys mean the scrape went dark.
    "stage_p50_sum_us",
    "e2e_p50_us",
    "flight_recorded",
    "flight_slowest_us",
]


def check_bench_serving(path, snapshot):
    errors = []
    entries = snapshot.get("entries")
    if not isinstance(entries, list) or not entries:
        return [f"{path}: missing or empty 'entries'"]
    for e in entries:
        name = e.get("name", "?")
        metrics = e.get("metrics", {})
        for key in SERVING_REQUIRED_METRICS:
            if not isinstance(metrics.get(key), (int, float)):
                errors.append(
                    f"{path}: '{name}' missing numeric metric '{key}'"
                )
        if name.startswith("overload") and not metrics.get("shed", 0) > 0:
            errors.append(
                f"{path}: '{name}' shed nothing -- the SLO admission "
                "path never fired under engineered overload"
            )
        if not metrics.get("flight_recorded", 0) > 0:
            errors.append(
                f"{path}: '{name}' flight recorder saw no requests -- "
                "the ops scrape or the recording path is broken"
            )
        if metrics.get("errors", 0) != 0:
            errors.append(
                f"{path}: '{name}' reports {metrics['errors']} protocol "
                "errors (replies that were neither ok nor shed)"
            )
    return errors


# Per-request stage histograms the net layer must populate under load.
# An empty one means a stage stopped being stamped (or RecordFlushed
# stopped running), which is exactly the silent regression this guards.
OPS_STAGE_HISTOGRAMS = [
    "kdsel.net.stage.queue",
    "kdsel.net.stage.batch_wait",
    "kdsel.net.stage.compute",
    "kdsel.net.stage.write",
    "kdsel.net.e2e",
]

# Stats fields every ops snapshot must expose (mirrors the final-stats
# print of `kdsel serve`; shed_rate is the fraction form of shed).
OPS_REQUIRED_STATS = [
    "submitted",
    "completed",
    "failed",
    "shed",
    "shed_rate",
]

# Shedder-decision metrics the admission controller publishes.
OPS_SHEDDER_GAUGES = [
    "kdsel.net.shed_state",
    "kdsel.net.shed_window_p99_us",
]


def check_ops_snapshot(path, snapshot):
    errors = []
    if snapshot.get("ok") is not True:
        errors.append(f"{path}: reply is not ok:true")
        return errors
    stats = snapshot.get("stats")
    if not isinstance(stats, dict):
        errors.append(f"{path}: missing 'stats' object")
    else:
        for key in OPS_REQUIRED_STATS:
            if not isinstance(stats.get(key), (int, float)):
                errors.append(f"{path}: stats missing numeric '{key}'")
    shedder = snapshot.get("shedder")
    if not isinstance(shedder, dict):
        errors.append(
            f"{path}: missing 'shedder' object (stdin-mode snapshots have "
            "no shedder; scrape a TCP server via `kdsel ops --connect`)"
        )
    else:
        for key in ("state", "window_p99_us", "transitions", "shed"):
            if key not in shedder:
                errors.append(f"{path}: shedder missing '{key}'")
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"{path}: missing 'metrics' snapshot")
        return errors
    gauges = metrics.get("gauges", {})
    for name in OPS_SHEDDER_GAUGES:
        if not isinstance(gauges.get(name), (int, float)):
            errors.append(f"{path}: missing shedder gauge '{name}'")
    histograms = metrics.get("histograms", {})
    for name in OPS_STAGE_HISTOGRAMS:
        hist = histograms.get(name)
        if not isinstance(hist, dict):
            errors.append(f"{path}: missing stage histogram '{name}'")
            continue
        for key in HISTOGRAM_KEYS:
            if key not in hist:
                errors.append(f"{path}: histogram '{name}' missing '{key}'")
        if not hist.get("samples", 0) > 0:
            errors.append(
                f"{path}: stage histogram '{name}' is empty under load -- "
                "the request-tracing path stopped stamping this stage"
            )
    return errors


def main(argv):
    args = argv[1:]
    profile = "micro"
    if args and args[0] == "--profile":
        known = set(REQUIRED_BY_PROFILE) | {"kernels", "serving", "ops"}
        if len(args) < 2 or args[1] not in known:
            print(__doc__.strip(), file=sys.stderr)
            return 2
        profile = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    with open(path, "r", encoding="utf-8") as f:
        snapshot = json.load(f)

    if profile == "ops":
        errors = check_ops_snapshot(path, snapshot)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            return 1
        populated = sum(
            1 for name in OPS_STAGE_HISTOGRAMS
            if snapshot["metrics"]["histograms"][name]["samples"] > 0
        )
        print(
            f"{path}: ok ({populated}/{len(OPS_STAGE_HISTOGRAMS)} stage "
            "histograms populated, shedder state exported)"
        )
        return 0

    if profile == "serving":
        errors = check_bench_serving(path, snapshot)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            return 1
        print(
            f"{path}: ok ({len(snapshot['entries'])} rows, latency "
            "percentiles and shed accounting present)"
        )
        return 0

    if profile == "kernels":
        errors = check_bench_kernels(path, snapshot)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            return 1
        print(
            f"{path}: ok ({len(snapshot['entries'])} rows, int8 workloads "
            "present)"
        )
        return 0

    errors = []
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            errors.append(f"missing section '{section}'")
    for section, name in REQUIRED_BY_PROFILE[profile]:
        value = snapshot.get(section, {}).get(name)
        if value is None:
            errors.append(f"missing {section[:-1]} '{name}'")
        elif section == "histograms":
            for key in HISTOGRAM_KEYS:
                if key not in value:
                    errors.append(f"histogram '{name}' missing key '{key}'")
        elif not isinstance(value, (int, float)):
            errors.append(f"{section[:-1]} '{name}' is not numeric: {value!r}")

    # Names outside the convention are almost always typos.
    for section in ("counters", "gauges", "histograms"):
        for name in snapshot.get(section, {}):
            if not name.startswith("kdsel."):
                errors.append(
                    f"{section[:-1]} '{name}' violates kdsel.<layer>.<name>"
                )

    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        return 1
    total = sum(len(snapshot.get(s, {})) for s in
                ("counters", "gauges", "histograms"))
    print(f"{path}: ok ({total} metrics, all required keys present)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
