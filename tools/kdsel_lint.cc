// kdsel_lint: a dependency-free static checker for repo-specific rules.
//
// The compiler already enforces `[[nodiscard]]` on Status/StatusOr; this
// tool catches the classes of bugs the type system cannot see:
//
//   discarded-status        bare-statement call of a Status/StatusOr
//                           returning function (belt-and-braces next to
//                           the [[nodiscard]] compiler enforcement; also
//                           fires in code the compiler never builds,
//                           e.g. dead #ifdef branches)
//   unchecked-value         .value() on a StatusOr/optional with no
//                           ok()/has_value()/CHECK/ASSERT nearby
//   naked-new               raw `new` / malloc-family allocation instead
//                           of make_unique/make_shared/containers
//   raw-parse               std::sto*/ato*/strto* outside src/common/
//                           (use kdsel::ParseUint64 and friends, which
//                           return Status instead of throwing/UB).
//                           This includes wire input: NDJSON lines for
//                           `kdsel serve`/`kdsel stream` go through
//                           serve::Json::Parse, never hand-rolled
//                           substring + atoi/strtod extraction — raw C
//                           parsers accept trailing garbage and
//                           locale-dependent formats silently
//                           (tests/lint_fixtures/stream_ndjson.cc is
//                           the canonical catch)
//   nonreproducible-random  rand()/srand()/random_device/time(nullptr):
//                           all randomness must flow through kdsel::Rng
//                           with an explicit seed, or results stop being
//                           reproducible bit-for-bit
//   lock-across-score       a std::lock_guard/unique_lock/scoped_lock is
//                           live across a detector `Score(...)` call;
//                           scoring can take milliseconds and must never
//                           run under a lock on the serving path
//   raw-thread              std::thread/std::async outside src/common/
//                           (home of the shared pool) and src/serve/
//                           (long-lived serving workers); hot loops must
//                           go through kdsel::ParallelFor so thread
//                           counts and determinism stay centralized
//   raw-simd                <immintrin.h>/<x86intrin.h> includes, _mm*
//                           intrinsics or __m128/__m256/__m512 vector
//                           types outside src/nn/kernels/; all SIMD
//                           lives behind nn::kernels::Dispatch() so the
//                           scalar fallback and runtime CPU detection
//                           stay the single point of truth
//   raw-timing              std::chrono::steady_clock /
//                           high_resolution_clock outside src/obs/,
//                           src/common/ and bench/; production code
//                           times through obs::Clock/NowNs (or better,
//                           KDSEL_SPAN and obs::Histogram) so every
//                           duration shares one timebase
//
// Diagnostics print as `file:line: rule: message`, one per line, sorted.
// Exit code: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppressions: append `// kdsel-lint: allow(rule)` (comma-separated for
// several rules) to the offending line, or place the comment alone on
// the line directly above it. In --self-check mode, suppressing
// discarded-status outside tests/ is itself a finding: production code
// must never silence a dropped Status.
//
// Scanning: by default walks src/, tools/, bench/ and tests/ under
// --root (default: cwd), skipping tests/lint_fixtures/. Explicit file or
// directory arguments override the default set and are scanned verbatim
// (this is how lint_test points the tool at the fixtures).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string file;  // As reported: relative to root when possible.
  size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"discarded-status", "result of a Status/StatusOr call is discarded"},
    {"unchecked-value", ".value() without a nearby ok()/has_value() check"},
    {"naked-new", "raw new/malloc-family allocation"},
    {"raw-parse", "std::sto*/ato*/strto* outside src/common/"},
    {"nonreproducible-random", "unseeded randomness or wall-clock seeding"},
    {"lock-across-score", "mutex held across a detector Score() call"},
    {"raw-thread", "std::thread/std::async outside src/common/ and src/serve/"},
    {"raw-simd", "intrinsics or intrinsic headers outside src/nn/kernels/"},
    {"raw-timing",
     "steady_clock/high_resolution_clock outside src/obs/, src/common/ and "
     "bench/"},
};

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& rule : kRules) {
    if (name == rule.name) return true;
  }
  return false;
}

/// One source file, pre-processed for scanning.
struct SourceFile {
  std::string display_path;  // Path as printed in diagnostics.
  fs::path path;
  std::vector<std::string> raw;       // Original lines (1-based via index+1).
  std::vector<std::string> stripped;  // Comments/literals blanked out.
  // line number -> rules suppressed on that line.
  std::map<size_t, std::set<std::string>> suppressions;
  bool in_common = false;  // Under src/common/ (exempt from raw-parse).
  // Under src/common/ or src/serve/ (exempt from raw-thread: the pool
  // itself and the serving layer's long-lived workers live there).
  bool in_thread_zone = false;
  // Under src/nn/kernels/ (exempt from raw-simd: the dispatched kernel
  // variants are the one place intrinsics are allowed).
  bool in_kernels = false;
  // Under src/obs/, src/common/ or bench/ (exempt from raw-timing:
  // obs/clock.h wraps the clock, and benchmarks time themselves).
  bool in_timing_zone = false;
};

/// Replaces the contents of comments and string/char literals with
/// spaces so rule regexes never fire on prose or embedded test data.
/// Line structure (and therefore line numbers) is preserved.
std::string StripCommentsAndLiterals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // Delimiter of an active raw string, e.g. `)"`.
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim".
          size_t paren = text.find('(', i + 2);
          if (paren == std::string::npos) {
            out += c;
            break;
          }
          raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
          state = State::kRawString;
          for (size_t j = i; j <= paren; ++j) out += ' ';
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t j = 0; j < raw_delim.size(); ++j) out += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// Parses `// kdsel-lint: allow(rule-a, rule-b)` markers. A marker
/// suppresses matching rules on its own line; when the marker's line
/// carries no code, it also covers the next line.
void CollectSuppressions(SourceFile& file) {
  static const std::regex kAllow(R"(kdsel-lint:\s*allow\(([^)]*)\))");
  for (size_t i = 0; i < file.raw.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(file.raw[i], match, kAllow)) continue;
    // Unknown names are dropped: a typo'd allow() fails to suppress, so
    // the original diagnostic still fires and the typo is self-evident.
    std::set<std::string> rules;
    std::stringstream list(match[1].str());
    for (std::string rule; std::getline(list, rule, ',');) {
      const size_t begin = rule.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      const size_t end = rule.find_last_not_of(" \t");
      std::string name = rule.substr(begin, end - begin + 1);
      if (IsKnownRule(name)) rules.insert(std::move(name));
    }
    if (rules.empty()) continue;
    const size_t line = i + 1;
    file.suppressions[line].insert(rules.begin(), rules.end());
    const std::string& code = file.stripped[i];
    const bool comment_only =
        code.find_first_not_of(" \t") == std::string::npos;
    if (comment_only && i + 1 < file.raw.size()) {
      file.suppressions[line + 1].insert(rules.begin(), rules.end());
    }
  }
}

bool Suppressed(const SourceFile& file, size_t line, const std::string& rule) {
  auto it = file.suppressions.find(line);
  return it != file.suppressions.end() && it->second.count(rule) > 0;
}

class Linter {
 public:
  void AddFile(SourceFile file) { files_.push_back(std::move(file)); }

  std::vector<Diagnostic> Run() {
    CollectStatusFunctions();
    std::vector<Diagnostic> diagnostics;
    for (const SourceFile& file : files_) {
      CheckDiscardedStatus(file, diagnostics);
      CheckUncheckedValue(file, diagnostics);
      CheckNakedNew(file, diagnostics);
      CheckRawParse(file, diagnostics);
      CheckNonreproducibleRandom(file, diagnostics);
      CheckLockAcrossScore(file, diagnostics);
      CheckRawThread(file, diagnostics);
      CheckRawSimd(file, diagnostics);
      CheckRawTiming(file, diagnostics);
    }
    std::sort(diagnostics.begin(), diagnostics.end());
    return diagnostics;
  }

  size_t file_count() const { return files_.size(); }

 private:
  /// Pass 1: names of functions declared to return Status or StatusOr,
  /// harvested from every scanned file. Qualified definitions
  /// (`Status Foo::Bar(...)`) contribute their last component. A name
  /// that is ALSO declared somewhere with a non-Status return type
  /// (e.g. `void Fit` on Scaler vs `Status Fit` on selectors) is
  /// dropped: a line scanner cannot resolve the receiver's type, and
  /// the compiler's [[nodiscard]] enforcement already covers whichever
  /// overload actually returns Status.
  void CollectStatusFunctions() {
    static const std::regex kDecl(
        R"(\bStatus(?:Or\s*<[^;={}]*>)?\s+(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\()");
    static const std::regex kOtherDecl(
        R"(\b(?:void|bool|int|unsigned|long|float|double|char|auto|size_t|int64_t|uint64_t|int32_t|uint32_t)\s+(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\()");
    std::set<std::string> ambiguous;
    for (const SourceFile& file : files_) {
      for (const std::string& line : file.stripped) {
        for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
             it != std::sregex_iterator(); ++it) {
          status_functions_.insert((*it)[1].str());
        }
        for (auto it =
                 std::sregex_iterator(line.begin(), line.end(), kOtherDecl);
             it != std::sregex_iterator(); ++it) {
          ambiguous.insert((*it)[1].str());
        }
      }
    }
    for (const std::string& name : ambiguous) status_functions_.erase(name);
  }

  void CheckDiscardedStatus(const SourceFile& file,
                            std::vector<Diagnostic>& out) {
    // A call statement: optional `obj.` / `obj->` / `ns::` prefix chain,
    // then a known Status-returning name, immediately called.
    static const std::regex kCall(
        R"(^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*([A-Za-z_]\w*)\s*\()");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      const std::string& line = file.stripped[i];
      std::smatch match;
      if (!std::regex_search(line, match, kCall)) continue;
      const std::string name = match[1].str();
      if (status_functions_.count(name) == 0) continue;
      // Only statement starts: the previous code line must have ended a
      // statement or opened a block, otherwise this is a continuation
      // (argument list, condition, initializer...).
      if (!AtStatementStart(file, i)) continue;
      // The value is consumed when the line returns it, assigns it,
      // feeds a macro (KDSEL_RETURN_NOT_OK, EXPECT_*, ...) or is itself
      // a declaration (`Status Foo(` matches the call regex too).
      if (line.find("return") != std::string::npos) continue;
      if (line.find('=') != std::string::npos) continue;
      const size_t call_at = static_cast<size_t>(match.position(0)) +
                             match[0].str().find_first_not_of(" \t");
      if (HasConsumerBefore(line, call_at)) continue;
      if (LooksLikeDeclaration(line, name)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "discarded-status")) continue;
      std::string message = "result of Status-returning call '";
      message += name;
      message +=
          "' is discarded; check it, propagate it with "
          "KDSEL_RETURN_NOT_OK, or assert on it";
      out.push_back({file.display_path, line_no, "discarded-status",
                     std::move(message)});
    }
  }

  bool AtStatementStart(const SourceFile& file, size_t index) const {
    for (size_t back = index; back-- > 0;) {
      const std::string& prev = file.stripped[back];
      const size_t last = prev.find_last_not_of(" \t");
      if (last == std::string::npos) continue;  // Blank (or comment) line.
      const char c = prev[last];
      return c == ';' || c == '{' || c == '}' || c == ':';
    }
    return true;  // First code line of the file.
  }

  static bool HasConsumerBefore(const std::string& line, size_t call_at) {
    static const char* kConsumers[] = {
        "KDSEL_RETURN_NOT_OK", "KDSEL_ASSIGN_OR_RETURN", "KDSEL_CHECK",
        "KDSEL_DCHECK",        "ASSERT_",                "EXPECT_",
        "(void)",              "static_cast<void>",
    };
    const std::string head = line.substr(0, call_at + 1);
    for (const char* consumer : kConsumers) {
      if (head.find(consumer) != std::string::npos) return true;
    }
    return false;
  }

  static bool LooksLikeDeclaration(const std::string& line,
                                   const std::string& name) {
    // `Status Load(` / `StatusOr<T> Load(`: a type name directly before
    // the identifier means declaration, not call.
    const std::regex decl(R"(\bStatus(?:Or\s*<[^;={}]*>)?\s+(?:[A-Za-z_]\w*\s*::\s*)*)" +
                          name + R"(\s*\()");
    return std::regex_search(line, decl);
  }

  void CheckUncheckedValue(const SourceFile& file,
                           std::vector<Diagnostic>& out) const {
    static const std::regex kValue(R"((\.|->)\s*value\s*\(\s*\))");
    static const std::regex kEvidence(
        R"(\bok\s*\(|has_value|KDSEL_CHECK|KDSEL_DCHECK|ASSERT_|EXPECT_|KDSEL_RETURN_NOT_OK|value_or)");
    constexpr size_t kLookback = 8;
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      if (!std::regex_search(file.stripped[i], kValue)) continue;
      bool checked = false;
      const size_t first = i >= kLookback ? i - kLookback : 0;
      for (size_t j = first; j <= i && !checked; ++j) {
        checked = std::regex_search(file.stripped[j], kEvidence);
      }
      if (checked) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "unchecked-value")) continue;
      out.push_back({file.display_path, line_no, "unchecked-value",
                     ".value() without a nearby ok()/has_value() check "
                     "aborts on error; check first or propagate with "
                     "KDSEL_ASSIGN_OR_RETURN"});
    }
  }

  void CheckNakedNew(const SourceFile& file,
                     std::vector<Diagnostic>& out) const {
    static const std::regex kNew(R"(\bnew\s+[A-Za-z_(:<])");
    static const std::regex kAlloc(
        R"(\b(malloc|calloc|realloc|strdup|free)\s*\()");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      const std::string& line = file.stripped[i];
      std::smatch match;
      const bool hit_new = std::regex_search(line, kNew);
      const bool hit_alloc = std::regex_search(line, match, kAlloc);
      if (!hit_new && !hit_alloc) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "naked-new")) continue;
      std::string message = hit_new ? "raw 'new'" : "'";
      if (!hit_new) {
        message += match[1].str();
        message += "'";
      }
      message +=
          " allocation; use std::make_unique/std::make_shared or a "
          "container";
      out.push_back(
          {file.display_path, line_no, "naked-new", std::move(message)});
    }
  }

  void CheckRawParse(const SourceFile& file,
                     std::vector<Diagnostic>& out) const {
    if (file.in_common) return;  // common/ hosts the blessed wrappers.
    static const std::regex kParse(
        R"(\b(?:std\s*::\s*)?(stoi|stol|stoll|stoul|stoull|stof|stod|stold|atoi|atol|atoll|atof|strtol|strtoll|strtoul|strtoull|strtof|strtod)\s*\()");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(file.stripped[i], match, kParse)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "raw-parse")) continue;
      std::string message = "'";
      message += match[1].str();
      message +=
          "' outside common/: it throws or silently wraps; use "
          "kdsel::ParseUint64 (stringutil.h)";
      out.push_back(
          {file.display_path, line_no, "raw-parse", std::move(message)});
    }
  }

  void CheckNonreproducibleRandom(const SourceFile& file,
                                  std::vector<Diagnostic>& out) const {
    static const std::regex kRandom(
        R"(\b(rand|srand)\s*\(|\brandom_device\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      if (!std::regex_search(file.stripped[i], kRandom)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "nonreproducible-random")) continue;
      out.push_back({file.display_path, line_no, "nonreproducible-random",
                     "unseeded/wall-clock randomness breaks bit-for-bit "
                     "reproducibility; use kdsel::Rng with an explicit "
                     "seed"});
    }
  }

  void CheckLockAcrossScore(const SourceFile& file,
                            std::vector<Diagnostic>& out) const {
    static const std::regex kLock(
        R"(\b(?:std\s*::\s*)?(lock_guard|unique_lock|scoped_lock)\s*[<(])");
    static const std::regex kScore(R"((\.|->)\s*Score\s*\()");
    // Lock lifetimes follow scopes: a guard declared at depth D dies
    // when the brace depth drops below D.
    int depth = 0;
    std::vector<int> lock_depths;
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      const std::string& line = file.stripped[i];
      if (std::regex_search(line, kLock)) {
        // The guard lives until the block it was declared in (current
        // depth) closes, i.e. until depth drops below this value.
        lock_depths.push_back(depth);
      }
      if (!lock_depths.empty() && std::regex_search(line, kScore)) {
        const size_t line_no = i + 1;
        if (!Suppressed(file, line_no, "lock-across-score")) {
          out.push_back({file.display_path, line_no, "lock-across-score",
                         "detector Score() runs while a mutex guard is "
                         "live; scoring is slow and must happen off-lock "
                         "(clone or snapshot instead)"});
        }
      }
      for (const char c : line) {
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          while (!lock_depths.empty() && lock_depths.back() > depth) {
            lock_depths.pop_back();
          }
        }
      }
    }
  }

  void CheckRawThread(const SourceFile& file,
                      std::vector<Diagnostic>& out) const {
    if (file.in_thread_zone) return;
    // `std::this_thread` never matches: the alternation is anchored
    // right after `std::`.
    static const std::regex kThread(R"(\bstd\s*::\s*(thread|jthread|async)\b)");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(file.stripped[i], match, kThread)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "raw-thread")) continue;
      std::string message = "'std::";
      message += match[1].str();
      message +=
          "' outside src/common/ and src/serve/ bypasses the shared "
          "pool; use kdsel::ParallelFor or ThreadPool (common/parallel.h)";
      out.push_back(
          {file.display_path, line_no, "raw-thread", std::move(message)});
    }
  }

  void CheckRawSimd(const SourceFile& file,
                    std::vector<Diagnostic>& out) const {
    if (file.in_kernels) return;
    // Intrinsic headers (immintrin.h pulls in the whole family), _mm*
    // intrinsic calls, and the raw vector register types.
    static const std::regex kSimd(
        R"(#\s*include\s*[<"]\w*intrin\.h|\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:128|256|512)[di]?\b)");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      if (!std::regex_search(file.stripped[i], kSimd)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "raw-simd")) continue;
      out.push_back({file.display_path, line_no, "raw-simd",
                     "raw SIMD outside src/nn/kernels/ bypasses runtime "
                     "dispatch and the scalar fallback; add a kernel to "
                     "nn::kernels and call it through Dispatch()"});
    }
  }

  void CheckRawTiming(const SourceFile& file,
                      std::vector<Diagnostic>& out) const {
    if (file.in_timing_zone) return;
    static const std::regex kTiming(
        R"(\b(?:std\s*::\s*)?chrono\s*::\s*(steady_clock|high_resolution_clock)\b)");
    for (size_t i = 0; i < file.stripped.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(file.stripped[i], match, kTiming)) continue;
      const size_t line_no = i + 1;
      if (Suppressed(file, line_no, "raw-timing")) continue;
      std::string message = "'";
      message += match[1].str();
      message +=
          "' outside src/obs/, src/common/ and bench/; time through "
          "obs::Clock/NowNs (obs/clock.h) or record a span/histogram so "
          "all durations share one timebase";
      out.push_back(
          {file.display_path, line_no, "raw-timing", std::move(message)});
    }
  }

  std::vector<SourceFile> files_;
  std::set<std::string> status_functions_;
};

bool HasSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

/// Reads and pre-processes one file; returns false on IO error.
bool LoadFile(const fs::path& path, const fs::path& root, SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  out.path = path;
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  out.display_path =
      (ec || rel.empty()) ? path.string() : rel.generic_string();
  out.raw = SplitLines(text);
  out.stripped = SplitLines(StripCommentsAndLiterals(text));
  out.stripped.resize(out.raw.size());
  out.in_common =
      out.display_path.find("src/common/") != std::string::npos ||
      out.display_path.find("src\\common\\") != std::string::npos;
  out.in_thread_zone =
      out.in_common ||
      out.display_path.find("src/serve/") != std::string::npos ||
      out.display_path.find("src\\serve\\") != std::string::npos;
  out.in_kernels =
      out.display_path.find("src/nn/kernels/") != std::string::npos ||
      out.display_path.find("src\\nn\\kernels\\") != std::string::npos;
  out.in_timing_zone =
      out.in_common ||
      out.display_path.find("src/obs/") != std::string::npos ||
      out.display_path.find("src\\obs\\") != std::string::npos ||
      out.display_path.rfind("bench/", 0) == 0 ||
      out.display_path.rfind("bench\\", 0) == 0 ||
      out.display_path.find("/bench/") != std::string::npos;
  CollectSuppressions(out);
  return true;
}

void CollectFromDirectory(const fs::path& dir, const fs::path& root,
                          bool skip_fixtures, std::vector<fs::path>& out) {
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      if ((skip_fixtures && name == "lint_fixtures") || name == ".git" ||
          name.rfind("build", 0) == 0) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file() && HasSourceExtension(it->path())) {
      out.push_back(it->path());
    }
  }
  (void)root;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: kdsel_lint [--root DIR] [--self-check] [--list-rules] "
      "[paths...]\n"
      "  Scans src/ tools/ bench/ tests/ under --root (default: cwd),\n"
      "  or exactly the given files/directories. Prints\n"
      "  `file:line: rule: message` diagnostics; exit 1 when any fire.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool self_check = false;
  std::vector<fs::path> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules) {
        std::printf("%s: %s\n", rule.name, rule.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      explicit_paths.emplace_back(arg);
    }
  }

  std::error_code ec;
  root = fs::absolute(root, ec);
  std::vector<fs::path> files;
  if (explicit_paths.empty()) {
    for (const char* sub : {"src", "tools", "bench", "tests"}) {
      const fs::path dir = root / sub;
      if (fs::is_directory(dir, ec)) {
        CollectFromDirectory(dir, root, /*skip_fixtures=*/true, files);
      }
    }
    if (files.empty()) {
      std::fprintf(stderr,
                   "kdsel-lint: no sources under %s (wrong --root?)\n",
                   root.string().c_str());
      return 2;
    }
  } else {
    for (const fs::path& p : explicit_paths) {
      if (fs::is_directory(p, ec)) {
        CollectFromDirectory(p, root, /*skip_fixtures=*/false, files);
      } else if (fs::is_regular_file(p, ec)) {
        files.push_back(p);
      } else {
        std::fprintf(stderr, "kdsel-lint: no such file: %s\n",
                     p.string().c_str());
        return 2;
      }
    }
  }
  std::sort(files.begin(), files.end());

  Linter linter;
  std::vector<Diagnostic> extra;
  for (const fs::path& path : files) {
    SourceFile file;
    if (!LoadFile(path, root, file)) {
      std::fprintf(stderr, "kdsel-lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    // Self-check policy: silencing a dropped Status is only acceptable
    // in test code. Report the marker line itself (the suppression map
    // also carries next-line entries for comment-only markers).
    if (self_check && file.display_path.rfind("tests/", 0) != 0) {
      for (const auto& [line, rules] : file.suppressions) {
        if (rules.count("discarded-status") > 0 && line <= file.raw.size() &&
            file.raw[line - 1].find("kdsel-lint:") != std::string::npos) {
          extra.push_back({file.display_path, line, "discarded-status",
                           "suppressing discarded-status outside tests/ is "
                           "forbidden; handle or propagate the Status"});
        }
      }
    }
    linter.AddFile(std::move(file));
  }

  std::vector<Diagnostic> diagnostics = linter.Run();
  diagnostics.insert(diagnostics.end(), extra.begin(), extra.end());
  std::sort(diagnostics.begin(), diagnostics.end());
  for (const Diagnostic& d : diagnostics) {
    std::printf("%s:%zu: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (self_check || diagnostics.empty()) {
    std::fprintf(stderr, "kdsel-lint: %zu files scanned, %zu finding%s\n",
                 linter.file_count(), diagnostics.size(),
                 diagnostics.size() == 1 ? "" : "s");
  }
  return diagnostics.empty() ? 0 : 1;
}
