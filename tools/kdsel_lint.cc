// kdsel_lint: a dependency-free whole-program static checker for
// repo-specific rules.
//
// Architecture (see DESIGN.md "Static analysis architecture"):
//
//   tokenize   comment/string/char/raw-string aware lexer; records
//              suppression markers, #include lines and which lines
//              carry code. No std::regex anywhere: every rule matches
//              over the token stream.
//   extract    per file: namespaces, classes (with bases), member
//              declarations (types, mutex members, KDSEL_GUARDED_BY),
//              function definitions/declarations (return types,
//              KDSEL_HOT / KDSEL_ALLOC_OK / KDSEL_REQUIRES).
//   analyze    per function body: locals, guard (lock_guard/
//              unique_lock/scoped_lock) scopes, receiver-typed call
//              sites, guarded-member accesses, allocation constructs.
//   link       cross-file call graph over the whole tree (typed
//              receiver resolution, inheritance-aware dispatch), then
//              the rule passes below.
//
// Per-line rules (token-based, messages unchanged):
//
//   discarded-status        bare-statement call of a Status/StatusOr
//                           returning function
//   unchecked-value         .value() whose receiver has no prior
//                           ok()/has_value()/CHECK-style evidence in
//                           the enclosing function
//   naked-new               raw `new` / malloc-family allocation
//   raw-parse               std::sto*/ato*/strto* outside src/common/
//   nonreproducible-random  rand()/srand()/random_device/time(nullptr)
//   lock-across-score       a mutex guard live across a detector
//                           `Score(...)` call
//   raw-thread              std::thread/std::async outside src/common/,
//                           src/serve/ and src/net/
//   raw-simd                intrinsics or intrinsic headers outside
//                           src/nn/kernels/
//   raw-socket              socket(2)/epoll_*/accept(2) outside
//                           src/net/
//   raw-timing              steady_clock/high_resolution_clock or
//                           clock_gettime(2)/gettimeofday(2) calls
//                           outside src/obs/, src/common/ and bench/
//
// Whole-program rules (need the call graph):
//
//   lock-order-inversion    the global lock graph (edges: mutex A held
//                           while B is acquired, directly or via any
//                           callee) contains a cycle
//   guarded-by              a KDSEL_GUARDED_BY(m) member is accessed
//                           without `m` held, or a KDSEL_REQUIRES(m)
//                           function is called without `m` held
//   alloc-in-hot-path       an allocating construct (new, malloc,
//                           make_unique/make_shared, container growth
//                           on a receiver never reserve()d anywhere,
//                           to_string/StrFormat) is reachable from a
//                           KDSEL_HOT root; KDSEL_ALLOC_OK functions
//                           are trusted boundaries the walk skips
//
// Diagnostics print as `file:line: rule: message`, one per line, sorted
// (--format=json and --format=sarif emit the same findings as JSON /
// SARIF 2.1.0 for machine consumption and GitHub code scanning).
// Exit code: 0 clean, 1 violations found, 2 usage/IO error.
//
// Suppressions: append `// kdsel-lint: allow(rule)` (comma-separated
// for several rules) to the offending line, or place the comment alone
// on the line directly above it. In --self-check mode, suppressing
// discarded-status, lock-order-inversion, guarded-by or
// alloc-in-hot-path outside tests/ is itself a finding: production
// code must never silence those.
//
// Scanning: by default walks src/, tools/, bench/ and tests/ under
// --root (default: cwd), skipping tests/lint_fixtures/. Explicit file
// or directory arguments override the default set and are scanned
// verbatim (this is how lint_test points the tool at the fixtures).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string file;  // As reported: relative to root when possible.
  size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
  bool operator==(const Diagnostic& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"discarded-status", "result of a Status/StatusOr call is discarded"},
    {"unchecked-value", ".value() without a nearby ok()/has_value() check"},
    {"naked-new", "raw new/malloc-family allocation"},
    {"raw-parse", "std::sto*/ato*/strto* outside src/common/"},
    {"nonreproducible-random", "unseeded randomness or wall-clock seeding"},
    {"lock-across-score", "mutex held across a detector Score() call"},
    {"raw-thread",
     "std::thread/std::async outside src/common/, src/serve/ and src/net/"},
    {"raw-simd", "intrinsics or intrinsic headers outside src/nn/kernels/"},
    {"raw-socket", "socket(2)/epoll_*/accept(2) outside src/net/"},
    {"raw-timing",
     "steady_clock/high_resolution_clock or clock_gettime/gettimeofday "
     "outside src/obs/, src/common/ and bench/"},
    {"lock-order-inversion",
     "inconsistent mutex acquisition order across the call graph can "
     "deadlock"},
    {"guarded-by",
     "KDSEL_GUARDED_BY member accessed (or KDSEL_REQUIRES function called) "
     "without the named mutex held"},
    {"alloc-in-hot-path",
     "allocating construct reachable from a KDSEL_HOT entry point"},
};

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& rule : kRules) {
    if (name == rule.name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class Tok : uint8_t { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  Tok kind = Tok::kPunct;
  uint32_t line = 0;
  std::string text;
};

/// One source file, tokenized. Line numbers are 1-based.
struct SourceFile {
  std::string display_path;  // Path as printed in diagnostics.
  fs::path path;
  std::vector<Token> tokens;
  // Preprocessor lines: (line, full text without the leading '#').
  std::vector<std::pair<size_t, std::string>> pp_lines;
  // line number -> rules suppressed on that line.
  std::map<size_t, std::set<std::string>> suppressions;
  // Marker lines only (where a kdsel-lint: allow(...) comment sits).
  std::map<size_t, std::set<std::string>> markers;
  std::vector<bool> line_has_code;  // index = line number (0 unused).
  size_t line_count = 0;
  bool in_common = false;       // src/common/: exempt from raw-parse.
  bool in_thread_zone = false;  // src/common/, src/serve/ or src/net/.
  bool in_kernels = false;      // src/nn/kernels/: raw-simd home.
  bool in_timing_zone = false;  // src/obs/, src/common/ or bench/.
  bool in_net = false;          // src/net/: raw-socket home.
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Parses `kdsel-lint: allow(a, b)` out of one comment's text and
/// registers the suppression. `line` is where the comment starts;
/// comment-only lines also cover the following line (classic clang-tidy
/// NOLINTNEXTLINE ergonomics), resolved after tokenization in
/// FinishSuppressions() once line_has_code is complete.
void ParseSuppressionComment(SourceFile& file, const std::string& comment,
                             size_t line) {
  const char kTag[] = "kdsel-lint:";
  size_t at = comment.find(kTag);
  if (at == std::string::npos) return;
  at += sizeof(kTag) - 1;
  while (at < comment.size() && (comment[at] == ' ' || comment[at] == '\t')) {
    ++at;
  }
  const char kAllow[] = "allow(";
  if (comment.compare(at, sizeof(kAllow) - 1, kAllow) != 0) return;
  at += sizeof(kAllow) - 1;
  const size_t close = comment.find(')', at);
  if (close == std::string::npos) return;
  // Unknown names are dropped: a typo'd allow() fails to suppress, so
  // the original diagnostic still fires and the typo is self-evident.
  std::set<std::string> rules;
  std::string name;
  for (size_t i = at; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',') {
      if (IsKnownRule(name)) rules.insert(name);
      name.clear();
    } else if (c != ' ' && c != '\t') {
      name += c;
    }
  }
  if (rules.empty()) return;
  file.markers[line].insert(rules.begin(), rules.end());
  file.suppressions[line].insert(rules.begin(), rules.end());
}

/// After tokenization: comment-only marker lines extend to the next
/// line (line_has_code is only complete once the whole file is lexed).
void FinishSuppressions(SourceFile& file) {
  for (const auto& [line, rules] : file.markers) {
    const bool comment_only =
        line >= file.line_has_code.size() || !file.line_has_code[line];
    if (comment_only && line + 1 <= file.line_count) {
      file.suppressions[line + 1].insert(rules.begin(), rules.end());
    }
  }
}

void MarkCode(SourceFile& file, size_t line) {
  if (file.line_has_code.size() <= line) {
    file.line_has_code.resize(line + 1, false);
  }
  file.line_has_code[line] = true;
}

/// Lexes `text` into file.tokens. Comments and preprocessor lines
/// produce no tokens; suppression markers and #include lines are
/// recorded on the side.
void Tokenize(const std::string& text, SourceFile& file) {
  size_t i = 0;
  size_t line = 1;
  const size_t n = text.size();
  bool at_line_start = true;  // Only whitespace seen on this line so far.
  auto push = [&](Tok kind, std::string t) {
    MarkCode(file, line);
    file.tokens.push_back({kind, static_cast<uint32_t>(line), std::move(t)});
  };
  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor line (honoring backslash continuations). Tokens
      // are not emitted -- macro bodies would wreck extraction -- but
      // the text is kept for the raw-simd include check.
      const size_t pp_line = line;
      std::string pp;
      while (i < n) {
        if (text[i] == '\n') {
          if (!pp.empty() && pp.back() == '\\') {
            pp.pop_back();
            ++line;
            ++i;
            continue;
          }
          break;
        }
        pp += text[i];
        ++i;
      }
      file.pp_lines.emplace_back(pp_line, pp);
      MarkCode(file, pp_line);
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    if (c == '/' && next == '/') {
      const size_t comment_line = line;
      std::string comment;
      i += 2;
      while (i < n && text[i] != '\n') comment += text[i++];
      ParseSuppressionComment(file, comment, comment_line);
      continue;
    }
    if (c == '/' && next == '*') {
      size_t comment_line = line;
      std::string comment;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ParseSuppressionComment(file, comment, comment_line);
          comment.clear();
          comment_line = line + 1;
          ++line;
        } else {
          comment += text[i];
        }
        ++i;
      }
      ParseSuppressionComment(file, comment, comment_line);
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == 'R' && next == '"') {
      // Raw string literal R"delim( ... )delim".
      size_t paren = text.find('(', i + 2);
      if (paren != std::string::npos) {
        const std::string delim =
            ")" + text.substr(i + 2, paren - i - 2) + "\"";
        size_t end = text.find(delim, paren + 1);
        if (end == std::string::npos) end = n;
        push(Tok::kString, "\"\"");
        for (size_t j = i; j < std::min(end + delim.size(), n); ++j) {
          if (text[j] == '\n') ++line;
        }
        i = std::min(end + delim.size(), n);
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string lit(1, quote);
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          lit += text[i];
          lit += text[i + 1];
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;  // Unterminated; keep line count sane.
        lit += text[i++];
      }
      lit += quote;
      ++i;
      push(quote == '"' ? Tok::kString : Tok::kChar, std::move(lit));
      continue;
    }
    if (IsIdentStart(c)) {
      std::string ident;
      while (i < n && IsIdentChar(text[i])) ident += text[i++];
      push(Tok::kIdent, std::move(ident));
      continue;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(next))) {
      std::string num;
      while (i < n && (IsIdentChar(text[i]) || text[i] == '.' ||
                       ((text[i] == '+' || text[i] == '-') && i > 0 &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        num += text[i++];
      }
      push(Tok::kNumber, std::move(num));
      continue;
    }
    // Punctuation; merge the multi-character operators the parser
    // cares about (plus a few more so expressions stay one token).
    static const char* kTwo[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                 "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                 "|=", "&=", "^=", "%=", "++", "--"};
    std::string punct(1, c);
    for (const char* two : kTwo) {
      if (c == two[0] && next == two[1]) {
        punct = two;
        break;
      }
    }
    if (punct == "->" && i + 2 < n && text[i + 2] == '*') punct = "->*";
    if (punct == "." && next == '.' && i + 2 < n && text[i + 2] == '.') {
      punct = "...";
    }
    i += punct.size();
    push(Tok::kPunct, std::move(punct));
  }
  file.line_count = line;
  FinishSuppressions(file);
}

bool Suppressed(const SourceFile& file, size_t line, const char* rule) {
  auto it = file.suppressions.find(line);
  return it != file.suppressions.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Program model
// ---------------------------------------------------------------------------

struct MemberInfo {
  std::string type_core;  // Unwrapped class-ish type name ("" if opaque).
  std::string guard;      // KDSEL_GUARDED_BY argument text ("" if none).
  bool is_mutex = false;
};

struct ClassInfo {
  std::string key;   // Fully scoped, e.g. "kdsel::serve::InferenceServer".
  std::string name;  // Last component.
  int file = -1;
  std::vector<std::string> base_names;  // Last components, resolved later.
  std::vector<std::string> base_keys;
  std::map<std::string, MemberInfo> members;
  std::map<std::string, std::string> method_ret;  // name -> return core.
  std::set<std::string> method_names;
  // Method name -> KDSEL_REQUIRES args collected from declarations.
  std::map<std::string, std::vector<std::string>> method_requires;
};

struct CallSite {
  uint32_t line = 0;
  std::string name;        // Callee as written (last chain component).
  std::string recv_class;  // Resolved receiver class key, "" if unknown.
  bool via_class_qual = false;  // Written as Class::name(...).
  std::vector<std::string> held;  // Mutex ids held at the call.
  std::vector<int> targets;       // Filled by ResolveCalls().
};

struct AllocSite {
  uint32_t line = 0;
  std::string kind;      // "new", "malloc", "make_unique", "growth", "format".
  std::string what;      // Display: method/function name.
  std::string receiver;  // For growth: receiver's final identifier.
};

struct LockEdge {
  std::string from;  // Mutex id held.
  std::string to;    // Mutex id acquired.
  int file = -1;
  uint32_t line = 0;
  std::string via;  // Callee name for transitive edges, "" for direct.
};

struct GuardedUse {
  int file = -1;
  uint32_t line = 0;
  std::string member;    // Display name.
  std::string mutex_id;  // Required mutex id.
  std::string mutex_disp;
  bool held = false;
};

struct FuncInfo {
  int file = -1;
  uint32_t line = 0;
  std::string class_key;  // "" for free functions.
  std::string name;
  std::string qual;  // class_key + "::" + name, or name.
  // Out-of-class definitions whose class lives in a file extracted
  // later can't resolve their class during the extraction pass; the
  // qualifier is kept here and LinkDeferredMethods() retries after
  // every file has been extracted.
  std::string cls_hint;   // Last class component of the qualifier.
  std::string path_hint;  // Full joined qualifier path (suffix match).
  bool has_body = false;
  size_t body_begin = 0, body_end = 0;  // Token range of the body.
  bool hot = false;
  bool alloc_ok = false;
  bool ctor_dtor = false;
  std::vector<std::string> requires_args;  // As written.
  std::vector<std::string> requires_ids;   // Resolved mutex ids.
  std::string ret_core;
  std::vector<std::pair<std::string, std::string>> params;  // name, type core.
  std::set<std::string> acquires;  // Mutex ids acquired in the body.
  std::set<std::string> acquires_eventually;
  std::vector<CallSite> calls;
  std::vector<AllocSite> allocs;
};

struct GlobalVar {
  std::string type_core;
  std::string guard;
  bool is_mutex = false;
  int file = -1;
};

const std::set<std::string>& StatementKeywords() {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",    "switch",     "return",
      "else",     "do",         "break",    "continue",   "case",
      "default",  "goto",       "new",      "delete",     "sizeof",
      "static",   "const",      "constexpr", "using",     "namespace",
      "class",    "struct",     "enum",     "union",      "template",
      "typename", "public",     "private",  "protected",  "virtual",
      "override", "final",      "try",      "catch",      "throw",
      "operator", "true",       "false",    "nullptr",    "void",
      "int",      "bool",       "float",    "double",     "char",
      "long",     "short",      "unsigned", "signed",     "auto",
      "co_return", "co_await",  "co_yield", "alignas",    "alignof",
      "decltype", "extern",     "friend",   "inline",     "mutable",
      "noexcept", "register",   "typedef",  "typeid",     "volatile",
      "explicit", "static_assert", "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast"};
  return kw;
}

bool IsTypeQualifier(const std::string& t) {
  static const std::set<std::string> q = {
      "static", "inline",   "constexpr", "virtual", "explicit", "extern",
      "const",  "friend",   "mutable",   "typename", "volatile", "register",
      "KDSEL_HOT"};
  return q.count(t) > 0;
}

bool IsAmbiguousReturn(const std::string& t) {
  static const std::set<std::string> a = {
      "void",   "bool",   "int",      "unsigned", "long",     "float",
      "double", "char",   "auto",     "size_t",   "int64_t",  "uint64_t",
      "int32_t", "uint32_t"};
  return a.count(t) > 0;
}

bool IsMutexType(const std::string& t) {
  return t == "mutex" || t == "recursive_mutex" || t == "shared_mutex" ||
         t == "timed_mutex" || t == "recursive_timed_mutex";
}

bool IsGuardType(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

/// Whole program: all files plus everything extracted from them.
class Program {
 public:
  std::vector<SourceFile> files;
  std::map<std::string, ClassInfo> classes;               // key -> info.
  std::multimap<std::string, std::string> classes_by_name;  // name -> key.
  std::vector<FuncInfo> funcs;
  std::multimap<std::string, int> funcs_by_name;  // simple name -> index.
  std::map<std::string, int> funcs_by_qual;       // qual -> first index.
  std::map<std::string, GlobalVar> globals;
  // Free function name -> return type core / requires (from decls too).
  std::map<std::string, std::string> free_ret;
  std::map<std::string, std::vector<std::string>> free_requires;
  std::set<std::string> status_names;     // Declared returning Status(Or).
  std::set<std::string> ambiguous_names;  // Also declared non-Status.
  // Receiver identifiers proven capacity-managed somewhere in the tree
  // (receiver of .reserve/.resize/.assign/.ResizeDiscard). Name-based
  // and global on purpose: setup and steady-state usually live in
  // different functions, and the rule must not require dataflow.
  std::set<std::string> reserve_proven;
  std::vector<LockEdge> lock_edges;
  std::vector<GuardedUse> guarded_uses;
  // Requires-violating call sites: (file, line, callee, mutex display).
  std::vector<std::tuple<int, uint32_t, std::string, std::string>>
      requires_violations;

  void ExtractFile(int fi);
  void ResolveBases();
  void LinkDeferredMethods();
  void AnalyzeBodies();
  void ResolveCalls();
  void ComputeAcquiresFixpoint();

  std::string FindClassKey(const std::string& name, int file_hint) const;

 private:
  friend class BodyAnalyzer;
};

// ---------------------------------------------------------------------------
// Extraction helpers
// ---------------------------------------------------------------------------

/// Skips a balanced <...> starting at `i` (toks[i] == "<"). Intended
/// for declaration/type contexts only. Returns the index just past the
/// closing '>', or `i` itself if the angles do not balance sanely
/// (then the caller treats '<' as less-than).
size_t TrySkipAngles(const std::vector<Token>& toks, size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  size_t j = i;
  for (; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return i;  // Ran into a statement boundary: not template args.
    } else if (toks[j].kind == Tok::kPunct && t != "::" && t != "," &&
               t != "*" && t != "&" && t != "&&" && t != "(" && t != ")" &&
               t != "[" && t != "]" && t != "...") {
      return i;  // Operators that don't belong in a template arg list.
    } else if (t == "(") {
      // Function types in template args: skip the parens.
      int p = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "(") ++p;
        if (toks[j].text == ")" && --p == 0) break;
      }
    }
  }
  return i;
}

/// Skips a balanced group starting at toks[i] (one of ( [ {ends with
/// the matching closer). Returns index just past the closer.
size_t SkipBalanced(const std::vector<Token>& toks, size_t i) {
  if (i >= toks.size()) return i;
  const std::string& open = toks[i].text;
  std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == open) ++depth;
    else if (toks[j].text == close && --depth == 0) return j + 1;
  }
  return toks.size();
}

/// Core type of a declaration head: the last class-ish identifier,
/// unwrapping std::unique_ptr<T>/std::shared_ptr<T> to T. `begin..end`
/// covers the head tokens up to (not including) the declared name.
std::string TypeCoreOf(const std::vector<Token>& toks, size_t begin,
                       size_t end) {
  std::string core;
  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (IsTypeQualifier(t.text) || t.text == "std") continue;
    if (t.text == "unique_ptr" || t.text == "shared_ptr") {
      // Unwrap: first class-ish identifier inside the angles.
      size_t j = i + 1;
      if (j < end && toks[j].text == "<") {
        for (++j; j < end && toks[j].text != ">"; ++j) {
          if (toks[j].kind == Tok::kIdent && toks[j].text != "std" &&
              toks[j].text != "const") {
            return toks[j].text;
          }
        }
      }
      return "unique_ptr";
    }
    core = t.text;
  }
  return core;
}

std::string Program::FindClassKey(const std::string& name,
                                  int file_hint) const {
  auto range = classes_by_name.equal_range(name);
  if (range.first == range.second) return "";
  std::string unique_key;
  int count = 0;
  for (auto it = range.first; it != range.second; ++it) {
    const ClassInfo& c = classes.at(it->second);
    if (c.file == file_hint) return it->second;  // Same file wins.
    unique_key = it->second;
    ++count;
  }
  return count == 1 ? unique_key : "";
}

// ---------------------------------------------------------------------------
// Extraction: one forward pass per file with an explicit scope stack.
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass } kind;
  std::string name;  // Namespace component(s) or class last component.
};

namespace extraction {

struct Context {
  Program* prog;
  int fi;
  const std::vector<Token>* toks;
  std::vector<Scope> scopes;

  std::string ScopePrefix() const {
    std::string out;
    for (const Scope& s : scopes) {
      if (s.name.empty()) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }
  ClassInfo* CurrentClass() {
    for (size_t i = scopes.size(); i-- > 0;) {
      if (scopes[i].kind == Scope::kClass) {
        std::string key;
        for (size_t j = 0; j <= i; ++j) {
          if (scopes[j].name.empty()) continue;
          if (!key.empty()) key += "::";
          key += scopes[j].name;
        }
        auto it = prog->classes.find(key);
        return it == prog->classes.end() ? nullptr : &it->second;
      }
    }
    return nullptr;
  }
};

/// Walks back from toks[param_open - 1] to recover the declared name
/// chain (`A::B::name`, `~name`, `operator==`, ...). Returns the chain
/// components (outermost first) and sets `begin` to the chain's first
/// token index.
std::vector<std::string> NameChainBack(const std::vector<Token>& toks,
                                       size_t param_open, size_t* begin) {
  std::vector<std::string> parts;
  if (param_open == 0) return parts;
  size_t k = param_open - 1;
  const Token& last = toks[k];
  std::string name;
  if (last.kind == Tok::kIdent) {
    if ((last.text == "new" || last.text == "delete") && k > 0 &&
        toks[k - 1].text == "operator") {
      *begin = k - 1;
      return {"operator " + last.text};
    }
    name = last.text;
  } else if (last.text == ")" && k >= 2 && toks[k - 1].text == "(" &&
             toks[k - 2].text == "operator") {
    *begin = k - 2;
    return {"operator()"};
  } else if (last.text == "]" && k >= 2 && toks[k - 1].text == "[" &&
             toks[k - 2].text == "operator") {
    *begin = k - 2;
    return {"operator[]"};
  } else if (last.kind == Tok::kPunct) {
    // operator== / operator+ / operator-> etc: puncts back to `operator`.
    size_t k2 = k;
    std::string glued;
    while (k2 > 0 && toks[k2].kind == Tok::kPunct) {
      glued = toks[k2].text + glued;
      --k2;
    }
    if (toks[k2].kind == Tok::kIdent && toks[k2].text == "operator") {
      *begin = k2;
      return {"operator" + glued};
    }
    return parts;
  } else {
    return parts;
  }
  // Simple ident; collect any `Qual::` prefix (skipping template args
  // between a class name and `::`, e.g. `Foo<T>::bar`).
  parts.push_back(name);
  if (k > 0 && toks[k - 1].text == "~") {
    parts.back() = "~" + name;
    --k;
  }
  while (k >= 2 && toks[k - 1].text == "::") {
    size_t q = k - 2;
    if (toks[q].text == ">") {
      int depth = 0;
      while (q > 0) {
        if (toks[q].text == ">" || toks[q].text == ">>") ++depth;
        if (toks[q].text == "<" && --depth == 0) break;
        --q;
      }
      if (q == 0 || toks[q - 1].kind != Tok::kIdent) break;
      --q;
    }
    if (toks[q].kind != Tok::kIdent) break;
    parts.insert(parts.begin(), toks[q].text);
    k = q;
  }
  *begin = k;
  return parts;
}

/// Parses one parameter list group toks[open..close] (inclusive parens)
/// into (name, type core) pairs.
std::vector<std::pair<std::string, std::string>> ParseParams(
    const std::vector<Token>& toks, size_t open, size_t close) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = open + 1;
  int depth = 0;
  for (size_t i = open; i <= close && i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const bool at_end = i == close;
    if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
    if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
    if (t == ">>") depth -= 2;
    if ((t == "," && depth == 1) || (at_end && depth == 0)) {
      // Param tokens: [start, i).
      size_t eq = i;
      for (size_t j = start; j < i; ++j) {
        if (toks[j].text == "=") {
          eq = j;
          break;
        }
      }
      std::string name;
      size_t name_at = eq;
      for (size_t j = eq; j-- > start;) {
        if (toks[j].kind == Tok::kIdent && !IsTypeQualifier(toks[j].text)) {
          name = toks[j].text;
          name_at = j;
          break;
        }
        if (toks[j].text == "]" || toks[j].text == ")") break;
      }
      if (!name.empty() && name_at > start) {
        out.emplace_back(name, TypeCoreOf(toks, start, name_at));
      }
      start = i + 1;
    }
  }
  return out;
}

/// One scope-level statement starting at `i`. Returns the index of the
/// first token after it. Registers classes / functions / variables.
size_t ScopeStatement(Context& ctx, size_t i);

/// Consumes a class/struct definition starting at the keyword.
size_t ParseClass(Context& ctx, size_t i) {
  Program& prog = *ctx.prog;
  const std::vector<Token>& toks = *ctx.toks;
  ++i;  // past class/struct/union
  std::vector<std::string> name_parts;
  while (i < toks.size() && toks[i].kind == Tok::kIdent) {
    if (toks[i].text == "final" || toks[i].text == "alignas") {
      ++i;
      continue;
    }
    name_parts.push_back(toks[i].text);
    ++i;
    i = TrySkipAngles(toks, i);  // Specialization args.
    if (i < toks.size() && toks[i].text == "::") {
      ++i;
      continue;
    }
    break;
  }
  while (i < toks.size() && toks[i].text == "final") ++i;
  std::vector<std::string> bases;
  if (i < toks.size() && toks[i].text == ":") {
    ++i;
    std::string last;
    while (i < toks.size() && toks[i].text != "{" && toks[i].text != ";") {
      const std::string& t = toks[i].text;
      if (toks[i].kind == Tok::kIdent && t != "public" && t != "private" &&
          t != "protected" && t != "virtual" && t != "std") {
        last = t;
      }
      if (t == ",") {
        if (!last.empty()) bases.push_back(last);
        last.clear();
      }
      if (t == "<") {
        i = TrySkipAngles(toks, i);
        continue;
      }
      ++i;
    }
    if (!last.empty()) bases.push_back(last);
  }
  if (i >= toks.size() || toks[i].text != "{" || name_parts.empty()) {
    // Forward declaration or something we don't model: skip statement.
    while (i < toks.size() && toks[i].text != ";") {
      if (toks[i].text == "{") return SkipBalanced(toks, i);
      ++i;
    }
    return i + 1;
  }
  // Register and enter. Qualified definitions (struct A::B { ... })
  // contribute their full path.
  std::string key = ctx.ScopePrefix();
  for (const std::string& part : name_parts) {
    if (!key.empty()) key += "::";
    key += part;
  }
  ClassInfo& info = prog.classes[key];
  if (info.key.empty()) {
    info.key = key;
    info.name = name_parts.back();
    info.file = ctx.fi;
    info.base_names = bases;
    prog.classes_by_name.emplace(info.name, key);
  }
  // Push all path components so nested scopes build the right key.
  size_t pushed = 0;
  for (const std::string& part : name_parts) {
    ctx.scopes.push_back({Scope::kClass, part});
    ++pushed;
  }
  ++i;  // past '{'
  while (i < toks.size() && toks[i].text != "}") {
    i = ScopeStatement(ctx, i);
  }
  for (size_t p = 0; p < pushed; ++p) ctx.scopes.pop_back();
  ++i;  // past '}'
  while (i < toks.size() && toks[i].text != ";") {
    if (toks[i].text == "{") {
      i = SkipBalanced(toks, i);
      continue;
    }
    ++i;  // `} name;` variable-of-anonymous-struct etc.
  }
  return i < toks.size() ? i + 1 : i;
}

size_t ScopeStatement(Context& ctx, size_t i) {
  Program& prog = *ctx.prog;
  const std::vector<Token>& toks = *ctx.toks;
  if (i >= toks.size()) return i;
  const Token& t = toks[i];
  if (t.text == ";") return i + 1;
  if (t.text == "}") return i + 1;  // Caller handles scope pop.
  if (t.kind == Tok::kIdent) {
    if (t.text == "namespace") {
      size_t j = i + 1;
      std::string name;
      while (j < toks.size() && toks[j].kind == Tok::kIdent) {
        if (!name.empty()) name += "::";
        name += toks[j].text;
        ++j;
        if (j < toks.size() && toks[j].text == "::") ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        ctx.scopes.push_back({Scope::kNamespace, name});
        ++j;
        while (j < toks.size() && toks[j].text != "}") {
          j = ScopeStatement(ctx, j);
        }
        ctx.scopes.pop_back();
        return j + 1;
      }
      // Namespace alias / using-namespace tail: skip to ';'.
      while (j < toks.size() && toks[j].text != ";") ++j;
      return j + 1;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      return ParseClass(ctx, i);
    }
    if (t.text == "enum") {
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") j = SkipBalanced(toks, j);
      while (j < toks.size() && toks[j].text != ";") ++j;
      return j + 1;
    }
    if (t.text == "using" || t.text == "typedef" ||
        t.text == "static_assert" || t.text == "friend") {
      size_t j = i;
      while (j < toks.size() && toks[j].text != ";") {
        if (toks[j].text == "{") {
          j = SkipBalanced(toks, j);
          continue;
        }
        ++j;
      }
      return j + 1;
    }
    if (t.text == "template") {
      size_t j = TrySkipAngles(toks, i + 1);
      if (j == i + 1) ++j;  // Degenerate; don't loop forever.
      return ScopeStatement(ctx, j);
    }
    if ((t.text == "public" || t.text == "private" || t.text == "protected") &&
        i + 1 < toks.size() && toks[i + 1].text == ":") {
      return i + 2;
    }
  }
  // Generic declaration: scan forward to classify as function def,
  // declaration, or variable.
  size_t j = i;
  int pdepth = 0;
  size_t params_open = 0, params_close = 0;
  bool have_params = false;
  bool saw_eq_top = false;
  bool saw_eq_before_params = false;
  bool hot = false, alloc_ok = false;
  std::vector<std::string> requires_args;
  std::string guard_arg;
  size_t guard_at = 0;  // Token index of KDSEL_GUARDED_BY, if any.
  size_t body_open = 0;
  bool is_func_def = false;
  while (j < toks.size()) {
    const std::string& tt = toks[j].text;
    if (toks[j].kind == Tok::kIdent) {
      if (tt == "KDSEL_HOT") {
        hot = true;
        ++j;
        continue;
      }
      if (tt == "KDSEL_ALLOC_OK" || tt == "KDSEL_REQUIRES" ||
          tt == "KDSEL_GUARDED_BY") {
        size_t open = j + 1;
        if (open < toks.size() && toks[open].text == "(") {
          size_t close = SkipBalanced(toks, open);
          std::string arg;
          for (size_t a = open + 1; a + 1 < close; ++a) arg += toks[a].text;
          if (tt == "KDSEL_ALLOC_OK") alloc_ok = true;
          if (tt == "KDSEL_REQUIRES") requires_args.push_back(arg);
          if (tt == "KDSEL_GUARDED_BY") {
            guard_arg = arg;
            guard_at = j;
          }
          j = close;
          continue;
        }
      }
      ++j;
      continue;
    }
    if (tt == "(") {
      if (pdepth == 0 && !have_params && j > i &&
          (toks[j - 1].kind == Tok::kIdent || toks[j - 1].text == ")" ||
           toks[j - 1].text == "]" ||
           (toks[j - 1].kind == Tok::kPunct && j >= 2 &&
            toks[j - 2].text == "operator"))) {
        params_open = j;
        params_close = SkipBalanced(toks, j) - 1;
        have_params = true;
        saw_eq_before_params = saw_eq_top;
        j = params_close + 1;
        pdepth = 0;
        continue;
      }
      j = SkipBalanced(toks, j);
      continue;
    }
    if (tt == "[") {
      j = SkipBalanced(toks, j);
      continue;
    }
    if (tt == "<" && pdepth == 0) {
      size_t after = TrySkipAngles(toks, j);
      if (after != j) {
        j = after;
        continue;
      }
      ++j;
      continue;
    }
    if (tt == ";" && pdepth == 0) {
      j = j + 1;
      break;
    }
    if (tt == "=" && pdepth == 0) {
      saw_eq_top = true;
      ++j;
      continue;
    }
    if (tt == ":" && pdepth == 0 && have_params && !saw_eq_top) {
      // Constructor initializer list: items until the body '{'.
      ++j;
      while (j < toks.size() && toks[j].text != "{") {
        if (toks[j].text == "(" || toks[j].text == "[") {
          j = SkipBalanced(toks, j);
          continue;
        }
        if (toks[j].text == "<") {
          size_t after = TrySkipAngles(toks, j);
          j = after != j ? after : j + 1;
          continue;
        }
        if (toks[j].text == "{") break;
        if (toks[j].kind == Tok::kIdent && j + 1 < toks.size() &&
            toks[j + 1].text == "{") {
          // member{init} item: skip the braces.
          j = SkipBalanced(toks, j + 1);
          continue;
        }
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        body_open = j;
        is_func_def = true;
      }
      break;
    }
    if (tt == "{" && pdepth == 0) {
      if (have_params && !saw_eq_top) {
        body_open = j;
        is_func_def = true;
        break;
      }
      // Brace initializer on a variable: skip it, keep scanning.
      j = SkipBalanced(toks, j);
      continue;
    }
    ++j;
  }

  ClassInfo* cls = ctx.CurrentClass();
  if (is_func_def || (have_params && !saw_eq_before_params)) {
    size_t chain_begin = params_open;
    std::vector<std::string> parts =
        NameChainBack(toks, params_open, &chain_begin);
    if (parts.empty() ||
        (chain_begin > i && toks[chain_begin - 1].kind == Tok::kIdent &&
         toks[chain_begin - 1].text == "return")) {
      // Unparseable head; skip the statement (and body if present).
      if (is_func_def) return SkipBalanced(toks, body_open);
      return j;
    }
    const std::string name = parts.back();
    // Resolve the class this function belongs to.
    std::string class_key;
    std::string cls_hint;
    std::string path_hint;
    if (parts.size() > 1) {
      // Qualified: resolve the path's last class component.
      std::string path;
      for (size_t p = 0; p + 1 < parts.size(); ++p) {
        if (!path.empty()) path += "::";
        path += parts[p];
      }
      const std::string last_cls = parts[parts.size() - 2];
      class_key = prog.FindClassKey(last_cls, ctx.fi);
      if (class_key.empty()) {
        // Maybe it's namespace-qualified; try the joined path's tail
        // against every class key suffix.
        for (const auto& [key, info] : prog.classes) {
          if (key.size() >= path.size() &&
              key.compare(key.size() - path.size(), path.size(), path) == 0) {
            class_key = key;
            break;
          }
        }
      }
      if (class_key.empty()) {
        // The class may live in a file not extracted yet (files are
        // processed in sorted order, so foo.cc precedes foo.h).
        // LinkDeferredMethods() retries once the whole tree is in.
        cls_hint = last_cls;
        path_hint = path;
      }
    } else if (cls != nullptr) {
      class_key = cls->key;
    }
    // Return type classification from head tokens [i, chain_begin).
    std::string first_type;
    for (size_t h = i; h < chain_begin; ++h) {
      if (toks[h].kind != Tok::kIdent) continue;
      if (IsTypeQualifier(toks[h].text) || toks[h].text == "std") continue;
      first_type = toks[h].text;
      break;
    }
    const bool is_ctor_dtor =
        first_type.empty() || name[0] == '~' ||
        (!class_key.empty() &&
         name == class_key.substr(class_key.rfind("::") == std::string::npos
                                      ? 0
                                      : class_key.rfind("::") + 2));
    if (!is_ctor_dtor && !name.empty() && name.rfind("operator", 0) != 0) {
      if (first_type == "Status" || first_type == "StatusOr") {
        prog.status_names.insert(name);
      } else if (IsAmbiguousReturn(first_type)) {
        prog.ambiguous_names.insert(name);
      }
    }
    const std::string ret_core = TypeCoreOf(toks, i, chain_begin);
    // Record method metadata on the class (decls and defs alike). A
    // definition with an unresolved qualifier defers to
    // LinkDeferredMethods(); for declarations the qualifier hint is
    // lost, so record as free (same behavior as before).
    const bool defer = class_key.empty() && !cls_hint.empty() && is_func_def;
    if (!class_key.empty()) {
      ClassInfo& ci = prog.classes[class_key];
      ci.method_names.insert(name);
      if (!is_ctor_dtor) ci.method_ret[name] = ret_core;
      if (!requires_args.empty()) ci.method_requires[name] = requires_args;
    } else if (!defer) {
      if (!is_ctor_dtor && !prog.free_ret.count(name)) {
        prog.free_ret[name] = ret_core;
      }
      if (!requires_args.empty()) prog.free_requires[name] = requires_args;
    }
    if (is_func_def) {
      FuncInfo fn;
      fn.file = ctx.fi;
      fn.line = toks[params_open].line;
      fn.class_key = class_key;
      fn.name = name;
      fn.qual = class_key.empty() ? name : class_key + "::" + name;
      fn.hot = hot;
      fn.alloc_ok = alloc_ok;
      fn.ctor_dtor = is_ctor_dtor;
      fn.requires_args = requires_args;
      fn.ret_core = ret_core;
      fn.cls_hint = cls_hint;
      fn.path_hint = path_hint;
      fn.params = ParseParams(toks, params_open, params_close);
      fn.has_body = true;
      fn.body_begin = body_open + 1;
      fn.body_end = SkipBalanced(toks, body_open) - 1;
      const int idx = static_cast<int>(prog.funcs.size());
      prog.funcs.push_back(std::move(fn));
      prog.funcs_by_name.emplace(name, idx);
      prog.funcs_by_qual.emplace(prog.funcs[idx].qual, idx);
      return prog.funcs[idx].body_end + 1;
    }
    return j;
  }

  // Variable declaration (member or global). Find the declared name:
  // last plain identifier before `=` / `;` / `{init}` / annotation.
  size_t name_end = j > 0 ? j - 1 : 0;  // At ';'.
  if (guard_at != 0) name_end = guard_at;
  size_t name_at = 0;
  std::string var_name;
  for (size_t k = name_end; k-- > i;) {
    if (toks[k].text == "=" ) continue;
    if (toks[k].kind == Tok::kIdent && !IsTypeQualifier(toks[k].text)) {
      // Skip initializer tokens: walk back past any top-level init.
      var_name = toks[k].text;
      name_at = k;
      break;
    }
    if (toks[k].text == "]" || toks[k].text == "}" || toks[k].text == ")") {
      // Array extent / brace init / paren init: jump before the group.
      int depth = 0;
      std::string close = toks[k].text;
      std::string open = close == "]" ? "[" : close == "}" ? "{" : "(";
      while (k > i) {
        if (toks[k].text == close) ++depth;
        if (toks[k].text == open && --depth == 0) break;
        --k;
      }
      continue;
    }
  }
  if (guard_at == 0 && !var_name.empty()) {
    // The name may sit before `=` or an init group; if an `=` exists,
    // re-derive: name is the identifier right before the first
    // top-level `=`.
    for (size_t k = i; k < name_end; ++k) {
      if (toks[k].text == "=") {
        for (size_t b = k; b-- > i;) {
          if (toks[b].kind == Tok::kIdent && !IsTypeQualifier(toks[b].text)) {
            var_name = toks[b].text;
            name_at = b;
            break;
          }
          if (toks[b].text == "]") continue;
        }
        break;
      }
      if (toks[k].text == "(" || toks[k].text == "{" || toks[k].text == "[") {
        k = SkipBalanced(toks, k) - 1;
      }
    }
  }
  if (!var_name.empty() && name_at > i) {
    MemberInfo m;
    m.type_core = TypeCoreOf(toks, i, name_at);
    m.guard = guard_arg;
    m.is_mutex = IsMutexType(m.type_core);
    if (cls != nullptr) {
      cls->members.emplace(var_name, m);
    } else {
      GlobalVar g;
      g.type_core = m.type_core;
      g.guard = m.guard;
      g.is_mutex = m.is_mutex;
      g.file = ctx.fi;
      prog.globals.emplace(var_name, g);
    }
  }
  return j;
}

}  // namespace extraction

void Program::ExtractFile(int fi) {
  extraction::Context ctx;
  ctx.prog = this;
  ctx.fi = fi;
  ctx.toks = &files[fi].tokens;
  size_t i = 0;
  while (i < ctx.toks->size()) {
    const size_t next = extraction::ScopeStatement(ctx, i);
    i = next > i ? next : i + 1;  // Guarantee forward progress.
  }
}

void Program::ResolveBases() {
  for (auto& [key, info] : classes) {
    for (const std::string& base : info.base_names) {
      const std::string bkey = FindClassKey(base, info.file);
      if (!bkey.empty() && bkey != key) info.base_keys.push_back(bkey);
    }
  }
}

// ---------------------------------------------------------------------------
// Body analysis: locals, guard scopes, call sites, guarded accesses,
// allocation sites.
// ---------------------------------------------------------------------------

class BodyAnalyzer {
 public:
  BodyAnalyzer(Program& prog, FuncInfo& fn) : prog_(prog), fn_(fn) {
    toks_ = &prog.files[fn.file].tokens;
    for (const auto& [name, type] : fn.params) locals_[name] = type;
    if (!fn.class_key.empty()) cls_ = &prog.classes[fn.class_key];
  }

  void Run() {
    ResolveRequires();
    // Seed held set with KDSEL_REQUIRES mutexes: inside the body they
    // are assumed held.
    for (const std::string& id : fn_.requires_ids) {
      held_.push_back({id, id, -1});
    }
    limit_ = fn_.body_end;
    size_t i = fn_.body_begin;
    int depth = 0;
    while (i < limit_ && i < toks_->size()) {
      i = Statement(i, &depth);
    }
  }

 private:
  struct HeldMutex {
    std::string id;    // Resolved mutex id.
    std::string disp;  // Display name (as written).
    int depth;         // Brace depth where the guard was declared (-1 =
                       // REQUIRES seed, never popped).
  };

  Program& prog_;
  FuncInfo& fn_;
  size_t limit_ = 0;  // Statement-walk bound (body end or lambda end).
  const std::vector<Token>* toks_ = nullptr;
  ClassInfo* cls_ = nullptr;
  std::map<std::string, std::string> locals_;  // name -> type core.
  std::vector<HeldMutex> held_;
  // Identifiers with ok()/has_value()/CHECK evidence (unchecked-value).
  std::set<std::string> checked_;

  const Token& Tk(size_t i) const { return (*toks_)[i]; }
  const std::string& Txt(size_t i) const { return (*toks_)[i].text; }

  /// Mutex id for a member of class `key`: "key::name".
  static std::string MemberMutexId(const std::string& key,
                                   const std::string& name) {
    return key + "::" + name;
  }

  void ResolveRequires() {
    fn_.requires_ids.clear();
    for (const std::string& arg : fn_.requires_args) {
      fn_.requires_ids.push_back(ResolveMutexName(arg));
    }
  }

  /// Resolves a mutex mentioned by name (annotation argument or guard
  /// constructor argument) to a stable id. Resolution order: local,
  /// member of this class (or bases), global. Unknown names become
  /// per-function-local ids so they can't collide across files.
  std::string ResolveMutexName(std::string name) {
    // Strip a leading "this->" or "&".
    if (name.rfind("this->", 0) == 0) name = name.substr(6);
    if (!name.empty() && name[0] == '&') name = name.substr(1);
    if (locals_.count(name)) {
      return fn_.qual + "#" + std::to_string(fn_.line) + "::" + name;
    }
    ClassInfo* c = cls_;
    std::vector<std::string> todo;
    std::set<std::string> seen;
    if (c != nullptr) todo.push_back(c->key);
    while (!todo.empty()) {
      const std::string key = todo.back();
      todo.pop_back();
      if (!seen.insert(key).second) continue;
      auto it = prog_.classes.find(key);
      if (it == prog_.classes.end()) continue;
      if (it->second.members.count(name)) return MemberMutexId(key, name);
      for (const std::string& b : it->second.base_keys) todo.push_back(b);
    }
    if (prog_.globals.count(name)) return "::" + name;
    return fn_.qual + "#" + std::to_string(fn_.line) + "::" + name;
  }

  /// Is `id` currently held?
  bool Held(const std::string& id) const {
    for (const HeldMutex& h : held_) {
      if (h.id == id) return true;
    }
    return false;
  }

  void PopGuards(int depth) {
    while (!held_.empty() && held_.back().depth >= depth) {
      held_.pop_back();
    }
  }

  /// Member lookup through the class hierarchy. Returns the owning
  /// class key via `owner` when found.
  const MemberInfo* FindMember(const std::string& cls_key,
                               const std::string& name,
                               std::string* owner) const {
    std::vector<std::string> todo = {cls_key};
    std::set<std::string> seen;
    while (!todo.empty()) {
      const std::string key = todo.back();
      todo.pop_back();
      if (key.empty() || !seen.insert(key).second) continue;
      auto it = prog_.classes.find(key);
      if (it == prog_.classes.end()) continue;
      auto m = it->second.members.find(name);
      if (m != it->second.members.end()) {
        *owner = key;
        return &m->second;
      }
      for (const std::string& b : it->second.base_keys) todo.push_back(b);
    }
    return nullptr;
  }

  /// Method return-type lookup through the hierarchy.
  std::string FindMethodRet(const std::string& cls_key,
                            const std::string& name) const {
    std::vector<std::string> todo = {cls_key};
    std::set<std::string> seen;
    while (!todo.empty()) {
      const std::string key = todo.back();
      todo.pop_back();
      if (key.empty() || !seen.insert(key).second) continue;
      auto it = prog_.classes.find(key);
      if (it == prog_.classes.end()) continue;
      auto m = it->second.method_ret.find(name);
      if (m != it->second.method_ret.end()) return m->second;
      for (const std::string& b : it->second.base_keys) todo.push_back(b);
    }
    return "";
  }

  /// Records a guarded-member access (or its absence of guard).
  void NoteGuardedAccess(const std::string& owner, const std::string& member,
                         const MemberInfo& info, uint32_t line) {
    if (info.guard.empty()) return;
    // Ctors/dtors of the owning class touch members before the object
    // is shared; exempt.
    if (fn_.ctor_dtor && fn_.class_key == owner) return;
    std::string id;
    std::string disp = info.guard;
    // Guard names a member of the same class, or a global.
    std::string guard_owner;
    const MemberInfo* gm = FindMember(owner, info.guard, &guard_owner);
    if (gm != nullptr) {
      id = MemberMutexId(guard_owner, info.guard);
    } else if (prog_.globals.count(info.guard)) {
      id = "::" + info.guard;
    } else {
      id = ResolveMutexName(info.guard);
    }
    GuardedUse use;
    use.file = fn_.file;
    use.line = line;
    use.member = member;
    use.mutex_id = id;
    use.mutex_disp = disp;
    use.held = Held(id);
    prog_.guarded_uses.push_back(std::move(use));
  }

  /// Records acquiring mutex `id` while everything in held_ is live.
  void NoteAcquire(const std::string& id, const std::string& disp,
                   uint32_t line, int depth) {
    for (const HeldMutex& h : held_) {
      if (h.id == id) continue;
      LockEdge e;
      e.from = h.id;
      e.to = id;
      e.file = fn_.file;
      e.line = line;
      prog_.lock_edges.push_back(std::move(e));
    }
    fn_.acquires.insert(id);
    held_.push_back({id, disp, depth});
  }

  /// Resolves a dotted mutex path (`state.mu`, `impl_->mu` normalized
  /// to components) by walking receiver types: local/member/global ->
  /// class key, then member types for middle components. Unresolvable
  /// paths fall back to a per-function id.
  std::string ResolveDottedMutex(const std::vector<std::string>& comps) {
    if (comps.empty()) return "";
    if (comps.size() == 1) {
      const std::string& name = comps[0];
      const size_t qual = name.rfind("::");
      if (qual != std::string::npos) {
        const std::string ckey =
            prog_.FindClassKey(name.substr(0, qual), fn_.file);
        if (!ckey.empty()) return MemberMutexId(ckey, name.substr(qual + 2));
        return ResolveMutexName(name.substr(qual + 2));
      }
      return ResolveMutexName(name);
    }
    std::string key = ClassKeyOfLocalOrMember(comps[0]);
    for (size_t c = 1; c + 1 < comps.size() && !key.empty(); ++c) {
      std::string owner;
      const MemberInfo* m = FindMember(key, comps[c], &owner);
      key = (m != nullptr && !m->type_core.empty())
                ? ClassKeyOfType(m->type_core)
                : "";
    }
    if (key.empty()) return ResolveMutexName(comps.back());
    return MemberMutexId(key, comps.back());
  }

  /// One statement inside the body starting at `i`; returns the first
  /// index after it. `depth` tracks brace depth for guard scoping.
  size_t Statement(size_t i, int* depth) {
    if (i >= limit_) return limit_;
    const std::string& t = Txt(i);
    if (t == "{") {
      ++*depth;
      return i + 1;
    }
    if (t == "}") {
      PopGuards(*depth);
      --*depth;
      return i + 1;
    }
    if (t == ";") return i + 1;
    if (Tk(i).kind == Tok::kIdent && t == "static") {
      // Static-local statement: one-time init, not steady-state. Skip
      // it whole (including any initializer lambda bodies) so it feeds
      // neither the call graph nor the alloc walk.
      size_t j = i;
      while (j < limit_ && Txt(j) != ";") {
        if (Txt(j) == "{" || Txt(j) == "(" || Txt(j) == "[") {
          j = SkipBalanced(*toks_, j);
          continue;
        }
        ++j;
      }
      return j + 1;
    }
    if (Tk(i).kind == Tok::kIdent &&
        (t == "if" || t == "while" || t == "for" || t == "switch" ||
         t == "catch")) {
      // Process the parenthesized head as expression (it can contain
      // calls, .value(), ok() evidence), then continue after it; the
      // body braces flow through Statement as usual.
      size_t j = i + 1;
      if (j < limit_ && Txt(j) == "(") {
        const size_t close = SkipBalanced(*toks_, j) - 1;
        // A `for (decl; cond; step)` head may declare a guard-like
        // local; treat head as a mini statement run.
        Expression(j + 1, close, /*stmt_start=*/true);
        return close + 1;
      }
      return j;
    }
    if (Tk(i).kind == Tok::kIdent &&
        (t == "return" || t == "co_return" || t == "throw")) {
      const size_t end = StatementEnd(i + 1);
      Expression(i + 1, end, /*stmt_start=*/false);
      return end + 1;
    }
    if (Tk(i).kind == Tok::kIdent &&
        (t == "else" || t == "do" || t == "try" || t == "break" ||
         t == "continue" || t == "default" || t == "goto")) {
      return i + 1;
    }
    if (Tk(i).kind == Tok::kIdent && t == "case") {
      size_t j = i;
      while (j < limit_ && Txt(j) != ":") ++j;
      return j + 1;
    }
    // Try: guard declaration / local declaration / expression.
    const size_t end = StatementEnd(i);
    if (TryGuardDecl(i, end, *depth)) return end + 1;
    TryLocalDecl(i, end);
    Expression(i, end, /*stmt_start=*/true);
    return end + 1;
  }

  /// Finds the end (index of `;`, or the matching close of a trailing
  /// `{`-block for statements like lambdas assigned to autos) of the
  /// statement starting at `i`. Returns index of the terminator token.
  size_t StatementEnd(size_t i) {
    size_t j = i;
    while (j < limit_) {
      const std::string& t = Txt(j);
      if (t == ";") return j;
      if (t == "(" || t == "[") {
        j = SkipBalanced(*toks_, j);
        continue;
      }
      if (t == "{") {
        // Brace init or lambda body: balanced-skip, keep going; the
        // statement still ends at ';'. (Expression() re-walks inside.)
        j = SkipBalanced(*toks_, j);
        continue;
      }
      if (t == "}") return j;  // Malformed/ran off; let caller pop.
      ++j;
    }
    return limit_;
  }

  /// Recognizes `std::lock_guard<std::mutex> g(mu);` (and unique_lock /
  /// scoped_lock / shared_lock, with or without std:: and template
  /// args, paren or brace init).
  bool TryGuardDecl(size_t i, size_t end, int depth) {
    size_t j = i;
    if (j < end && Txt(j) == "std") j += Txt(j + 1) == "::" ? 2 : 1;
    if (j >= end || Tk(j).kind != Tok::kIdent || !IsGuardType(Txt(j))) {
      return false;
    }
    const uint32_t line = Tk(j).line;
    size_t k = TrySkipAngles(*toks_, j + 1);
    if (k == j + 1 && k < end && Txt(k) == "<") return false;
    if (k >= end || Tk(k).kind != Tok::kIdent) return false;
    ++k;  // Past the variable name.
    if (k >= end || (Txt(k) != "(" && Txt(k) != "{")) return false;
    const size_t close = SkipBalanced(*toks_, k) - 1;
    // scoped_lock can take several mutexes; acquire each in order.
    size_t arg_start = k + 1;
    for (size_t a = k + 1; a <= close; ++a) {
      const bool last = a == close;
      if ((Txt(a) == "," && a < close) || last) {
        // Normalize the argument into dotted components ('.'/'->' both
        // split; 'this'/'*'/'&' vanish; '::' glues).
        std::vector<std::string> comps(1, "");
        std::string disp;
        for (size_t b = arg_start; b < a; ++b) {
          const std::string& bt = Txt(b);
          if (bt == "this" || bt == "*" || bt == "&" || bt == "(" ||
              bt == ")") {
            continue;
          }
          if (bt == "." || bt == "->") {
            if (!comps.back().empty()) comps.push_back("");
            if (!disp.empty()) disp += bt;
            continue;
          }
          if (Tk(b).kind == Tok::kIdent || bt == "::") {
            comps.back() += bt;
            disp += bt;
          }
        }
        if (comps.back().empty()) comps.pop_back();
        if (!comps.empty()) {
          NoteAcquire(ResolveDottedMutex(comps), disp, line, depth);
        }
        arg_start = a + 1;
      }
    }
    return true;
  }

  /// Records `Type name = ...;` local declarations so receiver chains
  /// resolve. Handles `auto x = std::make_unique<T>(...)`.
  void TryLocalDecl(size_t i, size_t end) {
    // Statement-start heuristic: IDENT (qualified/templated) IDENT ...
    size_t j = i;
    bool saw_auto = false;
    if (j < end && Tk(j).kind == Tok::kIdent && Txt(j) == "auto") {
      saw_auto = true;
    }
    // Collect the candidate type tokens up to a plausible name.
    size_t k = j;
    size_t last_ident = std::string::npos;
    while (k < end) {
      const std::string& t = Txt(k);
      if (Tk(k).kind == Tok::kIdent) {
        if (StatementKeywords().count(t) && t != "auto" && t != "const" &&
            t != "static" && !IsTypeQualifier(t)) {
          return;  // Not a declaration.
        }
        last_ident = k;
        ++k;
        continue;
      }
      if (t == "::") {
        ++k;
        continue;
      }
      if (t == "<") {
        const size_t after = TrySkipAngles(*toks_, k);
        if (after == k) break;
        k = after;
        continue;
      }
      if (t == "*" || t == "&" || t == "&&") {
        ++k;
        continue;
      }
      break;
    }
    if (last_ident == std::string::npos || last_ident == j) {
      if (!saw_auto) return;
    }
    // Declaration shape: the last ident is the name, and the token
    // after it must begin an initializer or end the statement.
    if (last_ident == std::string::npos) return;
    const std::string name = Txt(last_ident);
    const std::string& after =
        last_ident + 1 <= end ? Txt(last_ident + 1) : Txt(end);
    if (after != "=" && after != ";" && after != "(" && after != "{" &&
        last_ident + 1 != end) {
      return;
    }
    // Need at least two idents (type + name) unless auto.
    std::string type_core;
    if (saw_auto) {
      // `auto x = std::make_unique<T>(...)` / make_shared.
      for (size_t b = last_ident; b < end; ++b) {
        if (Tk(b).kind == Tok::kIdent &&
            (Txt(b) == "make_unique" || Txt(b) == "make_shared")) {
          size_t ang = b + 1;
          if (ang < end && Txt(ang) == "<") {
            for (size_t c = ang + 1; c < end && Txt(c) != ">"; ++c) {
              if (Tk(c).kind == Tok::kIdent && Txt(c) != "std" &&
                  Txt(c) != "const") {
                type_core = Txt(c);
                break;
              }
            }
          }
          break;
        }
      }
      if (type_core.empty()) {
        // `auto x = Foo::Bar(...)` / `auto x = expr` -- try the call's
        // return type below via chain resolution? Keep it simple: give
        // up (receiver stays unresolved).
        return;
      }
    } else {
      if (last_ident == j) return;  // Single ident can't be a decl.
      type_core = TypeCoreOf(*toks_, i, last_ident);
      if (type_core.empty()) return;
    }
    locals_[name] = type_core;
  }

  /// Resolves the class key of a type core name.
  std::string ClassKeyOfType(const std::string& type_core) const {
    if (type_core.empty()) return "";
    return prog_.FindClassKey(type_core, fn_.file);
  }

  /// Expression walk over [i, end): records call sites, guarded member
  /// accesses, allocation constructs, and unchecked-value diagnostics.
  /// Also descends into lambda bodies (they run on this thread unless
  /// handed to ParallelFor -- either way their effects belong to this
  /// function for lock/alloc purposes).
  void Expression(size_t i, size_t end, bool stmt_start) {
    (void)stmt_start;
    size_t j = i;
    while (j < end) {
      const Token& tok = Tk(j);
      const std::string& t = tok.text;
      if (t == "[" && j + 1 < end &&
          (Txt(j + 1) == "]" || Txt(j + 1) == "&" || Txt(j + 1) == "=" ||
           Txt(j + 1) == "this")) {
        // Probable lambda introducer: find the body and recurse.
        const size_t close_br = SkipBalanced(*toks_, j);
        size_t b = close_br;
        if (b < end && Txt(b) == "(") b = SkipBalanced(*toks_, b);
        while (b < end && Txt(b) != "{" && Txt(b) != ";" && Txt(b) != ")") {
          ++b;  // mutable / -> ret / noexcept.
        }
        if (b < end && Txt(b) == "{") {
          const size_t body_close = SkipBalanced(*toks_, b);
          // Full statement walk: lambda bodies can declare their own
          // lock guards. Locks taken inside stay inside (restore the
          // held set); locks held at the definition site carry in.
          const size_t saved_limit = limit_;
          const size_t saved_held = held_.size();
          limit_ = body_close - 1;  // Index of the closing `}`.
          int lambda_depth = 0;
          size_t s = b + 1;
          while (s < limit_) {
            const size_t next = Statement(s, &lambda_depth);
            if (next <= s) break;  // Defensive: never loop in place.
            s = next;
          }
          limit_ = saved_limit;
          while (held_.size() > saved_held) held_.pop_back();
          j = body_close;
          continue;
        }
        j = close_br;
        continue;
      }
      if (tok.kind == Tok::kIdent) {
        j = Chain(j, end);
        continue;
      }
      ++j;
    }
  }

  /// Walks one receiver chain starting at an identifier; returns the
  /// index after the chain. Handles `a.b.c()`, `p->q()`, `Class::f()`,
  /// `f().g()`, `std::move(x).value()`.
  size_t Chain(size_t i, size_t end) {
    size_t j = i;
    // Current receiver class key ("" unknown) and how we got here.
    std::string recv_class;
    std::string last_ident;
    bool have_receiver = false;   // A value whose class is recv_class.
    bool class_qual = false;      // Wrote Class:: (static-style call).
    bool first_link = true;

    // Resolve the chain head.
    {
      const std::string& head = Txt(j);
      if (head == "this") {
        recv_class = fn_.class_key;
        have_receiver = true;
        ++j;
      } else if (head == "std") {
        // std::move(x).value() unwrap / std::to_string etc.
        if (j + 2 < end && Txt(j + 1) == "::" &&
            Tk(j + 2).kind == Tok::kIdent) {
          const std::string fn_name = Txt(j + 2);
          if (fn_name == "move" && j + 3 < end && Txt(j + 3) == "(") {
            const size_t close = SkipBalanced(*toks_, j + 3);
            // Receiver = the moved expression's final ident.
            std::string inner;
            for (size_t b = j + 4; b + 1 < close; ++b) {
              if (Tk(b).kind == Tok::kIdent) inner = Txt(b);
            }
            last_ident = inner;
            recv_class = ClassKeyOfLocalOrMember(inner);
            have_receiver = true;
            j = close;
          } else {
            // std::f(...): note allocating std calls.
            if (j + 3 < end && Txt(j + 3) == "(") {
              NoteStdCall(fn_name, Tk(j + 2).line);
              Expression(j + 4, SkipBalanced(*toks_, j + 3) - 1, false);
              j = SkipBalanced(*toks_, j + 3);
            } else {
              j += 3;
            }
            return j;
          }
        } else {
          return j + 1;
        }
      } else if (StatementKeywords().count(head) && head != "new") {
        return j + 1;
      } else if (head == "new") {
        if (j == i && (i == 0 || Txt(i - 1) != "operator")) {
          fn_.allocs.push_back({Tk(j).line, "new", "new", ""});
        }
        return j + 1;
      } else {
        last_ident = head;
        ++j;
        // Class-qualified chain: A::B::f(...) or Class::member.
        while (j + 1 < end && Txt(j) == "::" &&
               Tk(j + 1).kind == Tok::kIdent) {
          const std::string ckey = prog_.FindClassKey(last_ident, fn_.file);
          if (!ckey.empty()) {
            recv_class = ckey;
            class_qual = true;
            have_receiver = true;
          }
          last_ident = Txt(j + 1);
          j += 2;
        }
        if (!have_receiver) {
          // Plain identifier: local / member / global.
          recv_class = ClassKeyOfLocalOrMember(last_ident);
          have_receiver = true;
          // Guarded member access by bare name (implicit this->).
          CheckBareMemberAccess(last_ident, Tk(i).line);
        }
      }
    }

    // Follow . / -> / () links.
    while (j < end) {
      const std::string& t = Txt(j);
      if (t == "(") {
        // Call of `last_ident` on receiver (or free function).
        const size_t close = SkipBalanced(*toks_, j);
        RecordCall(last_ident, recv_class, class_qual && first_link,
                   Tk(j).line, j + 1, close - 1);
        // Evidence: X.ok() / X.has_value() style handled in RecordCall
        // via receiver text; here mark ident args of CHECK-like macros.
        Expression(j + 1, close - 1, false);
        // Chain continues off the return value.
        recv_class = ReturnClassOf(last_ident, recv_class);
        class_qual = false;
        first_link = false;
        last_ident.clear();
        j = close;
        continue;
      }
      if (t == "." || t == "->") {
        if (j + 1 >= end || Tk(j + 1).kind != Tok::kIdent) return j + 1;
        const std::string next_name = Txt(j + 1);
        const bool is_call = j + 2 < end && Txt(j + 2) == "(";
        if (!is_call) {
          // Member access: guarded-by check on the receiver's class.
          if (!recv_class.empty()) {
            std::string owner;
            const MemberInfo* m = FindMember(recv_class, next_name, &owner);
            if (m != nullptr) {
              NoteGuardedAccess(owner, next_name, *m, Tk(j + 1).line);
              recv_class = m->type_core.empty()
                               ? ""
                               : ClassKeyOfType(m->type_core);
            } else {
              recv_class = "";
            }
          }
        }
        last_ident = next_name;
        first_link = false;
        j += 2;
        continue;
      }
      if (t == "[") {
        j = SkipBalanced(*toks_, j);  // Indexing keeps the receiver?
        // Element type unknown; drop resolution but keep chaining.
        recv_class = "";
        continue;
      }
      break;
    }
    return j;
  }

  /// Class key of the type of a local / member / global identifier.
  std::string ClassKeyOfLocalOrMember(const std::string& name) {
    auto lit = locals_.find(name);
    if (lit != locals_.end()) return ClassKeyOfType(lit->second);
    if (cls_ != nullptr) {
      std::string owner;
      const MemberInfo* m = FindMember(fn_.class_key, name, &owner);
      if (m != nullptr && !m->type_core.empty()) {
        return ClassKeyOfType(m->type_core);
      }
    }
    auto git = prog_.globals.find(name);
    if (git != prog_.globals.end()) return ClassKeyOfType(git->second.type_core);
    return "";
  }

  /// Bare-name member access (implicit this->) or guarded global:
  /// guarded-by check.
  void CheckBareMemberAccess(const std::string& name, uint32_t line) {
    if (locals_.count(name)) return;  // Shadowed by a local/param.
    const MemberInfo* m = nullptr;
    std::string owner;
    if (!fn_.class_key.empty()) {
      m = FindMember(fn_.class_key, name, &owner);
      if (m != nullptr) NoteGuardedAccess(owner, name, *m, line);
    }
    if (m == nullptr) {
      auto git = prog_.globals.find(name);
      if (git != prog_.globals.end() && !git->second.guard.empty()) {
        NoteGlobalGuardedAccess(name, git->second, line);
      }
    }
  }

  void NoteGlobalGuardedAccess(const std::string& name, const GlobalVar& g,
                               uint32_t line) {
    std::string id;
    if (prog_.globals.count(g.guard)) {
      id = "::" + g.guard;
    } else {
      id = ResolveMutexName(g.guard);
    }
    GuardedUse use;
    use.file = fn_.file;
    use.line = line;
    use.member = name;
    use.mutex_id = id;
    use.mutex_disp = g.guard;
    use.held = Held(id);
    prog_.guarded_uses.push_back(std::move(use));
  }

  /// Return class key of a call, for chaining `f().g()`.
  std::string ReturnClassOf(const std::string& name,
                            const std::string& recv_class) {
    std::string ret;
    if (!recv_class.empty()) {
      ret = FindMethodRet(recv_class, name);
    } else {
      auto it = prog_.free_ret.find(name);
      if (it != prog_.free_ret.end()) ret = it->second;
    }
    return ret.empty() ? "" : ClassKeyOfType(ret);
  }

  /// Allocating std:: calls reachable from hot roots.
  void NoteStdCall(const std::string& name, uint32_t line) {
    if (name == "to_string") {
      fn_.allocs.push_back({line, "format", "std::to_string", ""});
    }
    if (name == "malloc" || name == "calloc" || name == "realloc" ||
        name == "strdup") {
      fn_.allocs.push_back({line, "malloc", name, ""});
    }
    if (name == "make_unique" || name == "make_shared") {
      fn_.allocs.push_back({line, "make", "std::" + name, ""});
    }
  }

  static bool IsGrowthCall(const std::string& name) {
    return name == "push_back" || name == "emplace_back" ||
           name == "emplace" || name == "push_front" || name == "insert" ||
           name == "append";
  }
  static bool IsReserveCall(const std::string& name) {
    return name == "reserve" || name == "resize" || name == "assign" ||
           name == "ResizeDiscard";
  }

  /// Records a call site: call-graph edge fodder, unchecked-value
  /// evidence, CHECK-macro evidence, growth/alloc classification.
  void RecordCall(const std::string& name, const std::string& recv_class,
                  bool via_class_qual, uint32_t line, size_t args_begin,
                  size_t args_end) {
    if (name.empty()) return;
    // Receiver display text: tokens immediately before the name token
    // back to the statement-ish boundary. For growth/reserve and for
    // ok()/value() evidence, we use the chain's prior ident -- cheap
    // but effective: `state.pending.push_back` -> receiver "pending".
    const std::string receiver =
        args_begin >= 3 ? PrevIdentBefore(args_begin - 3) : std::string();
    if (name == "ok" || name == "has_value") {
      if (!receiver.empty()) checked_.insert(receiver);
      return;  // Not a graph-relevant call.
    }
    if (name == "value") {
      // Only the nullary accessor (StatusOr/optional). `value(i)` is an
      // ordinary element accessor. args_end is the `)` index, so empty
      // parens give args_end == args_begin.
      const bool nullary = args_end <= args_begin;
      const bool checked = receiver.empty() || checked_.count(receiver) > 0;
      if (nullary && !checked) {
        fn_.allocs.push_back({line, "unchecked_value", receiver, ""});
      }
      return;
    }
    if (name.rfind("KDSEL_CHECK", 0) == 0 ||
        name.rfind("KDSEL_DCHECK", 0) == 0 ||
        name.rfind("KDSEL_RETURN_NOT_OK", 0) == 0 ||
        name.rfind("ASSERT_", 0) == 0 || name.rfind("EXPECT_", 0) == 0) {
      // Every identifier inside is evidence.
      for (size_t b = args_begin; b <= args_end && b < toks_->size(); ++b) {
        if (Tk(b).kind == Tok::kIdent) checked_.insert(Txt(b));
      }
      return;
    }
    if (IsReserveCall(name)) {
      if (!receiver.empty()) prog_.reserve_proven.insert(receiver);
      return;
    }
    if (IsGrowthCall(name)) {
      fn_.allocs.push_back({line, "growth", name, receiver});
      return;
    }
    if (name == "lock" || name == "unlock" || name == "try_lock") {
      // Bare mutex.lock(): treat as acquire with no scope end (rare in
      // this tree; production code uses guards).
      if (name == "lock" && !receiver.empty()) {
        // Only if the receiver is actually mutex-typed.
        if (IsMutexReceiver(receiver)) {
          NoteAcquire(ResolveMutexName(receiver), receiver, line, 0);
        }
      }
      return;
    }
    CallSite cs;
    cs.line = line;
    cs.name = name;
    cs.recv_class = recv_class;
    cs.via_class_qual = via_class_qual;
    for (const HeldMutex& h : held_) cs.held.push_back(h.id);
    fn_.calls.push_back(std::move(cs));
  }

  bool IsMutexReceiver(const std::string& name) {
    auto lit = locals_.find(name);
    if (lit != locals_.end()) return IsMutexType(lit->second);
    if (!fn_.class_key.empty()) {
      std::string owner;
      const MemberInfo* m = FindMember(fn_.class_key, name, &owner);
      if (m != nullptr) return m->is_mutex;
    }
    auto git = prog_.globals.find(name);
    if (git != prog_.globals.end()) return git->second.is_mutex;
    return false;
  }

  /// The identifier token at or before index `k` (the token preceding
  /// the called name's dot), "" if the immediate context isn't ident.
  std::string PrevIdentBefore(size_t k) {
    // Layout: ... RECEIVER . NAME ( ... -> k points at NAME's index - 1
    // == '.' or '->'; the receiver ident sits one further back.
    if (k >= toks_->size() || k < fn_.body_begin) return "";
    if (Txt(k) != "." && Txt(k) != "->") return "";
    if (k == 0) return "";
    const Token& prev = Tk(k - 1);
    if (prev.kind == Tok::kIdent) return prev.text;
    if (prev.text == ")" || prev.text == "]") {
      // value() on a call result: std::move(x).value() was handled in
      // Chain; other f().value() keeps receiver "" (treated checked --
      // conservative, matches old lookback behavior more closely via
      // the fallback below).
      return "";
    }
    return "";
  }
};

void Program::AnalyzeBodies() {
  for (FuncInfo& fn : funcs) {
    if (!fn.has_body) continue;
    BodyAnalyzer(*this, fn).Run();
  }
}

// ---------------------------------------------------------------------------
// Linking: call resolution and whole-program rule passes.
// ---------------------------------------------------------------------------

/// Second chance for out-of-class definitions whose class was not yet
/// extracted when their file was processed (sorted order puts foo.cc
/// before foo.h). Re-resolves the class, fixes quals, and moves the
/// method metadata off the free-function tables.
void Program::LinkDeferredMethods() {
  bool renamed = false;
  for (FuncInfo& fn : funcs) {
    if (!fn.class_key.empty() || fn.cls_hint.empty()) continue;
    std::string key = FindClassKey(fn.cls_hint, fn.file);
    if (key.empty()) {
      for (const auto& [k, info] : classes) {
        if (k.size() >= fn.path_hint.size() &&
            k.compare(k.size() - fn.path_hint.size(), fn.path_hint.size(),
                      fn.path_hint) == 0) {
          key = k;
          break;
        }
      }
    }
    if (key.empty()) {
      // Truly unresolvable: record the metadata as free-function after
      // all (the extraction pass deferred it).
      if (!fn.ctor_dtor && !free_ret.count(fn.name)) {
        free_ret[fn.name] = fn.ret_core;
      }
      if (!fn.requires_args.empty()) free_requires[fn.name] = fn.requires_args;
      continue;
    }
    fn.class_key = key;
    fn.qual = key + "::" + fn.name;
    renamed = true;
    ClassInfo& ci = classes[key];
    ci.method_names.insert(fn.name);
    if (!fn.ctor_dtor) ci.method_ret[fn.name] = fn.ret_core;
    if (!fn.requires_args.empty()) {
      ci.method_requires[fn.name] = fn.requires_args;
    }
  }
  if (renamed) {
    funcs_by_qual.clear();
    for (size_t i = 0; i < funcs.size(); ++i) {
      funcs_by_qual.emplace(funcs[i].qual, static_cast<int>(i));
    }
  }
}

void Program::ResolveCalls() {
  for (FuncInfo& fn : funcs) {
    for (CallSite& cs : fn.calls) {
      cs.targets.clear();
      if (!cs.recv_class.empty()) {
        // Typed dispatch: the receiver class or any base/derived class
        // defining the method.
        std::vector<std::string> todo = {cs.recv_class};
        std::set<std::string> seen;
        while (!todo.empty()) {
          const std::string key = todo.back();
          todo.pop_back();
          if (!seen.insert(key).second) continue;
          auto fq = funcs_by_qual.find(key + "::" + cs.name);
          if (fq != funcs_by_qual.end()) cs.targets.push_back(fq->second);
          auto it = classes.find(key);
          if (it != classes.end()) {
            for (const std::string& b : it->second.base_keys) {
              todo.push_back(b);
            }
          }
        }
        if (!cs.targets.empty()) continue;
      }
      // Free function by exact name; if that fails, fall back to a
      // unique same-name function anywhere (covers methods called on
      // receivers the resolver lost). Ambiguous names drop the edge:
      // a wrong edge is worse than a missing one for these rules.
      auto range = funcs_by_name.equal_range(cs.name);
      int unique = -1;
      int count = 0;
      for (auto it = range.first; it != range.second; ++it) {
        unique = it->second;
        ++count;
      }
      if (count == 1) {
        const FuncInfo& target = funcs[unique];
        if (cs.recv_class.empty() || target.class_key == cs.recv_class ||
            !target.class_key.empty()) {
          cs.targets.push_back(unique);
        }
      }
    }
  }
}

/// Fixpoint: acquires_eventually = acquires U union(callee.acquires_eventually)
void Program::ComputeAcquiresFixpoint() {
  for (FuncInfo& fn : funcs) fn.acquires_eventually = fn.acquires;
  bool changed = true;
  while (changed) {
    changed = false;
    for (FuncInfo& fn : funcs) {
      for (const CallSite& cs : fn.calls) {
        for (int t : cs.targets) {
          for (const std::string& id : funcs[t].acquires_eventually) {
            if (fn.acquires_eventually.insert(id).second) changed = true;
          }
        }
      }
    }
  }
}

/// Builds transitive lock edges (held at a call -> acquired inside any
/// callee, transitively), then finds strongly connected components of
/// the lock graph; every edge inside a multi-node SCC is part of a
/// potential deadlock cycle.
void BuildLockDiagnostics(Program& prog, std::vector<Diagnostic>* out) {
  std::vector<LockEdge> edges = prog.lock_edges;
  for (const FuncInfo& fn : prog.funcs) {
    for (const CallSite& cs : fn.calls) {
      if (cs.held.empty()) continue;
      for (int t : cs.targets) {
        for (const std::string& to : prog.funcs[t].acquires_eventually) {
          for (const std::string& from : cs.held) {
            if (from == to) continue;
            LockEdge e;
            e.from = from;
            e.to = to;
            e.file = fn.file;
            e.line = cs.line;
            e.via = cs.name;
            edges.push_back(std::move(e));
          }
        }
      }
    }
  }
  // Node table.
  std::map<std::string, int> node_of;
  std::vector<std::string> nodes;
  auto intern = [&](const std::string& id) {
    auto [it, fresh] = node_of.emplace(id, static_cast<int>(nodes.size()));
    if (fresh) nodes.push_back(id);
    return it->second;
  };
  std::vector<std::vector<int>> adj;
  for (const LockEdge& e : edges) {
    const int a = intern(e.from);
    const int b = intern(e.to);
    if (static_cast<size_t>(std::max(a, b)) >= adj.size()) {
      adj.resize(std::max(a, b) + 1);
    }
    adj[a].push_back(b);
  }
  adj.resize(nodes.size());
  // Tarjan SCC (iterative).
  const int n = static_cast<int>(nodes.size());
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;
  struct Frame {
    int v;
    size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames = {{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        const int w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = next_comp;
            if (w == f.v) break;
          }
          ++next_comp;
        }
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  // Component sizes.
  std::vector<int> comp_size(next_comp, 0);
  for (int v = 0; v < n; ++v) ++comp_size[comp[v]];
  // An edge is cyclic if both ends are in the same SCC of size >= 2
  // (self-loops were never emitted).
  auto short_name = [](const std::string& id) {
    const size_t at = id.rfind("::");
    std::string tail = at == std::string::npos ? id : id.substr(at + 2);
    // Re-attach the class's last component for readability when the id
    // is Class::member.
    if (at != std::string::npos && at > 0) {
      const std::string head = id.substr(0, at);
      const size_t at2 = head.rfind("::");
      const std::string cls =
          at2 == std::string::npos ? head : head.substr(at2 + 2);
      if (!cls.empty() && cls.find('#') == std::string::npos) {
        return cls + "::" + tail;
      }
    }
    return tail;
  };
  // Dedupe per (from, to): keep the lexicographically first location.
  std::map<std::pair<std::string, std::string>, const LockEdge*> best;
  for (const LockEdge& e : edges) {
    const int a = node_of[e.from], b = node_of[e.to];
    if (comp[a] != comp[b] || comp_size[comp[a]] < 2) continue;
    auto key = std::make_pair(e.from, e.to);
    auto it = best.find(key);
    if (it == best.end()) {
      best.emplace(key, &e);
      continue;
    }
    const LockEdge& old = *it->second;
    const auto loc = std::make_pair(prog.files[e.file].display_path, e.line);
    const auto old_loc =
        std::make_pair(prog.files[old.file].display_path, old.line);
    if (loc < old_loc) it->second = &e;
  }
  for (const auto& [key, e] : best) {
    // Find the opposite edge's location for the message.
    std::string opposite = "elsewhere";
    auto rev = best.find(std::make_pair(key.second, key.first));
    if (rev != best.end()) {
      opposite = prog.files[rev->second->file].display_path + ":" +
                 std::to_string(rev->second->line);
    }
    Diagnostic d;
    d.file = prog.files[e->file].display_path;
    d.line = e->line;
    d.rule = "lock-order-inversion";
    if (e->via.empty()) {
      d.message = "mutex '" + short_name(key.second) +
                  "' is acquired while '" + short_name(key.first) +
                  "' is held, but the opposite order exists at " + opposite +
                  "; establish a single global lock order";
    } else {
      d.message = "mutex '" + short_name(key.second) +
                  "' can be acquired (via call to '" + e->via +
                  "') while '" + short_name(key.first) +
                  "' is held, but the opposite order exists at " + opposite +
                  "; establish a single global lock order";
    }
    out->push_back(std::move(d));
  }
}

void BuildGuardedByDiagnostics(Program& prog, std::vector<Diagnostic>* out) {
  for (const GuardedUse& use : prog.guarded_uses) {
    if (use.held) continue;
    Diagnostic d;
    d.file = prog.files[use.file].display_path;
    d.line = use.line;
    d.rule = "guarded-by";
    d.message = "member '" + use.member + "' is guarded by '" +
                use.mutex_disp +
                "' (KDSEL_GUARDED_BY) but accessed without it held; take "
                "the lock or annotate the function with KDSEL_REQUIRES(" +
                use.mutex_disp + ")";
    out->push_back(std::move(d));
  }
  // KDSEL_REQUIRES call-site checks: calling a requires-annotated
  // function without the mutex held.
  for (const FuncInfo& fn : prog.funcs) {
    for (const CallSite& cs : fn.calls) {
      for (int t : cs.targets) {
        const FuncInfo& target = prog.funcs[t];
        for (size_t r = 0; r < target.requires_ids.size(); ++r) {
          const std::string& id = target.requires_ids[r];
          bool held = false;
          for (const std::string& h : cs.held) {
            if (h == id) held = true;
          }
          // A REQUIRES function calling a same-requirement helper is
          // covered because fn.requires_ids seed the held set.
          if (held) continue;
          Diagnostic d;
          d.file = prog.files[fn.file].display_path;
          d.line = cs.line;
          d.rule = "guarded-by";
          d.message = "call to '" + target.name + "' requires '" +
                      target.requires_args[r] +
                      "' held (KDSEL_REQUIRES) but it is not; take the "
                      "lock before calling";
          out->push_back(std::move(d));
        }
      }
    }
  }
}

void BuildHotPathDiagnostics(Program& prog, std::vector<Diagnostic>* out) {
  // BFS from every KDSEL_HOT root; KDSEL_ALLOC_OK functions are trusted
  // boundaries the walk does not enter.
  std::vector<int> roots;
  for (size_t i = 0; i < prog.funcs.size(); ++i) {
    if (prog.funcs[i].hot && prog.funcs[i].has_body) {
      roots.push_back(static_cast<int>(i));
    }
  }
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    return prog.funcs[a].qual < prog.funcs[b].qual;
  });
  for (int root : roots) {
    // parent chain for display: func index -> (parent, via call name).
    std::map<int, int> parent;
    std::vector<int> queue = {root};
    parent[root] = -1;
    size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      const FuncInfo& fn = prog.funcs[v];
      for (const CallSite& cs : fn.calls) {
        for (int t : cs.targets) {
          const FuncInfo& target = prog.funcs[t];
          if (target.alloc_ok || !target.has_body) continue;
          if (parent.count(t)) continue;
          parent[t] = v;
          queue.push_back(t);
        }
      }
    }
    auto chain_of = [&](int v) {
      std::vector<std::string> names;
      for (int cur = v; cur != -1; cur = parent[cur]) {
        names.push_back(prog.funcs[cur].name);
      }
      std::string chain;
      for (size_t i = names.size(); i-- > 0;) {
        if (!chain.empty()) chain += " -> ";
        chain += names[i];
      }
      return chain;
    };
    for (const int v : queue) {
      const FuncInfo& fn = prog.funcs[v];
      if (fn.alloc_ok) continue;
      for (const AllocSite& a : fn.allocs) {
        if (a.kind == "unchecked_value") continue;
        Diagnostic d;
        d.file = prog.files[fn.file].display_path;
        d.line = a.line;
        d.rule = "alloc-in-hot-path";
        const std::string chain = chain_of(v);
        if (a.kind == "growth") {
          if (prog.reserve_proven.count(a.receiver)) continue;
          d.message = "'" + a.what + "' on '" + a.receiver +
                      "' allocates (no reserve() for '" + a.receiver +
                      "' anywhere in the tree) on the hot path '" + chain +
                      "'; reserve in setup or mark a KDSEL_ALLOC_OK "
                      "boundary";
        } else if (a.kind == "format") {
          d.message = "'" + a.what + "' allocates on the hot path '" + chain +
                      "'; hoist the formatting off the steady-state path or "
                      "mark a KDSEL_ALLOC_OK boundary";
        } else {
          d.message = "raw '" + a.what + "' allocates on the hot path '" +
                      chain +
                      "'; pool it or mark a KDSEL_ALLOC_OK boundary";
        }
        out->push_back(std::move(d));
      }
    }
  }
  // One allocation can be reachable from several roots; dedupe by
  // (file, line, message-prefix-free identity) keeping the first root's
  // chain -- roots are walked in sorted order so this is stable.
  std::sort(out->begin(), out->end());
  std::set<std::pair<std::string, size_t>> seen;
  std::vector<Diagnostic> unique;
  for (Diagnostic& d : *out) {
    if (d.rule == "alloc-in-hot-path") {
      if (!seen.insert({d.file, d.line}).second) continue;
    }
    unique.push_back(std::move(d));
  }
  out->swap(unique);
}

/// unchecked-value diagnostics recorded during body analysis.
void BuildUncheckedValueDiagnostics(Program& prog,
                                    std::vector<Diagnostic>* out) {
  for (const FuncInfo& fn : prog.funcs) {
    for (const AllocSite& a : fn.allocs) {
      if (a.kind != "unchecked_value") continue;
      Diagnostic d;
      d.file = prog.files[fn.file].display_path;
      d.line = a.line;
      d.rule = "unchecked-value";
      d.message =
          ".value() without a nearby ok()/has_value() check aborts on "
          "error; check first or propagate with KDSEL_ASSIGN_OR_RETURN";
      out->push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file token passes (the nine original rules, regex-free).
// ---------------------------------------------------------------------------

bool IsParseName(const std::string& t) {
  static const std::set<std::string> names = {
      "stoi",  "stol",    "stoll",   "stoul",  "stoull", "stof",
      "stod",  "stold",   "atoi",    "atol",   "atoll",  "atof",
      "strtol", "strtoll", "strtoul", "strtoull", "strtof", "strtod"};
  return names.count(t) > 0;
}

/// Statement-start heuristic over tokens: the previous token ends a
/// statement or opens a block.
bool AtStatementStart(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return true;
  const std::string& p = toks[i - 1].text;
  return p == ";" || p == "{" || p == "}" || p == ":";
}

void RunFilePasses(Program& prog, int fi, std::vector<Diagnostic>* out) {
  const SourceFile& file = prog.files[fi];
  const std::vector<Token>& toks = file.tokens;
  auto report = [&](uint32_t line, const char* rule, std::string message) {
    out->push_back(
        {file.display_path, line, rule, std::move(message)});
  };

  // raw-simd: intrinsic headers (preprocessor lines were captured on
  // the side; macro-heavy token streams never see them).
  if (!file.in_kernels) {
    for (const auto& [line, pp] : file.pp_lines) {
      if (pp.find("include") != std::string::npos &&
          pp.find("intrin.h") != std::string::npos) {
        report(line, "raw-simd",
               "raw SIMD outside src/nn/kernels/ bypasses runtime dispatch "
               "and the scalar fallback; add a kernel to nn::kernels and "
               "call it through Dispatch()");
      }
    }
  }

  // Function-body token ranges for this file (unchecked-value fallback
  // only applies outside them; inside, BodyAnalyzer's receiver-matched
  // evidence is strictly better).
  std::vector<std::pair<size_t, size_t>> body_ranges;
  for (const FuncInfo& fn : prog.funcs) {
    if (fn.file == fi && fn.has_body) {
      body_ranges.emplace_back(fn.body_begin, fn.body_end);
    }
  }
  auto in_body = [&](size_t i) {
    for (const auto& [b, e] : body_ranges) {
      if (i >= b && i < e) return true;
    }
    return false;
  };

  // Guard liveness for lock-across-score: (brace depth) per live guard.
  int depth = 0;
  std::vector<int> live_guards;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    const std::string& t = tok.text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      while (!live_guards.empty() && live_guards.back() >= depth) {
        live_guards.pop_back();
      }
      --depth;
      continue;
    }
    if (tok.kind != Tok::kIdent) continue;
    const bool next_is_call = i + 1 < toks.size() && toks[i + 1].text == "(";
    const std::string prev = i > 0 ? toks[i - 1].text : "";
    // An adjacent non-keyword identifier means a declaration head
    // (`long strtol(`), never a call.
    const bool prev_is_decl_head = i > 0 && toks[i - 1].kind == Tok::kIdent &&
                                   StatementKeywords().count(prev) == 0;

    if (IsGuardType(t) && next_is_call == false) {
      // `std::lock_guard<...> name(...)` -- a declaration, not a call.
      // Record liveness at the current depth.
      size_t j = TrySkipAngles(toks, i + 1);
      if (j < toks.size() && toks[j].kind == Tok::kIdent) {
        live_guards.push_back(depth);
      }
      continue;
    }

    if (t == "Score" && next_is_call && !live_guards.empty() &&
        !prev_is_decl_head) {
      report(tok.line, "lock-across-score",
             "detector Score() runs while a mutex guard is live; scoring is "
             "slow and must happen off-lock (clone or snapshot instead)");
      continue;
    }

    if (t == "new" && prev != "operator") {
      // Old matcher required whitespace after `new`, which skipped
      // placement/operator forms; token equivalent: skip `new (`.
      if (!next_is_call) {
        report(tok.line, "naked-new",
               "raw 'new' allocation; use std::make_unique/std::make_shared "
               "or a container");
      }
      continue;
    }
    if ((t == "malloc" || t == "calloc" || t == "realloc" || t == "strdup") &&
        next_is_call && !prev_is_decl_head && prev != "." &&
        prev != "->") {
      report(tok.line, "naked-new",
             "'" + t +
                 "' allocation; use std::make_unique/std::make_shared or a "
                 "container");
      continue;
    }

    if (!file.in_common && IsParseName(t) && next_is_call &&
        !prev_is_decl_head && prev != "." && prev != "->") {
      report(tok.line, "raw-parse",
             "'" + t +
                 "' outside common/: it throws or silently wraps; use "
                 "kdsel::ParseUint64 (stringutil.h)");
      continue;
    }

    if ((t == "rand" || t == "srand") && next_is_call &&
        !prev_is_decl_head && prev != "." && prev != "->") {
      report(tok.line, "nonreproducible-random",
             "unseeded/wall-clock randomness breaks bit-for-bit "
             "reproducibility; use kdsel::Rng with an explicit seed");
      continue;
    }
    if (t == "random_device") {
      report(tok.line, "nonreproducible-random",
             "unseeded/wall-clock randomness breaks bit-for-bit "
             "reproducibility; use kdsel::Rng with an explicit seed");
      continue;
    }
    if (t == "time" && next_is_call && !prev_is_decl_head &&
        prev != "." && prev != "->" && i + 3 < toks.size() &&
        (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" ||
         toks[i + 2].text == "0") &&
        toks[i + 3].text == ")") {
      report(tok.line, "nonreproducible-random",
             "unseeded/wall-clock randomness breaks bit-for-bit "
             "reproducibility; use kdsel::Rng with an explicit seed");
      continue;
    }

    if (!file.in_thread_zone &&
        (t == "thread" || t == "jthread" || t == "async") && prev == "::" &&
        i >= 2 && toks[i - 2].text == "std") {
      report(tok.line, "raw-thread",
             "'std::" + std::string(t == "async" ? "thread" : t) +
                 "' outside src/common/, src/serve/ and src/net/ bypasses "
                 "the shared pool; use kdsel::ParallelFor or ThreadPool "
                 "(common/parallel.h)");
      continue;
    }

    if (!file.in_net && next_is_call && !prev_is_decl_head && prev != "." &&
        prev != "->" && prev != "::" &&
        (t == "socket" || t == "accept" || t == "accept4" ||
         t == "epoll_create" || t == "epoll_create1" || t == "epoll_ctl" ||
         t == "epoll_wait" || t == "epoll_pwait")) {
      report(tok.line, "raw-socket",
             "'" + t +
                 "' outside src/net/ bypasses the event loop's nonblocking "
                 "setup, backpressure and shedding; serve through "
                 "net::NetServer (net/server.h)");
      continue;
    }

    if (!file.in_kernels) {
      if (t.rfind("_mm", 0) == 0 && next_is_call) {
        report(tok.line, "raw-simd",
               "raw SIMD outside src/nn/kernels/ bypasses runtime dispatch "
               "and the scalar fallback; add a kernel to nn::kernels and "
               "call it through Dispatch()");
        continue;
      }
      if (t.rfind("__m128", 0) == 0 || t.rfind("__m256", 0) == 0 ||
          t.rfind("__m512", 0) == 0) {
        report(tok.line, "raw-simd",
               "raw SIMD outside src/nn/kernels/ bypasses runtime dispatch "
               "and the scalar fallback; add a kernel to nn::kernels and "
               "call it through Dispatch()");
        continue;
      }
    }

    if (!file.in_timing_zone &&
        (t == "steady_clock" || t == "high_resolution_clock")) {
      report(tok.line, "raw-timing",
             "'" + t +
                 "' outside src/obs/, src/common/ and bench/; time through "
                 "obs::Clock/NowNs (obs/clock.h) or record a span/histogram "
                 "so all durations share one timebase");
      continue;
    }
    // The C-level bypasses of the same rule: request timestamping in
    // src/net/ and src/serve/ must flow through obs::NowNs so every
    // stage stamp shares the steady timebase (mixing in CLOCK_REALTIME
    // or wall-clock gettimeofday silently corrupts stage deltas across
    // NTP slews).
    if (!file.in_timing_zone && next_is_call && !prev_is_decl_head &&
        prev != "." && prev != "->" && prev != "::" &&
        (t == "clock_gettime" || t == "gettimeofday" ||
         t == "timespec_get")) {
      report(tok.line, "raw-timing",
             "'" + t +
                 "' outside src/obs/, src/common/ and bench/; stamp through "
                 "obs::NowNs (obs/clock.h) so request stage timings share "
                 "one steady timebase");
      continue;
    }

    // discarded-status: bare-statement call of a known Status-returning
    // function. Adjacent-identifier contexts (declarations, macro-
    // wrapped calls, assignments) never sit at a statement start.
    if (next_is_call && AtStatementStart(toks, i) &&
        prog.status_names.count(t) > 0 && prog.ambiguous_names.count(t) == 0) {
      // Qualified calls `ns::F(...)`: the name token is preceded by
      // `::`, so the statement-start check already excluded them; the
      // qualifier head would have been flagged instead -- approximate
      // by also flagging `A::F()` heads whose final name qualifies.
      report(tok.line, "discarded-status",
             "result of Status-returning call '" + t +
                 "' is discarded; check it, propagate it with "
                 "KDSEL_RETURN_NOT_OK, or assert on it");
      continue;
    }
    if (next_is_call && prev == "::" && i >= 2 &&
        AtStatementStart(toks, i - 2) && toks[i - 2].kind == Tok::kIdent &&
        prog.status_names.count(t) > 0 && prog.ambiguous_names.count(t) == 0) {
      report(tok.line, "discarded-status",
             "result of Status-returning call '" + t +
                 "' is discarded; check it, propagate it with "
                 "KDSEL_RETURN_NOT_OK, or assert on it");
      continue;
    }

    // unchecked-value fallback outside extracted function bodies: the
    // original 8-line lookback over ok()/has_value() evidence.
    if (t == "value" && next_is_call && (prev == "." || prev == "->") &&
        i + 2 < toks.size() && toks[i + 2].text == ")" && !in_body(i)) {
      bool checked = false;
      for (size_t b = i; b-- > 0;) {
        if (toks[b].line + 8 < tok.line) break;
        if (toks[b].kind == Tok::kIdent &&
            (toks[b].text == "ok" || toks[b].text == "has_value") &&
            b + 1 < toks.size() && toks[b + 1].text == "(") {
          checked = true;
          break;
        }
      }
      if (!checked) {
        report(tok.line, "unchecked-value",
               ".value() without a nearby ok()/has_value() check aborts on "
               "error; check first or propagate with "
               "KDSEL_ASSIGN_OR_RETURN");
      }
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintText(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    std::printf("%s:%zu: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
}

void PrintJson(const std::vector<Diagnostic>& diagnostics) {
  std::printf("[");
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    std::printf(
        "%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
        "\"message\": \"%s\"}",
        i == 0 ? "" : ",", JsonEscape(d.file).c_str(), d.line,
        JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str());
  }
  std::printf("%s]\n", diagnostics.empty() ? "" : "\n");
}

void PrintSarif(const std::vector<Diagnostic>& diagnostics) {
  std::printf(
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"kdsel-lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/kdsel/tools/kdsel_lint\",\n"
      "          \"rules\": [\n");
  size_t ri = 0;
  for (const RuleInfo& rule : kRules) {
    std::printf(
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": "
        "\"%s\"}}%s\n",
        rule.name, JsonEscape(rule.summary).c_str(),
        ++ri < sizeof(kRules) / sizeof(kRules[0]) ? "," : "");
  }
  std::printf(
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [%s", diagnostics.empty() ? "" : "\n");
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    std::printf(
        "        {\n"
        "          \"ruleId\": \"%s\",\n"
        "          \"level\": \"error\",\n"
        "          \"message\": {\"text\": \"%s\"},\n"
        "          \"locations\": [\n"
        "            {\n"
        "              \"physicalLocation\": {\n"
        "                \"artifactLocation\": {\"uri\": \"%s\"},\n"
        "                \"region\": {\"startLine\": %zu}\n"
        "              }\n"
        "            }\n"
        "          ]\n"
        "        }%s\n",
        JsonEscape(d.rule).c_str(), JsonEscape(d.message).c_str(),
        JsonEscape(d.file).c_str(), d.line,
        i + 1 < diagnostics.size() ? "," : "");
  }
  std::printf(
      "%s]\n"
      "    }\n"
      "  ]\n"
      "}\n",
      diagnostics.empty() ? "" : "      ");
}

// ---------------------------------------------------------------------------
// File collection and driver
// ---------------------------------------------------------------------------

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

std::string DisplayPath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  std::string display = (!ec && !rel.empty() &&
                         rel.native().rfind("..", 0) == std::string::npos)
                            ? rel.generic_string()
                            : path.generic_string();
  return display;
}

void CollectFromDirectory(const fs::path& dir, bool skip_fixtures,
                          std::vector<fs::path>* out) {
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec), end;
  while (!ec && it != end) {
    const fs::directory_entry entry = *it;
    if (entry.is_directory(ec)) {
      const std::string name = entry.path().filename().string();
      if (name == ".git" || name.rfind("build", 0) == 0 ||
          (skip_fixtures && name == "lint_fixtures")) {
        it.disable_recursion_pending();
      }
    } else if (entry.is_regular_file(ec) && HasSourceExtension(entry.path())) {
      out->push_back(entry.path());
    }
    it.increment(ec);
  }
}

void SetZones(SourceFile& file) {
  const std::string& p = file.display_path;
  auto contains = [&](const char* needle) {
    return p.find(needle) != std::string::npos;
  };
  file.in_common = contains("src/common/") || contains("src\\common\\");
  file.in_net = contains("src/net/") || contains("src\\net\\");
  file.in_thread_zone = file.in_common || file.in_net ||
                        contains("src/serve/") || contains("src\\serve\\");
  file.in_kernels = contains("src/nn/kernels/") || contains("src\\nn\\kernels\\");
  file.in_timing_zone = file.in_common || contains("src/obs/") ||
                        contains("src\\obs\\") || p.rfind("bench/", 0) == 0 ||
                        contains("/bench/");
}

int Usage(FILE* stream) {
  std::fprintf(
      stream,
      "usage: kdsel_lint [--root DIR] [--self-check] [--list-rules]\n"
      "                  [--format text|json|sarif] [--budget-ms N]\n"
      "                  [paths...]\n"
      "\n"
      "Lints kdsel sources for repo-specific rules. With no paths, scans\n"
      "src/, tools/, bench/ and tests/ under --root (skipping\n"
      "tests/lint_fixtures/). Exit: 0 clean, 1 findings, 2 usage error.\n");
  return stream == stderr ? 2 : 0;
}

bool InTestsDir(const std::string& display) {
  return display.rfind("tests/", 0) == 0 ||
         display.find("/tests/") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start_time = std::chrono::system_clock::now();
  fs::path root = fs::current_path();
  bool self_check = false;
  std::string format = "text";
  long budget_ms = -1;
  std::vector<std::string> paths;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") return Usage(stdout);
    if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules) {
        std::printf("%s: %s\n", rule.name, rule.summary);
      }
      return 0;
    }
    if (arg == "--self-check") {
      self_check = true;
      continue;
    }
    if (arg == "--root") {
      if (a + 1 >= argc) return Usage(stderr);
      root = argv[++a];
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format") {
      if (a + 1 >= argc) return Usage(stderr);
      format = argv[++a];
    } else if (arg == "--budget-ms") {
      if (a + 1 >= argc) return Usage(stderr);
      budget_ms = 0;
      for (const char* c = argv[++a]; *c >= '0' && *c <= '9'; ++c) {
        budget_ms = budget_ms * 10 + (*c - '0');
      }
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(stderr);
    } else {
      paths.push_back(arg);
      continue;
    }
    if (format != "text" && format != "json" && format != "sarif") {
      return Usage(stderr);
    }
  }

  // Collect files.
  std::vector<fs::path> inputs;
  if (paths.empty()) {
    for (const char* sub : {"src", "tools", "bench", "tests"}) {
      const fs::path dir = root / sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) {
        CollectFromDirectory(dir, /*skip_fixtures=*/true, &inputs);
      }
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "kdsel-lint: no sources under %s (wrong --root?)\n",
                   root.string().c_str());
      return 2;
    }
  } else {
    for (const std::string& p : paths) {
      const fs::path path(p);
      std::error_code ec;
      if (fs::is_directory(path, ec)) {
        CollectFromDirectory(path, /*skip_fixtures=*/false, &inputs);
      } else if (fs::is_regular_file(path, ec)) {
        inputs.push_back(path);
      } else {
        std::fprintf(stderr, "kdsel-lint: no such file: %s\n", p.c_str());
        return 2;
      }
    }
  }

  Program prog;
  prog.files.reserve(inputs.size());
  for (const fs::path& path : inputs) {
    SourceFile file;
    file.path = path;
    file.display_path = DisplayPath(path, root);
    prog.files.push_back(std::move(file));
  }
  std::sort(prog.files.begin(), prog.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.display_path < b.display_path;
            });
  prog.files.erase(
      std::unique(prog.files.begin(), prog.files.end(),
                  [](const SourceFile& a, const SourceFile& b) {
                    return a.display_path == b.display_path;
                  }),
      prog.files.end());

  for (SourceFile& file : prog.files) {
    std::ifstream in(file.path, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "kdsel-lint: cannot read %s\n",
                   file.path.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    SetZones(file);
    Tokenize(text, file);
  }

  // Whole-program analysis.
  for (size_t fi = 0; fi < prog.files.size(); ++fi) {
    prog.ExtractFile(static_cast<int>(fi));
  }
  prog.ResolveBases();
  prog.LinkDeferredMethods();
  prog.AnalyzeBodies();
  prog.ResolveCalls();
  prog.ComputeAcquiresFixpoint();

  std::vector<Diagnostic> diagnostics;
  for (size_t fi = 0; fi < prog.files.size(); ++fi) {
    RunFilePasses(prog, static_cast<int>(fi), &diagnostics);
  }
  BuildUncheckedValueDiagnostics(prog, &diagnostics);
  BuildLockDiagnostics(prog, &diagnostics);
  BuildGuardedByDiagnostics(prog, &diagnostics);
  BuildHotPathDiagnostics(prog, &diagnostics);

  // Suppressions; in self-check mode, suppressing the load-bearing
  // rules outside tests/ is itself a finding.
  std::map<std::string, const SourceFile*> by_display;
  for (const SourceFile& file : prog.files) {
    by_display[file.display_path] = &file;
  }
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : diagnostics) {
    auto it = by_display.find(d.file);
    if (it != by_display.end() &&
        Suppressed(*it->second, d.line, d.rule.c_str())) {
      continue;
    }
    kept.push_back(std::move(d));
  }
  diagnostics.swap(kept);
  if (self_check) {
    for (const SourceFile& file : prog.files) {
      if (InTestsDir(file.display_path)) continue;
      for (const auto& [line, rules] : file.markers) {
        if (rules.count("discarded-status")) {
          diagnostics.push_back(
              {file.display_path, line, "discarded-status",
               "suppressing discarded-status outside tests/ is forbidden; "
               "handle or propagate the Status"});
        }
        for (const char* rule :
             {"lock-order-inversion", "guarded-by", "alloc-in-hot-path"}) {
          if (rules.count(rule)) {
            diagnostics.push_back(
                {file.display_path, line, rule,
                 std::string("suppressing ") + rule +
                     " outside tests/ is forbidden; fix the root cause "
                     "instead of silencing the analyzer"});
          }
        }
      }
    }
  }

  std::sort(diagnostics.begin(), diagnostics.end());
  diagnostics.erase(std::unique(diagnostics.begin(), diagnostics.end()),
                    diagnostics.end());

  if (format == "json") {
    PrintJson(diagnostics);
  } else if (format == "sarif") {
    PrintSarif(diagnostics);
  } else {
    PrintText(diagnostics);
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now() - start_time)
                           .count();
  if (self_check || diagnostics.empty()) {
    std::fprintf(stderr, "kdsel-lint: %zu files scanned, %zu finding%s\n",
                 prog.files.size(), diagnostics.size(),
                 diagnostics.size() == 1 ? "" : "s");
  }
  if (self_check) {
    const std::string budget_note =
        budget_ms >= 0 ? " (budget " + std::to_string(budget_ms) + " ms)"
                       : std::string();
    std::fprintf(stderr, "kdsel-lint: full-tree lint took %lld ms%s\n",
                 static_cast<long long>(elapsed), budget_note.c_str());
  }
  if (budget_ms >= 0 && elapsed > budget_ms) {
    std::fprintf(stderr,
                 "kdsel-lint: budget exceeded: %lld ms > %ld ms\n",
                 static_cast<long long>(elapsed), budget_ms);
    return 1;
  }
  return diagnostics.empty() ? 0 : 1;
}
