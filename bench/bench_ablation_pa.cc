// Ablation of the PA module's hyper-parameters (DESIGN.md ablation
// index): pruning ratio r, LSH signature width, and the number of
// equi-depth loss bins p. Uses the cheap ConvNet backbone (PA is
// architecture-agnostic) with PISL & MKI on, as in Table 2's protocol.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();

  auto base = [] {
    core::TrainerOptions o;
    o.backbone = "ConvNet";
    o.seed = 1;
    o.use_pisl = true;
    o.use_mki = true;
    o.pruning.mode = core::PruningMode::kPa;
    return o;
  };

  exp::Table table({"Config", "AUC-PR", "Time (s)", "Visits saved (%)"});
  auto run = [&](core::TrainerOptions opts, const std::string& name) {
    auto r = bench::TrainAndEvaluate(*env, opts, name);
    table.AddRow(
        {name, StrFormat("%.4f", r.auc.at("Average")),
         StrFormat("%.1f", r.train_seconds),
         StrFormat("%.1f", 100.0 * (1.0 - double(r.samples_visited) /
                                              double(r.full_visits)))});
  };

  {
    core::TrainerOptions o = base();
    o.pruning.mode = core::PruningMode::kNone;
    run(o, "no pruning");
  }
  for (double ratio : {0.5, 0.8, 0.9}) {
    core::TrainerOptions o = base();
    o.pruning.prune_ratio = ratio;
    run(o, StrFormat("PA r=%.1f", ratio));
  }
  for (size_t bits : {size_t{8}, size_t{20}}) {
    core::TrainerOptions o = base();
    o.pruning.lsh_bits = bits;
    run(o, StrFormat("PA lsh_bits=%zu", bits));
  }
  for (size_t bins : {size_t{2}, size_t{16}}) {
    core::TrainerOptions o = base();
    o.pruning.num_bins = bins;
    run(o, StrFormat("PA bins=%zu", bins));
  }

  std::printf("\nPA hyper-parameter ablation (ConvNet + PISL&MKI)\n");
  table.Print();
  std::printf(
      "\nExpected shape: larger r saves more visits with growing AUC\n"
      "risk; fewer LSH bits / fewer bins make buckets coarser (more\n"
      "pruning, more risk); the paper's defaults (r=0.8, 14 bits, 8\n"
      "bins) sit in the accuracy-preserving regime.\n");
  return 0;
}
