// Multi-process closed-loop load driver for the network serving layer.
//
// The default mode trains a small ConvNet selector, stands up the full
// serving stack in-process (InferenceServer + net::NetServer on a
// loopback ephemeral port) and forks N client processes — fork+exec of
// this same binary in --connect mode — that drive pipelined NDJSON over
// TCP. Each child streams its raw per-request latencies back through an
// inherited pipe; the parent merges them and reports client-observed
// p50/p99/p999, throughput and shed rate into BENCH_serving.json.
//
// Two configurations run back to back:
//   capacity  no SLO, minimal payload (one selector window/request,
//             small hot pool so batches coalesce): peak sustained req/s.
//   overload  demand engineered past what one machine serves within the
//             --slo-ms target: the shedder must reject (shed > 0) while
//             the latency of *accepted* requests stays near the SLO.
//
// Modes:
//   (default)             driver: servers + forked clients, JSON report
//   --connect HOST:PORT   client only (used by the forked children and
//                         by the CI loopback smoke job)
//   --export-selector DIR train the bench selector, save as "bench",
//                         exit (lets CI start `kdsel serve --dir DIR`)
//
// Flags:
//   --requests N     capacity-run total requests (default 100000;
//                    overload runs 2N). In --connect mode: requests
//                    this client sends.
//   --clients C      client processes per run (default 2)
//   --pipeline D     in-flight requests per client (default 256)
//   --series-len L   values per request (default 16 = one window)
//   --pool K         distinct hot series cycled through (default 4)
//   --slo-ms M       overload-run SLO (default 10.0)
//   --latency-fd FD  (child only) pipe fd for the binary latency blob

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_report.h"
#include "common/rng.h"
#include "common/stringutil.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "net/listener.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace kdsel {
namespace {

constexpr size_t kWindow = 16;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<core::TrainedSelector> TrainBenchSelector() {
  core::SelectorTrainingData data;
  data.num_classes = 2;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const int c = i % 2;
    std::vector<float> w(kWindow);
    for (size_t t = 0; t < kWindow; ++t) {
      w[t] = std::sin((0.3 + 0.9 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = 7;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

/// Precomputes the request pool as fully formatted NDJSON lines (id 0
/// throughout: replies come back in submission order per connection, so
/// clients match them to send timestamps FIFO instead of by id).
std::vector<std::string> MakeRequestLines(size_t pool, size_t series_len) {
  std::vector<std::string> lines;
  Rng rng(99);
  for (size_t i = 0; i < pool; ++i) {
    std::string line =
        R"({"id":0,"op":"select","selector":"bench","detect":false,"values":[)";
    const double freq = 0.1 + 0.05 * static_cast<double>(i);
    for (size_t t = 0; t < series_len; ++t) {
      if (t > 0) line.push_back(',');
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.4f",
                    std::sin(freq * static_cast<double>(t)) +
                        0.01 * rng.Normal());
      line += buffer;
    }
    line += "]}\n";
    lines.push_back(std::move(line));
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Client side (runs inside the forked children and in --connect mode).

struct ClientStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  std::vector<double> latencies_us;  ///< Accepted (ok) replies only.
};

void WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = write(fd, data + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    KDSEL_CHECK(n > 0);
    off += static_cast<size_t>(n);
  }
}

/// Closed-loop pipelined client: keeps `pipeline` requests in flight,
/// classifies each reply (ok / shed / error) and records the accepted
/// replies' client-observed latency.
ClientStats RunClient(int fd, const std::vector<std::string>& lines,
                      size_t requests, size_t pipeline) {
  ClientStats stats;
  stats.latencies_us.reserve(requests);
  std::deque<double> send_times;
  std::string inbuf;
  size_t next = 0;
  size_t done = 0;
  char buffer[64 * 1024];

  bool saturated = false;
  while (done < requests) {
    if (saturated) {
      // Back off when the server shed an entire reply window: hammering
      // an overloaded server with instant retries only burns the CPU it
      // needs to drain (and on a shared machine, starves it outright).
      usleep(5000);
      saturated = false;
    }
    if (next < requests && send_times.size() < pipeline) {
      // Batch the whole open window into one write(2): syscall cost is
      // what limits a loopback closed loop, not bytes.
      std::string out;
      const double now = NowUs();
      while (next < requests && send_times.size() < pipeline) {
        out += lines[next % lines.size()];
        send_times.push_back(now);
        ++next;
        ++stats.sent;
      }
      WriteAll(fd, out.data(), out.size());
    }
    ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Server closed (drain on shutdown) or died.
    inbuf.append(buffer, static_cast<size_t>(n));
    size_t start = 0;
    size_t pass_ok = 0;
    size_t pass_shed = 0;
    for (;;) {
      const size_t newline = inbuf.find('\n', start);
      if (newline == std::string::npos) break;
      const std::string_view line(inbuf.data() + start, newline - start);
      start = newline + 1;
      const double latency_us = NowUs() - send_times.front();
      send_times.pop_front();
      ++done;
      if (line.find("\"ok\":true") != std::string_view::npos) {
        ++stats.ok;
        ++pass_ok;
        stats.latencies_us.push_back(latency_us);
      } else if (line.find("\"error\":\"overloaded\"") !=
                 std::string_view::npos) {
        ++stats.shed;
        ++pass_shed;
      } else {
        ++stats.errors;
      }
    }
    inbuf.erase(0, start);
    saturated = pass_shed > 0 && pass_ok == 0;
  }
  return stats;
}

/// Child -> parent latency blob: five uint64 counters, then the raw
/// latency array. Written once, at exit, so the hot loop never blocks on
/// a full pipe.
void WriteLatencyBlob(int fd, const ClientStats& stats) {
  const uint64_t header[5] = {stats.sent, stats.ok, stats.shed, stats.errors,
                              stats.latencies_us.size()};
  WriteAll(fd, reinterpret_cast<const char*>(header), sizeof(header));
  WriteAll(fd, reinterpret_cast<const char*>(stats.latencies_us.data()),
           stats.latencies_us.size() * sizeof(double));
}

int RunConnectMode(const std::string& address, size_t requests,
                   size_t pipeline, size_t pool, size_t series_len,
                   int latency_fd) {
  auto host_port = net::ParseHostPort(address);
  if (!host_port.ok()) {
    std::fprintf(stderr, "bench_serving: %s\n",
                 host_port.status().ToString().c_str());
    return 2;
  }
  // The driver execs children right after Start(); a short retry window
  // also lets the CI smoke job race the server's startup.
  int fd = -1;
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto connected = net::ConnectTcp(*host_port);
    if (connected.ok()) {
      fd = *connected;
      break;
    }
    usleep(100 * 1000);
  }
  if (fd < 0) {
    std::fprintf(stderr, "bench_serving: cannot connect to %s\n",
                 address.c_str());
    return 2;
  }

  const auto lines = MakeRequestLines(pool, series_len);
  const ClientStats stats = RunClient(fd, lines, requests, pipeline);
  close(fd);

  if (latency_fd >= 0) {
    WriteLatencyBlob(latency_fd, stats);
    close(latency_fd);
    return 0;
  }
  const uint64_t done = stats.ok + stats.shed + stats.errors;
  std::printf("bench_serving connect: sent=%llu replies=%llu ok=%llu "
              "shed=%llu errors=%llu\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(stats.ok),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.errors));
  return (done == stats.sent && stats.errors == 0) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Driver side.

struct NetConfig {
  std::string name;
  size_t requests = 0;  ///< Total across all clients.
  size_t clients = 2;
  size_t pipeline = 64;
  size_t series_len = kWindow;
  size_t pool = 4;
  double slo_ms = 0.0;
  size_t shards = 1;
  serve::ServerOptions server;
};

struct NetRunResult {
  double wall_seconds = 0.0;
  ClientStats merged;
  uint64_t server_shed = 0;
  double mean_batch = 0.0;
  double coalesce = 1.0;
  std::string ops_snapshot;  ///< "ops" snapshot reply scraped over TCP.
  std::string ops_flight;    ///< "ops" flight reply scraped over TCP.
};

/// Client-observed percentiles go through obs::Histogram::Percentile —
/// the same estimator (bucket resolution, midpoint rule) the server's
/// stage histograms use — so driver-side and ops-snapshot quantiles are
/// directly comparable instead of mixing rank math with bucket math.
double PercentileMs(const obs::Histogram& hist, double q) {
  return hist.Percentile(q) / 1000.0;
}

/// Fetches one "ops" view from a running NetServer over a short-lived
/// loopback connection; returns the reply line (empty on any failure —
/// the bench report simply omits the derived metrics then).
std::string FetchOpsView(uint16_t port, const std::string& view) {
  auto host_port = net::ParseHostPort("127.0.0.1:" + std::to_string(port));
  if (!host_port.ok()) return std::string();
  auto connected = net::ConnectTcp(*host_port);
  if (!connected.ok()) return std::string();
  const int fd = *connected;
  const std::string request = "{\"op\":\"ops\",\"id\":0,\"view\":\"" + view +
                              "\"}\n{\"op\":\"quit\"}\n";
  WriteAll(fd, request.data(), request.size());
  std::string reply;
  char buffer[64 * 1024];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reply.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  const size_t newline = reply.find('\n');
  if (newline == std::string::npos) return std::string();
  reply.resize(newline);
  return reply;
}

void ReadAll(int fd, char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = read(fd, data + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    KDSEL_CHECK(n > 0);
    off += static_cast<size_t>(n);
  }
}

/// fork+exec one client child; returns {pid, read end of its pipe}.
std::pair<pid_t, int> SpawnClient(const std::string& self_path,
                                  const NetConfig& config, uint16_t port,
                                  size_t requests) {
  int pipe_fds[2];
  KDSEL_CHECK(pipe(pipe_fds) == 0);  // Blocking, inherited across exec.
  const pid_t pid = fork();
  KDSEL_CHECK(pid >= 0);
  if (pid == 0) {
    close(pipe_fds[0]);
    const std::vector<std::string> args = {
        self_path,
        "--connect",    "127.0.0.1:" + std::to_string(port),
        "--requests",   std::to_string(requests),
        "--pipeline",   std::to_string(config.pipeline),
        "--series-len", std::to_string(config.series_len),
        "--pool",       std::to_string(config.pool),
        "--latency-fd", std::to_string(pipe_fds[1]),
    };
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    execv(self_path.c_str(), argv.data());
    _exit(127);  // exec failed; async-signal-safe exit only.
  }
  close(pipe_fds[1]);
  return {pid, pipe_fds[0]};
}

NetRunResult RunNetConfig(serve::SelectorRegistry& registry,
                          const std::string& self_path,
                          const NetConfig& config) {
  // Stage/e2e histograms live in the process-global registry; zero them
  // so each config's ops snapshot covers exactly that config's load.
  obs::MetricsRegistry::Global().ResetValuesForTesting();
  serve::InferenceServer server(&registry, config.server);
  KDSEL_CHECK(server.Start().ok());
  net::NetServerOptions net_opts;
  net_opts.listen = "127.0.0.1:0";
  net_opts.shards = config.shards;
  net_opts.slo_ms = config.slo_ms;
  // Overload runs live or die on controller responsiveness: evaluate
  // often so the pre-shed transient stays a tiny fraction of samples.
  net_opts.shedder.eval_interval_us = 5000;
  net::NetServer net(&server, net_opts);
  KDSEL_CHECK(net.Start().ok());

  const size_t per_client = config.requests / config.clients;
  std::vector<std::pair<pid_t, int>> children;
  const double start_us = NowUs();
  for (size_t c = 0; c < config.clients; ++c) {
    children.push_back(SpawnClient(self_path, config, net.port(), per_client));
  }

  NetRunResult result;
  // Drain every pipe before waitpid: a child's latency blob can exceed
  // the pipe capacity, and it only exits once the blob is fully read.
  for (auto& [pid, fd] : children) {
    uint64_t header[5];
    ReadAll(fd, reinterpret_cast<char*>(header), sizeof(header));
    result.merged.sent += header[0];
    result.merged.ok += header[1];
    result.merged.shed += header[2];
    result.merged.errors += header[3];
    std::vector<double> latencies(header[4]);
    ReadAll(fd, reinterpret_cast<char*>(latencies.data()),
            latencies.size() * sizeof(double));
    close(fd);
    result.merged.latencies_us.insert(result.merged.latencies_us.end(),
                                      latencies.begin(), latencies.end());
  }
  for (auto& [pid, fd] : children) {
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    KDSEL_CHECK(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }
  result.wall_seconds = (NowUs() - start_us) / 1e6;

  // Scrape the live telemetry endpoint while the server is still up:
  // this is the same wire path `kdsel ops --connect` uses, so the bench
  // doubles as an end-to-end exercise of the "ops" op under real load.
  result.ops_snapshot = FetchOpsView(net.port(), "snapshot");
  result.ops_flight = FetchOpsView(net.port(), "flight");

  net.Stop();
  server.Stop();
  result.server_shed = server.stats().shed();
  result.mean_batch = server.stats().MeanBatchSize();
  if (server.stats().rows_unique() > 0) {
    result.coalesce = static_cast<double>(server.stats().rows_total()) /
                      static_cast<double>(server.stats().rows_unique());
  }
  return result;
}

int RunDriver(size_t requests, size_t clients, size_t pipeline,
              double slo_ms) {
  char exe[4096];
  const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  KDSEL_CHECK(n > 0);
  exe[n] = '\0';
  const std::string self_path(exe);

  serve::SelectorRegistry registry{
      core::SelectorManager("/tmp/kdsel_bench_serving")};
  KDSEL_CHECK(registry.Register("bench", TrainBenchSelector()).ok());

  NetConfig capacity;
  capacity.name = "capacity";
  capacity.requests = requests;
  capacity.clients = clients;
  capacity.pipeline = pipeline;
  capacity.series_len = kWindow;  // One window/request: peak rate.
  capacity.pool = 4;
  capacity.slo_ms = 0.0;
  capacity.server.num_workers = 1;
  capacity.server.max_batch = 512;
  capacity.server.max_delay_us = 200;
  capacity.server.queue_capacity = 16384;

  NetConfig overload;
  overload.name = "overload";
  // Shed replies are cheap, so the overload run needs many more
  // offered requests than the capacity run to sustain load for seconds.
  overload.requests = std::max<size_t>(2 * requests, 4000);
  overload.clients = std::max<size_t>(clients, 4);
  // A modest per-client window: overload comes from client count times
  // demand rate, not from one enormous pipelined burst whose replies
  // would dominate the latency measurement.
  overload.pipeline = 4;
  // Heavier payload (4 windows) over a wide pool defeats coalescing, so
  // offered demand genuinely exceeds single-machine capacity at the SLO.
  // The submit queue is kept shallow on purpose: the queue bound and the
  // SLO shedder are the two halves of the overload contract — the bound
  // caps how much latency admitted requests can accumulate, the shedder
  // adapts when per-request cost drifts past what the bound assumed.
  overload.series_len = 4 * kWindow;
  overload.pool = 64;
  overload.slo_ms = slo_ms;
  overload.server.num_workers = 1;
  overload.server.max_batch = 4;
  overload.server.max_delay_us = 500;
  overload.server.queue_capacity = 4;

  bench::BenchReport report("serving");
  std::printf("bench_serving: requests=%zu clients=%zu pipeline=%zu "
              "slo_ms=%.2f\n\n",
              requests, clients, pipeline, slo_ms);
  std::printf("%-10s %9s %9s %8s %8s %8s %9s %9s %7s\n", "config", "req/s",
              "p50ms", "p99ms", "p999ms", "shed", "shedrate", "coalesce",
              "errors");

  for (const NetConfig* config : {&capacity, &overload}) {
    // Warm-up primes worker selector clones and the branch predictors.
    NetConfig warm = *config;
    warm.requests = std::min<size_t>(config->requests / 10, 5000);
    warm.slo_ms = 0.0;
    (void)RunNetConfig(registry, self_path, warm);

    const NetRunResult r = RunNetConfig(registry, self_path, *config);
    const uint64_t replies = r.merged.ok + r.merged.shed + r.merged.errors;
    const double req_per_s =
        static_cast<double>(r.merged.ok) / r.wall_seconds;
    const double shed_rate =
        replies > 0 ? static_cast<double>(r.merged.shed) /
                          static_cast<double>(replies)
                    : 0.0;
    obs::Histogram latency_hist;
    for (const double us : r.merged.latencies_us) latency_hist.Record(us);
    const double p50 = PercentileMs(latency_hist, 0.50);
    const double p99 = PercentileMs(latency_hist, 0.99);
    const double p999 = PercentileMs(latency_hist, 0.999);
    std::printf("%-10s %9.0f %9.3f %8.3f %8.3f %8llu %8.1f%% %8.2fx %7llu\n",
                config->name.c_str(), req_per_s, p50, p99, p999,
                static_cast<unsigned long long>(r.merged.shed),
                100.0 * shed_rate, r.coalesce,
                static_cast<unsigned long long>(r.merged.errors));

    // Stage decomposition from the scraped ops snapshot: the per-stage
    // p50s should roughly add up to the server-observed end-to-end p50
    // (the acceptance bound is 20%; client-observed p50 above includes
    // client-side queueing on top, so compare server e2e, not p50_ms).
    double stage_p50_us[4] = {0.0, 0.0, 0.0, 0.0};
    double stage_p50_sum_us = 0.0;
    double e2e_p50_us = 0.0;
    double flight_slowest_us = 0.0;
    double flight_recorded = 0.0;
    static constexpr const char* kStages[4] = {
        "kdsel.net.stage.queue", "kdsel.net.stage.batch_wait",
        "kdsel.net.stage.compute", "kdsel.net.stage.write"};
    if (auto snapshot = serve::Json::Parse(r.ops_snapshot); snapshot.ok()) {
      if (const serve::Json* metrics = snapshot->Find("metrics")) {
        if (const serve::Json* hists = metrics->Find("histograms")) {
          for (size_t s = 0; s < 4; ++s) {
            if (const serve::Json* h = hists->Find(kStages[s])) {
              stage_p50_us[s] = h->GetNumber("p50", 0.0);
              stage_p50_sum_us += stage_p50_us[s];
            }
          }
          if (const serve::Json* h = hists->Find("kdsel.net.e2e")) {
            e2e_p50_us = h->GetNumber("p50", 0.0);
          }
        }
      }
    }
    if (auto dump = serve::Json::Parse(r.ops_flight); dump.ok()) {
      if (const serve::Json* flight = dump->Find("flight")) {
        flight_recorded = flight->GetNumber("recorded", 0.0);
        if (const serve::Json* slowest = flight->Find("slowest");
            slowest != nullptr && slowest->is_array() &&
            !slowest->items().empty()) {
          flight_slowest_us = slowest->items().front().GetNumber("total_us",
                                                                 0.0);
        }
      }
    }
    const double driver_max_us =
        r.merged.latencies_us.empty()
            ? 0.0
            : *std::max_element(r.merged.latencies_us.begin(),
                                r.merged.latencies_us.end());
    std::printf("  ops: stage p50 q=%.0f bw=%.0f c=%.0f w=%.0f sum %.1fus vs "
                "e2e p50 %.1fus; flight recorded %.0f, slowest %.1fus "
                "(driver max %.1fus)\n",
                stage_p50_us[0], stage_p50_us[1], stage_p50_us[2],
                stage_p50_us[3], stage_p50_sum_us, e2e_p50_us, flight_recorded,
                flight_slowest_us, driver_max_us);

    bench::BenchEntry entry;
    entry.name = config->name;
    entry.threads = config->clients;
    entry.wall_seconds = r.wall_seconds;
    entry.items = static_cast<double>(r.merged.ok);
    entry.items_unit = "requests";
    entry.metrics["req_per_s"] = req_per_s;
    entry.metrics["p50_ms"] = p50;
    entry.metrics["p99_ms"] = p99;
    entry.metrics["p999_ms"] = p999;
    entry.metrics["shed"] = static_cast<double>(r.merged.shed);
    entry.metrics["shed_rate"] = shed_rate;
    entry.metrics["slo_ms"] = config->slo_ms;
    entry.metrics["ok"] = static_cast<double>(r.merged.ok);
    entry.metrics["errors"] = static_cast<double>(r.merged.errors);
    entry.metrics["coalesce"] = r.coalesce;
    entry.metrics["mean_batch"] = r.mean_batch;
    entry.metrics["stage_p50_sum_us"] = stage_p50_sum_us;
    entry.metrics["e2e_p50_us"] = e2e_p50_us;
    entry.metrics["flight_recorded"] = flight_recorded;
    entry.metrics["flight_slowest_us"] = flight_slowest_us;
    report.Add(std::move(entry));
  }

  auto written = report.Write();
  if (written.ok()) {
    std::printf("\nreport written to %s\n", written->c_str());
  } else {
    std::fprintf(stderr, "bench_serving: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  size_t requests = 100000;
  size_t clients = 2;
  size_t pipeline = 256;
  size_t series_len = kWindow;
  size_t pool = 4;
  double slo_ms = 10.0;
  int latency_fd = -1;
  std::string connect_address;
  std::string export_dir;

  const auto parse_flag = [](const char* flag, const char* text) {
    auto value = ParseSize(text);
    if (!value.ok()) {
      std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, text);
      std::exit(2);
    }
    return *value;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = parse_flag("--requests", argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = parse_flag("--clients", argv[++i]);
    } else if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
      pipeline = parse_flag("--pipeline", argv[++i]);
    } else if (std::strcmp(argv[i], "--series-len") == 0 && i + 1 < argc) {
      series_len = parse_flag("--series-len", argv[++i]);
    } else if (std::strcmp(argv[i], "--pool") == 0 && i + 1 < argc) {
      pool = parse_flag("--pool", argv[++i]);
    } else if (std::strcmp(argv[i], "--slo-ms") == 0 && i + 1 < argc) {
      slo_ms = std::strtod(argv[++i], nullptr);  // kdsel-lint: allow(raw-parse)
    } else if (std::strcmp(argv[i], "--latency-fd") == 0 && i + 1 < argc) {
      latency_fd = static_cast<int>(parse_flag("--latency-fd", argv[++i]));
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_address = argv[++i];
    } else if (std::strcmp(argv[i], "--export-selector") == 0 &&
               i + 1 < argc) {
      export_dir = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: bench_serving [--requests N] [--clients C] [--pipeline D]\n"
          "                     [--slo-ms M]\n"
          "       bench_serving --connect HOST:PORT [--requests N]\n"
          "                     [--pipeline D] [--series-len L] [--pool K]\n"
          "       bench_serving --export-selector DIR\n");
      return 2;
    }
  }

  if (!export_dir.empty()) {
    core::SelectorManager manager(export_dir);
    auto selector = TrainBenchSelector();
    auto saved = manager.Save(*selector, "bench");
    if (!saved.ok()) {
      std::fprintf(stderr, "bench_serving: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("bench selector saved to %s/bench\n", export_dir.c_str());
    return 0;
  }
  if (!connect_address.empty()) {
    return RunConnectMode(connect_address, requests, pipeline, pool,
                          series_len, latency_fd);
  }
  return RunDriver(requests, clients, pipeline, slo_ms);
}

}  // namespace
}  // namespace kdsel

int main(int argc, char** argv) { return kdsel::Main(argc, argv); }
