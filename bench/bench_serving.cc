// Closed-loop load driver for the in-process serving layer.
//
// Trains a small ConvNet selector on synthetic data, registers it in a
// SelectorRegistry, then replays the same request stream against several
// server configurations and reports throughput plus tail latency. The
// headline comparison is a single-thread unbatched baseline (1 worker,
// max_batch=1, 1 client) against a batched multi-threaded configuration.
//
// The workload models a monitoring fleet: many concurrent clients
// re-scoring a modest set of hot series. Micro-batching wins by (a)
// amortizing per-forward-pass dispatch and (b) coalescing identical
// windows across concurrent requests so the selector forward pass runs
// once per distinct window per batch.
//
// Flags:
//   --requests N     total requests per configuration (default 512)
//   --pool K         number of distinct hot series (default 16)
//   --detect         run the selected detector too (default: selection only)
//   --series-len L   request series length (default 64, datagen minimum)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stringutil.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/families.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace kdsel {
namespace {

constexpr size_t kWindow = 32;

std::unique_ptr<core::TrainedSelector> TrainBenchSelector() {
  core::SelectorTrainingData data;
  data.num_classes = 4;
  Rng rng(7);
  for (int i = 0; i < 160; ++i) {
    const int c = i % 4;
    std::vector<float> w(kWindow);
    for (size_t t = 0; t < kWindow; ++t) {
      w[t] = std::sin((0.15 + 0.35 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = 7;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

std::vector<ts::TimeSeries> MakeRequestPool(size_t count, size_t length) {
  std::vector<ts::TimeSeries> pool;
  Rng rng(99);
  for (size_t i = 0; i < count; ++i) {
    auto family = static_cast<datagen::Family>(i % 4);
    auto series = datagen::GenerateSeries(family, length, i, rng);
    KDSEL_CHECK(series.ok());
    pool.push_back(std::move(series).value());
  }
  return pool;
}

struct RunConfig {
  std::string label;
  size_t workers;
  size_t max_batch;
  size_t clients;
  uint64_t max_delay_us;
};

struct RunResult {
  double seconds = 0.0;
  double throughput = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  double coalesce = 1.0;  ///< Extracted rows per forward-pass row.
  size_t failed = 0;
};

double PercentileMs(std::vector<double>& latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t idx = std::min(
      latencies_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies_us.size())));
  return latencies_us[idx] / 1000.0;
}

RunResult RunConfigOnce(serve::SelectorRegistry& registry,
                        const RunConfig& config,
                        const std::vector<ts::TimeSeries>& pool,
                        size_t total_requests, bool detect) {
  serve::ServerOptions opts;
  opts.num_workers = config.workers;
  opts.max_batch = config.max_batch;
  opts.max_delay_us = config.max_delay_us;
  opts.queue_capacity = 4096;
  serve::InferenceServer server(&registry, opts);
  auto started = server.Start();
  KDSEL_CHECK(started.ok());

  std::vector<double> latencies_us;
  latencies_us.reserve(total_requests);
  std::mutex latencies_mutex;
  // Client simulation wants independent uncoordinated threads, not
  // the deterministic shared pool.
  std::vector<std::thread> clients;  // kdsel-lint: allow(raw-thread)
  std::vector<size_t> failures(config.clients, 0);
  const size_t per_client = total_requests / config.clients;

  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng pick(1000 + c);  // Uniform traffic over the hot-series pool.
      std::vector<double> local;
      local.reserve(per_client);
      for (size_t r = 0; r < per_client; ++r) {
        serve::SelectRequest request;
        request.selector = "bench";
        request.series = pool[pick.Index(pool.size())];
        request.run_detection = detect;
        auto response = server.Run(std::move(request));
        if (!response.ok()) {
          ++failures[c];
          continue;
        }
        local.push_back(response->timing.total_us);
      }
      std::lock_guard<std::mutex> lock(latencies_mutex);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
    });
  }
  for (auto& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();
  server.Stop();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.throughput =
      static_cast<double>(latencies_us.size()) / result.seconds;
  result.p50_ms = PercentileMs(latencies_us, 0.50);
  result.p95_ms = PercentileMs(latencies_us, 0.95);
  result.p99_ms = PercentileMs(latencies_us, 0.99);
  result.mean_batch = server.stats().MeanBatchSize();
  if (server.stats().rows_unique() > 0) {
    result.coalesce = static_cast<double>(server.stats().rows_total()) /
                      static_cast<double>(server.stats().rows_unique());
  }
  for (const size_t f : failures) result.failed += f;
  return result;
}

int Main(int argc, char** argv) {
  size_t total_requests = 512;
  size_t series_len = 64;  // datagen minimum; two selector windows.
  size_t pool_size = 16;
  bool detect = false;
  const auto parse_flag = [](const char* flag, const char* text) {
    auto value = ParseSize(text);
    if (!value.ok()) {
      std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, text);
      std::exit(2);
    }
    return *value;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      total_requests = parse_flag("--requests", argv[++i]);
    } else if (std::strcmp(argv[i], "--series-len") == 0 && i + 1 < argc) {
      series_len = parse_flag("--series-len", argv[++i]);
    } else if (std::strcmp(argv[i], "--pool") == 0 && i + 1 < argc) {
      pool_size = parse_flag("--pool", argv[++i]);
    } else if (std::strcmp(argv[i], "--detect") == 0) {
      detect = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--requests N] [--pool K] "
                   "[--series-len L] [--detect]\n");
      return 2;
    }
  }
  if (detect && series_len < 4 * kWindow) {
    series_len = 8 * kWindow;  // Detectors need more context than one window.
  }

  serve::SelectorRegistry registry{
      core::SelectorManager("/tmp/kdsel_bench_serving")};
  auto bench_ok = registry.Register("bench", TrainBenchSelector());
  KDSEL_CHECK(bench_ok.ok());
  const auto pool = MakeRequestPool(pool_size, series_len);

  const size_t hw = kdsel::ParallelThreads();
  std::printf("bench_serving: %zu requests/config, pool=%zu, series_len=%zu, "
              "detect=%d, hardware_concurrency=%zu\n\n",
              total_requests, pool_size, series_len, detect ? 1 : 0, hw);
  std::printf("%-28s %8s %9s %8s %8s %8s %9s %7s\n", "config", "req/s",
              "p50ms", "p95ms", "p99ms", "batch", "coalesce", "failed");

  const std::vector<RunConfig> configs = {
      {"baseline_1w_b1_1c", 1, 1, 1, 0},
      {"batched_2w_b16_16c", 2, 16, 16, 2000},
      {"batched_4w_b32_32c", 4, 32, 32, 2000},
      {"batched_4w_b64_64c", 4, 64, 64, 4000},
  };

  double baseline_throughput = 0.0;
  double best_batched = 0.0;
  for (const auto& config : configs) {
    // Warm-up pass primes per-worker selector clones and detector sets.
    (void)RunConfigOnce(registry, config, pool,
                        std::min<size_t>(total_requests / 4, 64), detect);
    const RunResult r =
        RunConfigOnce(registry, config, pool, total_requests, detect);
    std::printf("%-28s %8.0f %9.3f %8.3f %8.3f %8.2f %8.2fx %7zu\n",
                config.label.c_str(), r.throughput, r.p50_ms, r.p95_ms,
                r.p99_ms, r.mean_batch, r.coalesce, r.failed);
    if (config.label.rfind("baseline", 0) == 0) {
      baseline_throughput = r.throughput;
    } else {
      best_batched = std::max(best_batched, r.throughput);
    }
  }

  if (baseline_throughput > 0.0) {
    std::printf("\nbest batched vs unbatched single-thread baseline: "
                "%.2fx\n",
                best_batched / baseline_throughput);
  }
  return 0;
}

}  // namespace
}  // namespace kdsel

int main(int argc, char** argv) { return kdsel::Main(argc, argv); }
