#include "bench/bench_report.h"

#include <cstdlib>
#include <fstream>
#include <utility>

namespace kdsel::bench {

void BenchReport::Add(BenchEntry entry) {
  entries_.push_back(std::move(entry));
}

void BenchReport::ComputeSpeedups() {
  std::map<std::string, double> baseline;
  for (const BenchEntry& e : entries_) {
    if (e.threads == 1 && e.wall_seconds > 0.0) {
      baseline.emplace(e.name, e.wall_seconds);
    }
  }
  for (BenchEntry& e : entries_) {
    const auto it = baseline.find(e.name);
    if (it != baseline.end() && e.wall_seconds > 0.0) {
      e.speedup_vs_1t = it->second / e.wall_seconds;
    }
  }
}

serve::Json BenchReport::ToJson() const {
  serve::Json root = serve::Json::Object();
  root.Set("bench", serve::Json::Str(name_));
  serve::Json rows = serve::Json::Array();
  for (const BenchEntry& e : entries_) {
    serve::Json row = serve::Json::Object();
    row.Set("name", serve::Json::Str(e.name));
    row.Set("threads", serve::Json::Number(static_cast<double>(e.threads)));
    row.Set("wall_seconds", serve::Json::Number(e.wall_seconds));
    // Omitted entirely when no 1-thread baseline was measured: a zero
    // (or inf from a degenerate baseline) would read as a real ratio in
    // downstream diffs.
    if (e.speedup_vs_1t > 0.0) {
      row.Set("speedup_vs_1t", serve::Json::Number(e.speedup_vs_1t));
    }
    if (e.items > 0.0) {
      row.Set("items", serve::Json::Number(e.items));
      row.Set("items_unit", serve::Json::Str(e.items_unit));
      if (e.wall_seconds > 0.0) {
        row.Set("items_per_second",
                serve::Json::Number(e.items / e.wall_seconds));
      }
    }
    if (!e.metrics.empty()) {
      serve::Json metrics = serve::Json::Object();
      for (const auto& [key, value] : e.metrics) {
        metrics.Set(key, serve::Json::Number(value));
      }
      row.Set("metrics", std::move(metrics));
    }
    rows.Append(std::move(row));
  }
  root.Set("entries", std::move(rows));
  return root;
}

StatusOr<std::string> BenchReport::Write() const {
  const char* dir = std::getenv("KDSEL_BENCH_REPORT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  path += "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return Status::IoError("cannot open bench report file: " + path);
  }
  out << ToJson().Dump() << "\n";
  out.flush();
  if (!out.good()) {
    return Status::IoError("failed writing bench report file: " + path);
  }
  return path;
}

}  // namespace kdsel::bench
