// The full selector zoo: every selector implemented in the library
// (nine classical + four NN backbones + the KDSelector-enhanced NN
// variants), evaluated under the shared protocol. Mirrors the demo
// system's claim of offering a broad catalogue of selectors (the paper
// ships 15), and doubles as a regression sweep over all of them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "selectors/classical.h"
#include "selectors/dtw.h"
#include "selectors/more_classical.h"
#include "selectors/rocket.h"

namespace {

using namespace kdsel;

struct ZooEntry {
  std::string name;
  double auc = 0.0;
  double train_seconds = 0.0;
};

}  // namespace

int main() {
  auto env = bench::MustCreateEnv();
  std::vector<ZooEntry> zoo;

  // Classical window-level selectors.
  auto data = env->BuildTrainingData();
  if (!data.ok()) return 1;
  selectors::TrainingData window_data;
  window_data.windows = data->windows;
  window_data.labels = data->labels;
  window_data.num_classes = data->num_classes;

  std::vector<std::unique_ptr<selectors::Selector>> classical;
  classical.push_back(std::make_unique<selectors::KnnSelector>(
      selectors::KnnSelector::Options{}));
  classical.push_back(std::make_unique<selectors::SvcSelector>(
      selectors::SvcSelector::Options{}));
  classical.push_back(std::make_unique<selectors::AdaBoostSelector>(
      selectors::AdaBoostSelector::Options{}));
  classical.push_back(std::make_unique<selectors::RandomForestSelector>(
      selectors::RandomForestSelector::Options{}));
  classical.push_back(std::make_unique<selectors::RocketSelector>(
      selectors::RocketSelector::Options{}));
  classical.push_back(std::make_unique<selectors::Ed1nnSelector>());
  classical.push_back(std::make_unique<selectors::LogisticSelector>());
  classical.push_back(std::make_unique<selectors::NearestCentroidSelector>());
  classical.push_back(std::make_unique<selectors::GaussianNbSelector>());
  classical.push_back(std::make_unique<selectors::DtwSelector>());

  for (auto& selector : classical) {
    const auto t0 = std::chrono::steady_clock::now();
    auto fit = selector->Fit(window_data);
    if (!fit.ok()) {
      std::fprintf(stderr, "%s fit failed: %s\n", selector->name().c_str(),
                   fit.ToString().c_str());
      return 1;
    }
    ZooEntry entry;
    entry.name = selector->name();
    entry.train_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    auto auc = env->EvaluateSelector(*selector);
    if (!auc.ok()) return 1;
    entry.auc = auc->at("Average");
    std::fprintf(stderr, "[zoo] %-18s %.4f (%.1fs)\n", entry.name.c_str(),
                 entry.auc, entry.train_seconds);
    zoo.push_back(entry);
  }

  // NN selectors: plain and KDSelector-enhanced per backbone.
  for (const std::string arch :
       {"ConvNet", "ResNet", "InceptionTime", "Transformer"}) {
    for (bool kd : {false, true}) {
      core::TrainerOptions opts;
      opts.backbone = arch;
      opts.seed = 1;
      opts.use_pisl = kd;
      opts.use_mki = kd;
      if (kd) opts.pruning.mode = core::PruningMode::kPa;
      auto r = bench::TrainAndEvaluate(
          *env, opts, kd ? arch + "+KDSelector" : arch);
      ZooEntry entry;
      entry.name = r.name;
      entry.auc = r.auc.at("Average");
      entry.train_seconds = r.train_seconds;
      zoo.push_back(entry);
    }
  }

  std::sort(zoo.begin(), zoo.end(),
            [](const ZooEntry& a, const ZooEntry& b) { return a.auc > b.auc; });
  std::printf("\nSelector zoo: all %zu selectors, ranked by average AUC-PR\n",
              zoo.size());
  exp::Table table({"Rank", "Selector", "Avg AUC-PR", "Train time (s)"});
  for (size_t i = 0; i < zoo.size(); ++i) {
    table.AddRow({StrFormat("%zu", i + 1), zoo[i].name,
                  StrFormat("%.4f", zoo[i].auc),
                  StrFormat("%.1f", zoo[i].train_seconds)});
  }
  table.Print();
  return 0;
}
