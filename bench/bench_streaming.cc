// Closed-loop throughput driver for the streaming/online scoring layer.
//
// Trains a small ConvNet selector on synthetic data, registers it in a
// SelectorRegistry, then pushes multi-series point streams through a
// StreamScorer at 1/2/4 pool threads and reports ingest throughput
// (points/sec) plus re-score latency percentiles from the
// kdsel.stream.rescore_us histogram.
//
// Three workloads per thread count:
//   ingest_w256 / ingest_w1024  pure incremental ingest (re-scoring
//                               effectively disabled). Comparing the two
//                               window sizes demonstrates the O(1)
//                               amortized per-point cost: ns/point must
//                               not scale with the ring capacity.
//   rescore                     ingest plus periodic re-selection every
//                               `--rescore` points per series.
//   drift                       a mid-stream regime switch on every
//                               series, with drift-triggered
//                               re-selection enabled.
//
// `--report` writes BENCH_streaming.json and METRICS_streaming.json
// (same $KDSEL_BENCH_REPORT_DIR convention as bench_micro) so CI can
// diff throughput and schema-check the kdsel.stream.* instrumentation.
//
// Flags:
//   --points N   points per series per workload (default 20000)
//   --series K   concurrent series (default 8)
//   --rescore R  periodic re-score interval (default 512)
//   --report     write BENCH_/METRICS_streaming.json

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_report.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stringutil.h"
#include "core/trainer.h"
#include "datagen/families.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "stream/scorer.h"

namespace kdsel {
namespace {

constexpr size_t kWindow = 32;  ///< Selector input length.

std::unique_ptr<core::TrainedSelector> TrainBenchSelector() {
  core::SelectorTrainingData data;
  data.num_classes = 4;
  Rng rng(7);
  for (int i = 0; i < 160; ++i) {
    const int c = i % 4;
    std::vector<float> w(kWindow);
    for (size_t t = 0; t < kWindow; ++t) {
      w[t] = std::sin((0.15 + 0.35 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = 7;
  auto selector = core::TrainSelector(data, opts, nullptr);
  KDSEL_CHECK(selector.ok());
  return std::move(selector).value();
}

/// One synthetic stream per series, round-robin over the 16 families.
/// When `switch_family` is set, the second half of every stream comes
/// from a different family so the drift monitor has a real regime
/// change to catch.
std::vector<std::vector<float>> MakeStreams(size_t count, size_t points,
                                            bool switch_family) {
  const auto& families = datagen::AllFamilies();
  std::vector<std::vector<float>> streams;
  streams.reserve(count);
  Rng rng(99);
  for (size_t i = 0; i < count; ++i) {
    const auto family = families[i % families.size()];
    if (!switch_family) {
      streams.push_back(datagen::GenerateBaseSignal(family, points, rng));
      continue;
    }
    const auto other = families[(i + families.size() / 2) % families.size()];
    auto head = datagen::GenerateBaseSignal(family, points / 2, rng);
    auto tail =
        datagen::GenerateBaseSignal(other, points - points / 2, rng);
    for (float& v : tail) v += 6.0f;  // Level shift on top of the shape.
    head.insert(head.end(), tail.begin(), tail.end());
    streams.push_back(std::move(head));
  }
  return streams;
}

struct WorkloadResult {
  double seconds = 0.0;
  size_t points = 0;
  size_t selections = 0;
  size_t drift_events = 0;
  obs::Histogram::Summary rescore_us;
};

/// Feeds `streams` through a fresh StreamScorer in interleaved bursts of
/// `burst` points per series, mimicking a multiplexed ingestion socket.
WorkloadResult RunWorkload(serve::SelectorRegistry& registry,
                           const stream::StreamOptions& options,
                           const std::vector<std::vector<float>>& streams,
                           size_t burst) {
  stream::StreamScorer scorer(&registry, options);
  auto& rescore_us = obs::MetricsRegistry::Global().GetHistogram(
      "kdsel.stream.rescore_us");
  rescore_us.Reset();

  std::vector<stream::PointEvent> batch;
  const size_t points = streams.empty() ? 0 : streams[0].size();
  batch.reserve(streams.size() * burst);

  WorkloadResult result;
  const auto t0 = obs::NowNs();
  for (size_t offset = 0; offset < points; offset += burst) {
    batch.clear();
    const size_t end = std::min(points, offset + burst);
    for (size_t s = 0; s < streams.size(); ++s) {
      for (size_t t = offset; t < end; ++t) {
        batch.push_back(
            stream::PointEvent{"series_" + std::to_string(s), streams[s][t]});
      }
    }
    auto events = scorer.ProcessBatch(batch);
    KDSEL_CHECK(events.ok());
    for (const stream::StreamEvent& event : *events) {
      if (event.kind == stream::StreamEvent::Kind::kDrift) {
        ++result.drift_events;
      } else {
        ++result.selections;
      }
    }
  }
  result.seconds =
      static_cast<double>(obs::NowNs() - t0) / 1e9;
  result.points = scorer.points_ingested();
  result.rescore_us = rescore_us.Summarize();
  return result;
}

bench::BenchEntry ToEntry(const std::string& name, size_t threads,
                          const WorkloadResult& r) {
  bench::BenchEntry entry;
  entry.name = name;
  entry.threads = threads;
  entry.wall_seconds = r.seconds;
  entry.items = static_cast<double>(r.points);
  entry.items_unit = "points";
  entry.metrics["ns_per_point"] =
      r.points == 0 ? 0.0 : r.seconds * 1e9 / static_cast<double>(r.points);
  entry.metrics["selections"] = static_cast<double>(r.selections);
  entry.metrics["drift_events"] = static_cast<double>(r.drift_events);
  entry.metrics["rescore_count"] = static_cast<double>(r.rescore_us.count);
  entry.metrics["rescore_p50_us"] = r.rescore_us.p50;
  entry.metrics["rescore_p95_us"] = r.rescore_us.p95;
  return entry;
}

int WriteMetricsSnapshot(const char* name) {
  const char* dir = std::getenv("KDSEL_BENCH_REPORT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  path += std::string("/METRICS_") + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << obs::MetricsRegistry::Global().SnapshotJson() << "\n";
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "[bench_streaming] metrics snapshot write failed: %s\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_streaming] wrote %s\n", path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  size_t points = 20000;
  size_t num_series = 8;
  size_t rescore_interval = 512;
  bool report = false;
  const auto parse_flag = [](const char* flag, const char* text) {
    auto value = ParseSize(text);
    if (!value.ok()) {
      std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, text);
      std::exit(2);
    }
    return *value;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = parse_flag("--points", argv[++i]);
    } else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc) {
      num_series = parse_flag("--series", argv[++i]);
    } else if (std::strcmp(argv[i], "--rescore") == 0 && i + 1 < argc) {
      rescore_interval = parse_flag("--rescore", argv[++i]);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_streaming [--points N] [--series K] "
                   "[--rescore R] [--report]\n");
      return 2;
    }
  }

  serve::SelectorRegistry registry{
      core::SelectorManager("/tmp/kdsel_bench_streaming")};
  auto bench_ok = registry.Register("bench", TrainBenchSelector());
  KDSEL_CHECK(bench_ok.ok());

  const auto stationary = MakeStreams(num_series, points, false);
  const auto switching = MakeStreams(num_series, points, true);

  std::printf("bench_streaming: %zu series x %zu points, rescore every %zu, "
              "hardware_concurrency=%zu\n\n",
              num_series, points, rescore_interval, ParallelThreads());
  std::printf("%-14s %7s %12s %10s %10s %8s %7s\n", "workload", "threads",
              "points/s", "ns/point", "rescores", "p95us", "drift");

  bench::BenchReport bench_report("streaming");
  for (const size_t threads : {1u, 2u, 4u}) {
    ThreadPool::ResetGlobalForTesting(threads);

    stream::StreamOptions base;
    base.selector = "bench";
    base.window = 256;
    base.drift.threshold = 1e18;  // Ingest workloads: never trip drift.

    struct Spec {
      const char* name;
      stream::StreamOptions options;
      const std::vector<std::vector<float>>* streams;
    };
    std::vector<Spec> specs;
    {
      Spec ingest{"ingest_w256", base, &stationary};
      // Effectively disable periodic re-scoring: only the initial
      // selection per series runs, leaving pure ingest cost.
      ingest.options.rescore_interval = points * 2;
      specs.push_back(ingest);

      Spec wide = ingest;
      wide.name = "ingest_w1024";
      wide.options.window = 1024;
      specs.push_back(wide);

      Spec rescore{"rescore", base, &stationary};
      rescore.options.rescore_interval = rescore_interval;
      specs.push_back(rescore);

      Spec drift{"drift", base, &switching};
      drift.options.rescore_interval = points * 2;
      drift.options.drift.threshold = 16.0;
      drift.options.drift.patience = 2;
      specs.push_back(drift);
    }

    for (const Spec& spec : specs) {
      // Warm-up pass primes selector clones and metric registrations.
      (void)RunWorkload(registry, spec.options,
                        MakeStreams(num_series, 2048, false), 64);
      const WorkloadResult r =
          RunWorkload(registry, spec.options, *spec.streams, 64);
      std::printf("%-14s %7zu %12.0f %10.1f %10zu %8.1f %7zu\n", spec.name,
                  threads,
                  static_cast<double>(r.points) / r.seconds,
                  r.seconds * 1e9 / static_cast<double>(r.points),
                  static_cast<size_t>(r.rescore_us.count), r.rescore_us.p95,
                  r.drift_events);
      bench_report.Add(ToEntry(spec.name, threads, r));
    }
  }

  bench_report.ComputeSpeedups();
  if (!report) return 0;
  auto path = bench_report.Write();
  if (!path.ok()) {
    std::fprintf(stderr, "[bench_streaming] report write failed: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_streaming] wrote %s\n", path->c_str());
  return WriteMetricsSnapshot("streaming");
}

}  // namespace
}  // namespace kdsel

int main(int argc, char** argv) { return kdsel::Main(argc, argv); }
