// Ablation of the PISL soft-label hyper-parameters (DESIGN.md ablation
// index): temperature t_soft and mixing weight alpha, around the
// paper's selection grids {0.2, 0.22, 0.25} and {0.2, 0.4, 1.0}.
// Uses the cheap ConvNet backbone.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();

  exp::Table table({"Config", "AUC-PR", "Time (s)"});
  const auto seeds = bench::BenchSeeds();
  auto run = [&](double t_soft, double alpha, const std::string& name) {
    core::TrainerOptions o;
    o.backbone = "ConvNet";
    o.use_pisl = alpha > 0;
    o.t_soft = t_soft;
    o.alpha = alpha;
    auto r = bench::TrainAndEvaluateAvg(*env, o, name, seeds);
    table.AddRow({name, StrFormat("%.4f", r.auc.at("Average")),
                  StrFormat("%.1f", r.train_seconds)});
  };

  run(0.25, 0.0, "alpha=0 (standard)");
  for (double alpha : {0.2, 0.4, 1.0}) {
    run(0.2, alpha, StrFormat("t=0.20 alpha=%.1f", alpha));
  }
  for (double t_soft : {0.1, 0.25, 1.0}) {
    run(t_soft, 0.4, StrFormat("t=%.2f alpha=0.4", t_soft));
  }

  std::printf("\nPISL hyper-parameter ablation (ConvNet)\n");
  table.Print();
  std::printf(
      "\nExpected shape: moderate alpha with a small temperature beats\n"
      "the hard-label-only baseline; a very large temperature flattens\n"
      "the soft target toward uniform and dilutes the signal.\n");
  return 0;
}
