// Reproduces paper Fig. 4 / Table 9: AUC-PR of ten model-selection
// solutions across the 14 test datasets — the four feature-based
// classical baselines (KNN, SVC, AdaBoost, RandomForest), the kernel
// baseline (Rocket), the four plain NN selectors (ConvNet, ResNet,
// InceptionTime, Transformer) and Ours (ResNet + PISL&MKI; PA excluded
// for fairness, as in the paper). Expected shape: "Ours" has the best
// cross-dataset average.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "selectors/classical.h"
#include "selectors/rocket.h"

namespace {

using namespace kdsel;

/// Fits a classical (window-level) selector on the env's training data
/// and evaluates it with the shared protocol.
bench::SolutionResult FitAndEvaluateClassical(
    const exp::BenchmarkEnvironment& env, selectors::Selector& selector) {
  auto data = env.BuildTrainingData();
  if (!data.ok()) std::exit(1);
  selectors::TrainingData window_data;
  window_data.windows = data->windows;
  window_data.labels = data->labels;
  window_data.num_classes = data->num_classes;
  const auto t0 = std::chrono::steady_clock::now();
  auto fit = selector.Fit(window_data);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s fit failed: %s\n", selector.name().c_str(),
                 fit.ToString().c_str());
    std::exit(1);
  }
  bench::SolutionResult result;
  result.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.name = selector.name();
  auto auc = env.EvaluateSelector(selector);
  if (!auc.ok()) std::exit(1);
  result.auc = std::move(auc).value();
  std::fprintf(stderr, "[bench] %-22s avg AUC-PR %.4f, %6.1fs\n",
               result.name.c_str(), result.auc.at("Average"),
               result.train_seconds);
  return result;
}

}  // namespace

int main() {
  auto env = bench::MustCreateEnv();

  std::vector<bench::SolutionResult> results;

  // Non-NN baselines (TSFresh-style features / random kernels).
  {
    selectors::KnnSelector knn({});
    results.push_back(FitAndEvaluateClassical(*env, knn));
    selectors::SvcSelector svc({});
    results.push_back(FitAndEvaluateClassical(*env, svc));
    selectors::AdaBoostSelector ada({});
    results.push_back(FitAndEvaluateClassical(*env, ada));
    selectors::RandomForestSelector forest({});
    results.push_back(FitAndEvaluateClassical(*env, forest));
    selectors::RocketSelector rocket({});
    results.push_back(FitAndEvaluateClassical(*env, rocket));
  }

  // Plain NN selectors (standard learning framework), seed-averaged.
  const auto seeds = bench::BenchSeeds();
  for (const std::string arch :
       {"ConvNet", "ResNet", "InceptionTime", "Transformer"}) {
    core::TrainerOptions opts;
    opts.backbone = arch;
    results.push_back(bench::TrainAndEvaluateAvg(*env, opts, arch, seeds));
  }

  // Ours: ResNet + PISL & MKI (PA off for a fair accuracy comparison).
  {
    core::TrainerOptions opts;
    opts.backbone = "ResNet";
    opts.use_pisl = true;
    opts.use_mki = true;
    results.push_back(bench::TrainAndEvaluateAvg(*env, opts, "Ours", seeds));
  }

  std::printf(
      "\nFig. 4 / Table 9: AUC-PR of different model selection solutions\n");
  std::vector<std::map<std::string, double>> maps;
  std::vector<std::string> names;
  for (const auto& r : results) {
    maps.push_back(r.auc);
    names.push_back(r.name);
  }
  std::fputs(
      exp::FormatPerDatasetTable(env->test_dataset_names(), names, maps)
          .c_str(),
      stdout);

  // Rank the solutions by average, mirroring how Fig. 4 is read.
  std::printf("\nSolutions ranked by cross-dataset average AUC-PR:\n");
  std::vector<size_t> order(results.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return results[a].auc.at("Average") > results[b].auc.at("Average");
  });
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const auto& r = results[order[rank]];
    std::printf("  %zu. %-14s %.4f\n", rank + 1, r.name.c_str(),
                r.auc.at("Average"));
  }

  std::printf(
      "\nPaper reference (Table 9 averages): Ours 0.461 beats all nine\n"
      "baselines. Expected shape: \"Ours\" beats every plain NN selector\n"
      "and ranks at/near the top overall. Note: on this synthetic\n"
      "benchmark the feature-based tree ensembles are stronger than on\n"
      "real TSB-UAD data (family identity is cleanly encoded in summary\n"
      "statistics), so their relative position is higher than in the\n"
      "paper; see EXPERIMENTS.md.\n");
  bench::WriteSolutionReport("fig4_solutions", results);
  return 0;
}
