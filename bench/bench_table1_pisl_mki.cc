// Reproduces paper Table 1 / Table 6: AUC-PR and training time of the
// standard NN selector-learning framework vs +PISL, +MKI, +PISL&MKI,
// with the default ResNet architecture. Expected shape (paper):
// PISL&MKI > PISL > MKI > Standard on average AUC-PR, with negligible
// training-time overhead for the knowledge modules.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();

  auto base = [] {
    core::TrainerOptions o;
    o.backbone = "ResNet";
    o.seed = 1;
    return o;
  };

  core::TrainerOptions standard = base();

  core::TrainerOptions pisl = base();
  pisl.use_pisl = true;

  core::TrainerOptions mki = base();
  mki.use_mki = true;

  core::TrainerOptions both = base();
  both.use_pisl = true;
  both.use_mki = true;

  const auto seeds = bench::BenchSeeds();
  std::vector<bench::SolutionResult> results;
  results.push_back(
      bench::TrainAndEvaluateAvg(*env, standard, "Standard", seeds));
  results.push_back(bench::TrainAndEvaluateAvg(*env, pisl, "+PISL", seeds));
  results.push_back(bench::TrainAndEvaluateAvg(*env, mki, "+MKI", seeds));
  results.push_back(
      bench::TrainAndEvaluateAvg(*env, both, "+PISL&MKI", seeds));

  std::printf("\nTable 1: Results of PISL and MKI (ResNet selector)\n");
  exp::Table summary({"Metric", "Standard", "+PISL", "+MKI", "+PISL&MKI"});
  {
    std::vector<std::string> auc_row{"AUC-PR"};
    std::vector<std::string> time_row{"Time (s)"};
    for (const auto& r : results) {
      auc_row.push_back(StrFormat("%.4f", r.auc.at("Average")));
      time_row.push_back(StrFormat("%.1f", r.train_seconds));
    }
    summary.AddRow(auc_row);
    summary.AddRow(time_row);
  }
  summary.Print();

  std::printf(
      "\nTable 6: Full per-dataset results of PISL and MKI (AUC-PR)\n");
  std::vector<std::map<std::string, double>> maps;
  std::vector<std::string> names;
  for (const auto& r : results) {
    maps.push_back(r.auc);
    names.push_back(r.name);
  }
  std::fputs(
      exp::FormatPerDatasetTable(env->test_dataset_names(), names, maps)
          .c_str(),
      stdout);

  std::printf(
      "\nPaper reference (Table 1): AUC-PR 0.421 / 0.449 / 0.424 / 0.461;\n"
      "time within +-1%% of standard. Expected shape: both knowledge\n"
      "modules improve the average, their combination is best, and the\n"
      "overhead of PISL/MKI is negligible.\n");
  bench::WriteSolutionReport("table1_pisl_mki", results);
  return 0;
}
