// MKI negative-control ablation: does the InfoNCE term extract real
// knowledge from the metadata, or does it merely regularize? We train
// identical selectors with (a) correct metadata texts, (b) texts
// shuffled across series (knowledge destroyed, loss term kept), and
// (c) one constant text for all series (no discriminative content).
// Texts are stored once per series (windows reference them through
// text_index), so the controls rewrite the per-series rows in place.
// If MKI works as the paper claims, (a) > (b), (c).

#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();
  const auto seeds = bench::BenchSeeds();

  auto data = env->BuildTrainingData();
  if (!data.ok()) {
    std::fprintf(stderr, "training data failed\n");
    return 1;
  }

  auto evaluate_with_texts = [&](std::vector<std::string> texts,
                                 const std::string& name) {
    core::SelectorTrainingData variant = *data;
    variant.texts = std::move(texts);
    bench::SolutionResult avg;
    avg.name = name;
    for (uint64_t seed : seeds) {
      core::TrainerOptions opts;
      opts.backbone = "ConvNet";
      opts.use_mki = true;
      opts.epochs = env->config().epochs;
      opts.batch_size = env->config().batch_size;
      opts.seed = seed;
      core::TrainStats stats;
      auto selector = core::TrainSelector(variant, opts, &stats);
      KDSEL_CHECK(selector.ok());
      auto auc = env->EvaluateSelector(**selector);
      KDSEL_CHECK(auc.ok());
      for (const auto& [dataset, v] : *auc) avg.auc[dataset] += v;
      avg.train_seconds += stats.train_seconds;
    }
    for (auto& [dataset, v] : avg.auc) {
      v /= static_cast<double>(seeds.size());
    }
    avg.train_seconds /= static_cast<double>(seeds.size());
    std::fprintf(stderr, "[bench] %-18s avg AUC-PR %.4f\n", name.c_str(),
                 avg.auc.at("Average"));
    return avg;
  };

  // (a) Correct texts, as built by the pipeline.
  auto correct = evaluate_with_texts(data->texts, "correct texts");

  // (b) Shuffled: same text multiset, randomly reassigned to series.
  std::vector<std::string> shuffled = data->texts;
  Rng rng(99);
  rng.Shuffle(shuffled);
  auto scrambled = evaluate_with_texts(std::move(shuffled), "shuffled texts");

  // (c) Constant text: no per-series information at all.
  std::vector<std::string> constant(
      data->texts.size(),
      "This is a time series from a dataset. It may contain anomalies.");
  auto uninformative =
      evaluate_with_texts(std::move(constant), "constant text");

  std::printf("\nMKI metadata-quality ablation (ConvNet + MKI only)\n");
  exp::Table table({"Metadata", "AUC-PR"});
  table.AddRow({"correct (paper template)",
                StrFormat("%.4f", correct.auc.at("Average"))});
  table.AddRow({"shuffled across series",
                StrFormat("%.4f", scrambled.auc.at("Average"))});
  table.AddRow({"constant (uninformative)",
                StrFormat("%.4f", uninformative.auc.at("Average"))});
  table.Print();

  std::printf(
      "\nExpected shape: correct metadata beats both controls — the MKI\n"
      "gain comes from mutual information between series features and\n"
      "their own metadata, not from the extra loss term per se.\n");
  return 0;
}
