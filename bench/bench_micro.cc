// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: tensor algebra, conv layers, every TSAD detector, LSH
// hashing, text encoding, and feature extraction.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "datagen/families.h"
#include "features/features.h"
#include "lsh/simhash.h"
#include "nn/conv.h"
#include "nn/tensor.h"
#include "text/text_encoder.h"
#include "tsad/detector.h"

namespace {

using namespace kdsel;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  for (float& v : a.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.mutable_data()) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor x({32, 16, 64});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_Conv1dBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor x({32, 16, 64});
  nn::Tensor g({32, 16, 64});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : g.mutable_data()) v = static_cast<float>(rng.Normal());
  (void)conv.Forward(x, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(g));
  }
}
BENCHMARK(BM_Conv1dBackward);

void BM_DetectorScore(benchmark::State& state) {
  const auto& names = tsad::CanonicalModelNames();
  const std::string name = names[static_cast<size_t>(state.range(0))];
  auto detector = tsad::BuildDetector(name, 7);
  KDSEL_CHECK(detector.ok());
  Rng rng(4);
  auto series = datagen::GenerateSeries(datagen::Family::kYahoo, 512, 0, rng);
  KDSEL_CHECK(series.ok());
  for (auto _ : state) {
    auto scores = (*detector)->Score(*series);
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_DetectorScore)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);

void BM_SimHashSignature(benchmark::State& state) {
  lsh::SimHash hasher(64, 14, 5);
  Rng rng(5);
  std::vector<float> x(64);
  for (float& v : x) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(x));
  }
}
BENCHMARK(BM_SimHashSignature);

void BM_TextEncode(benchmark::State& state) {
  text::HashedTextEncoder encoder;
  const std::string text =
      "This is a time series from dataset ECG, a standard "
      "electrocardiogram dataset. The length of the series is 1024. "
      "There are 3 anomalies in this series. The lengths of the "
      "anomalies are 40, 55, 61.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(text));
  }
}
BENCHMARK(BM_TextEncode);

void BM_FeatureExtraction(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> window(64);
  for (float& v : window) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ExtractFeatures(window));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GenerateSeries(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto series =
        datagen::GenerateSeries(datagen::Family::kMgab, 1024, 0, rng);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_GenerateSeries);

}  // namespace

BENCHMARK_MAIN();
