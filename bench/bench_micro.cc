// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: tensor algebra, conv layers, every TSAD detector, LSH
// hashing, text encoding, and feature extraction.
//
// `bench_micro --report` bypasses google-benchmark and instead times
// the parallel hot paths (detector matrix build, Conv1d forward /
// backward, MatMul) at 1, 2 and 4 threads, writing the measurements
// and speedups to BENCH_micro.json (see bench/bench_report.h).
//
// `bench_micro --report-kernels` times every compiled SIMD kernel
// variant (scalar, generic, avx2 where supported) on a 256^3 MatMul, a
// 256^3 int8 matmul, a Conv1d forward, and an end-to-end selector
// forward (fp32 vs int8) at 1, 2 and 4 threads, writing
// BENCH_kernels.json with per-entry `speedup_vs_scalar` metrics (and
// `speedup_vs_fp32` on the int8 rows).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>

#include "bench/bench_report.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "datagen/families.h"
#include "features/features.h"
#include "lsh/simhash.h"
#include "nn/conv.h"
#include "nn/kernels/kernels.h"
#include "nn/layers.h"
#include "nn/quantize.h"
#include "nn/tensor.h"
#include "selectors/backbone.h"
#include "text/text_encoder.h"
#include "tsad/detector.h"

namespace {

using namespace kdsel;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  nn::Tensor a({n, n}), b({n, n});
  for (float& v : a.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : b.mutable_data()) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv1dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor x({32, 16, 64});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, true));
  }
}
BENCHMARK(BM_Conv1dForward);

void BM_Conv1dBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor x({32, 16, 64});
  nn::Tensor g({32, 16, 64});
  for (float& v : x.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : g.mutable_data()) v = static_cast<float>(rng.Normal());
  (void)conv.Forward(x, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(g));
  }
}
BENCHMARK(BM_Conv1dBackward);

void BM_DetectorScore(benchmark::State& state) {
  const auto& names = tsad::CanonicalModelNames();
  const std::string name = names[static_cast<size_t>(state.range(0))];
  auto detector = tsad::BuildDetector(name, 7);
  KDSEL_CHECK(detector.ok());
  Rng rng(4);
  auto series = datagen::GenerateSeries(datagen::Family::kYahoo, 512, 0, rng);
  KDSEL_CHECK(series.ok());
  for (auto _ : state) {
    auto scores = (*detector)->Score(*series);
    benchmark::DoNotOptimize(scores);
  }
  state.SetLabel(name);
}
BENCHMARK(BM_DetectorScore)->DenseRange(0, 11)->Unit(benchmark::kMillisecond);

void BM_SimHashSignature(benchmark::State& state) {
  lsh::SimHash hasher(64, 14, 5);
  Rng rng(5);
  std::vector<float> x(64);
  for (float& v : x) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(x));
  }
}
BENCHMARK(BM_SimHashSignature);

void BM_TextEncode(benchmark::State& state) {
  text::HashedTextEncoder encoder;
  const std::string text =
      "This is a time series from dataset ECG, a standard "
      "electrocardiogram dataset. The length of the series is 1024. "
      "There are 3 anomalies in this series. The lengths of the "
      "anomalies are 40, 55, 61.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(text));
  }
}
BENCHMARK(BM_TextEncode);

void BM_FeatureExtraction(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> window(64);
  for (float& v : window) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::ExtractFeatures(window));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_GenerateSeries(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto series =
        datagen::GenerateSeries(datagen::Family::kMgab, 1024, 0, rng);
    benchmark::DoNotOptimize(series);
  }
}
BENCHMARK(BM_GenerateSeries);

// --- `--report` mode: machine-readable parallel-path measurements ---

// Best-of-`reps` wall time of `iters` calls to `fn`, per call. Best-of
// (not mean) suppresses scheduler noise on shared CI runners.
double TimePerCall(size_t reps, size_t iters, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    const double per_call =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(iters);
    best = std::min(best, per_call);
  }
  return best;
}

// Writes the live metrics registry as METRICS_<name>.json next to the
// bench report (same $KDSEL_BENCH_REPORT_DIR convention), so CI can
// schema-check instrumentation coverage with
// tools/check_metrics_snapshot.py.
int WriteMetricsSnapshot(const char* name) {
  const char* dir = std::getenv("KDSEL_BENCH_REPORT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  path += std::string("/METRICS_") + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << obs::MetricsRegistry::Global().SnapshotJson() << "\n";
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "[bench_micro] metrics snapshot write failed: %s\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_micro] wrote %s\n", path.c_str());
  return 0;
}

int RunReportMode() {
  // Shared inputs, built once so every thread count times identical work.
  Rng rng(21);
  const size_t n = 192;
  nn::Tensor ma({n, n}), mb({n, n});
  for (float& v : ma.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : mb.mutable_data()) v = static_cast<float>(rng.Normal());

  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor cx({32, 16, 64}), cg({32, 16, 64});
  for (float& v : cx.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : cg.mutable_data()) v = static_cast<float>(rng.Normal());

  const auto models = tsad::BuildDefaultModelSet(11);
  std::vector<ts::TimeSeries> series;
  for (size_t i = 0; i < 6; ++i) {
    auto s = datagen::GenerateSeries(datagen::Family::kYahoo, 512, i, rng);
    KDSEL_CHECK(s.ok());
    series.push_back(std::move(s).value());
  }
  std::vector<const ts::TimeSeries*> series_ptrs;
  for (const auto& s : series) series_ptrs.push_back(&s);

  bench::BenchReport report("micro");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool::ResetGlobalForTesting(threads);
    std::fprintf(stderr, "[bench_micro] measuring at %zu threads\n", threads);

    {
      bench::BenchEntry e;
      e.name = "detector_matrix";
      e.threads = threads;
      e.items = static_cast<double>(series.size() * models.size());
      e.items_unit = "pairs";
      e.wall_seconds = TimePerCall(2, 1, [&] {
        auto matrix = core::EvaluatePerformanceMatrix(models, series_ptrs);
        KDSEL_CHECK(matrix.ok());
      });
      report.Add(std::move(e));
    }
    {
      bench::BenchEntry e;
      e.name = "conv1d_forward";
      e.threads = threads;
      e.items = 32.0;
      e.items_unit = "batch rows";
      e.wall_seconds =
          TimePerCall(3, 20, [&] { (void)conv.Forward(cx, true); });
      report.Add(std::move(e));
    }
    {
      bench::BenchEntry e;
      e.name = "conv1d_backward";
      e.threads = threads;
      e.items = 32.0;
      e.items_unit = "batch rows";
      (void)conv.Forward(cx, true);
      e.wall_seconds = TimePerCall(3, 10, [&] { (void)conv.Backward(cg); });
      report.Add(std::move(e));
    }
    {
      bench::BenchEntry e;
      e.name = "matmul_192";
      e.threads = threads;
      e.items = static_cast<double>(n * n * n);
      e.items_unit = "multiply-adds";
      e.wall_seconds = TimePerCall(3, 10, [&] {
        benchmark::DoNotOptimize(nn::MatMul(ma, mb));
      });
      report.Add(std::move(e));
    }
  }
  ThreadPool::ResetGlobalForTesting(0);  // back to the KDSEL_THREADS size

  report.ComputeSpeedups();
  auto path = report.Write();
  if (!path.ok()) {
    std::fprintf(stderr, "[bench_micro] report write failed: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_micro] wrote %s\n", path->c_str());
  for (const auto& e : report.entries()) {
    std::fprintf(stderr,
                 "[bench_micro] %-16s %zu threads  %10.6fs  speedup %.2fx\n",
                 e.name.c_str(), e.threads, e.wall_seconds, e.speedup_vs_1t);
  }
  return WriteMetricsSnapshot("micro");
}

int RunKernelsReportMode() {
  // Identical inputs for every variant and thread count: the comparison
  // is pure kernel code, not data.
  Rng rng(22);
  const size_t n = 256;
  nn::Tensor ma({n, n}), mb({n, n});
  for (float& v : ma.mutable_data()) v = static_cast<float>(rng.Normal());
  for (float& v : mb.mutable_data()) v = static_cast<float>(rng.Normal());

  nn::Conv1d conv(16, 16, 5, rng);
  nn::Tensor cx({32, 16, 64});
  for (float& v : cx.mutable_data()) v = static_cast<float>(rng.Normal());

  // Int8 operands for the quantized matmul, produced once: the int8
  // kernels are bitwise-identical across variants, so one quantization
  // feeds every variant's timing run.
  std::vector<int8_t> qa(n * n), qb(n * n);
  std::vector<float> requant(n);
  nn::Tensor i8_out;
  i8_out.Resize({n, n});
  {
    const float a_scale =
        nn::QuantScaleFromAbsMax(nn::AbsMax(ma.raw(), ma.size()));
    nn::kernels::Dispatch().i8_quantize(ma.raw(), 1.0f / a_scale, qa.data(),
                                        ma.size());
    nn::QuantizeWeightRows(mb.raw(), n, n, a_scale, qb.data(), requant.data());
  }

  // End-to-end selector forward: ConvNet encoder + linear head over a
  // [64, 64] window batch, timed fp32 vs int8 on the same weights.
  Rng srng(23);
  auto backbone = selectors::BuildBackbone("ConvNet", 64, srng);
  KDSEL_CHECK(backbone.ok());
  nn::Linear classifier((*backbone)->feature_dim(), 12, srng);
  nn::Tensor wx({64, 64});
  for (float& v : wx.mutable_data()) v = static_cast<float>(srng.Normal());
  auto selector_forward = [&] {
    nn::Tensor z = (*backbone)->Forward(wx, /*training=*/false);
    benchmark::DoNotOptimize(classifier.Forward(z, /*training=*/false));
  };
  std::vector<nn::Quantizable*> qlayers =
      nn::CollectQuantizableLayers(**backbone);
  classifier.CollectQuantizable(&qlayers);
  // One calibration sweep up front; each variant's int8 row re-applies
  // the recorded scales (weight quantization is deterministic).
  for (nn::Quantizable* q : qlayers) q->BeginQuantCalibration();
  selector_forward();
  for (nn::Quantizable* q : qlayers) q->EndQuantCalibration();
  const std::vector<float> act_scales = nn::CollectActivationScales(qlayers);
  for (nn::Quantizable* q : qlayers) q->ClearQuantization();

  bench::BenchReport report("kernels");
  // Wall time of the scalar baseline, keyed "workload:threads" — scalar
  // is always SupportedVariants().front(), so baselines land first.
  std::map<std::string, double> scalar_wall;
  // Only attributed when the baseline actually ran: operator[] would
  // default-insert 0.0 and turn a missing baseline into inf.
  auto vs_scalar = [&](bench::BenchEntry& e, const std::string& key) {
    const auto it = scalar_wall.find(key);
    if (it != scalar_wall.end() && e.wall_seconds > 0.0) {
      e.metrics["speedup_vs_scalar"] = it->second / e.wall_seconds;
    }
  };
  for (nn::kernels::Variant variant : nn::kernels::SupportedVariants()) {
    nn::kernels::ResetDispatchForTesting(variant);
    const std::string tag = nn::kernels::VariantName(variant);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ThreadPool::ResetGlobalForTesting(threads);
      std::fprintf(stderr, "[bench_micro] kernels: %s at %zu threads\n",
                   tag.c_str(), threads);
      double fp32_matmul_wall = 0.0;
      {
        bench::BenchEntry e;
        e.name = "matmul_256:" + tag;
        e.threads = threads;
        e.items = static_cast<double>(n * n * n);
        e.items_unit = "multiply-adds";
        e.wall_seconds = TimePerCall(3, 5, [&] {
          benchmark::DoNotOptimize(nn::MatMul(ma, mb));
        });
        fp32_matmul_wall = e.wall_seconds;
        const std::string key = "matmul:" + std::to_string(threads);
        if (variant == nn::kernels::Variant::kScalar) {
          scalar_wall[key] = e.wall_seconds;
        }
        vs_scalar(e, key);
        report.Add(std::move(e));
      }
      {
        bench::BenchEntry e;
        e.name = "i8_matmul_256:" + tag;
        e.threads = threads;
        e.items = static_cast<double>(n * n * n);
        e.items_unit = "multiply-adds";
        e.wall_seconds = TimePerCall(3, 5, [&] {
          nn::I8MatMulTbParallel(qa.data(), qb.data(), i8_out.raw(), n, n, n,
                                 requant.data(), nullptr);
          benchmark::DoNotOptimize(i8_out.raw());
        });
        const std::string key = "i8_matmul:" + std::to_string(threads);
        if (variant == nn::kernels::Variant::kScalar) {
          scalar_wall[key] = e.wall_seconds;
        }
        vs_scalar(e, key);
        // The headline int8 claim: quantized vs fp32 matmul, same
        // variant, same thread count.
        if (fp32_matmul_wall > 0.0 && e.wall_seconds > 0.0) {
          e.metrics["speedup_vs_fp32"] = fp32_matmul_wall / e.wall_seconds;
        }
        report.Add(std::move(e));
      }
      {
        bench::BenchEntry e;
        e.name = "conv1d_forward:" + tag;
        e.threads = threads;
        e.items = 32.0;
        e.items_unit = "batch rows";
        e.wall_seconds =
            TimePerCall(3, 20, [&] { (void)conv.Forward(cx, true); });
        const std::string key = "conv:" + std::to_string(threads);
        if (variant == nn::kernels::Variant::kScalar) {
          scalar_wall[key] = e.wall_seconds;
        }
        vs_scalar(e, key);
        report.Add(std::move(e));
      }
      if (threads == 1) {
        // End-to-end selector forward, single-thread: the serving-side
        // view of the int8 win (includes windowing-free fp32 tails).
        for (nn::Quantizable* q : qlayers) q->ClearQuantization();
        double fp32_fwd_wall = 0.0;
        {
          bench::BenchEntry e;
          e.name = "selector_forward_fp32:" + tag;
          e.threads = threads;
          e.items = 64.0;
          e.items_unit = "windows";
          e.wall_seconds = TimePerCall(3, 10, selector_forward);
          fp32_fwd_wall = e.wall_seconds;
          report.Add(std::move(e));
        }
        {
          KDSEL_CHECK(nn::ApplyActivationScales(qlayers, act_scales).ok());
          bench::BenchEntry e;
          e.name = "selector_forward_int8:" + tag;
          e.threads = threads;
          e.items = 64.0;
          e.items_unit = "windows";
          e.wall_seconds = TimePerCall(3, 10, selector_forward);
          if (fp32_fwd_wall > 0.0 && e.wall_seconds > 0.0) {
            e.metrics["speedup_vs_fp32"] = fp32_fwd_wall / e.wall_seconds;
          }
          report.Add(std::move(e));
          for (nn::Quantizable* q : qlayers) q->ClearQuantization();
        }
      }
    }
  }
  ThreadPool::ResetGlobalForTesting(0);
  nn::kernels::ResetDispatchForTesting();

  report.ComputeSpeedups();
  auto path = report.Write();
  if (!path.ok()) {
    std::fprintf(stderr, "[bench_micro] report write failed: %s\n",
                 path.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_micro] wrote %s\n", path->c_str());
  for (const auto& e : report.entries()) {
    const auto vs_s = e.metrics.find("speedup_vs_scalar");
    const auto vs_f = e.metrics.find("speedup_vs_fp32");
    std::fprintf(stderr,
                 "[bench_micro] %-28s %zu threads  %10.6fs  "
                 "vs-scalar %.2fx  vs-fp32 %.2fx  vs-1t %.2fx\n",
                 e.name.c_str(), e.threads, e.wall_seconds,
                 vs_s != e.metrics.end() ? vs_s->second : 0.0,
                 vs_f != e.metrics.end() ? vs_f->second : 0.0,
                 e.speedup_vs_1t);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // KDSEL_TRACE=<path> records the whole bench run as a chrome trace.
  kdsel::obs::InitTracingFromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report-kernels") == 0) {
      return RunKernelsReportMode();
    }
    if (std::strcmp(argv[i], "--report") == 0) return RunReportMode();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
