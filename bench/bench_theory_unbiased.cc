// Empirically validates paper Sect. A.2: with gradient rescaling by
// 1/(1-r), the expected per-epoch objective over the pruned set equals
// the full-data objective (Eqs. 19-22), for both InfoBatch and PA.
// We hold per-sample losses fixed, draw many epochs, and compare the
// average weighted loss sum against the full-data loss sum.

#include <cstdio>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stringutil.h"
#include "core/pruning.h"
#include "exp/tables.h"

namespace {

using namespace kdsel;

struct UnbiasednessResult {
  double ratio;          ///< E[weighted pruned objective] / full objective.
  double visit_fraction; ///< Mean kept fraction per epoch.
};

UnbiasednessResult Measure(core::PruningMode mode, size_t n, int epochs,
                           uint64_t seed) {
  Rng rng(seed);
  // Sample pool with duplicate clusters (so PA's buckets are exercised).
  std::vector<std::vector<float>> samples;
  std::vector<std::vector<float>> protos(6, std::vector<float>(16));
  for (auto& p : protos) {
    for (float& v : p) v = static_cast<float>(rng.Normal());
  }
  for (size_t i = 0; i < n; ++i) {
    auto row = protos[i % protos.size()];
    if (i % 2 == 0) {
      // Half the pool: tight copies of a prototype.
      for (float& v : row) v += static_cast<float>(rng.Normal(0.0, 0.01));
    } else {
      // Other half: free samples.
      for (float& v : row) v = static_cast<float>(rng.Normal());
    }
    samples.push_back(std::move(row));
  }
  core::PrunerOptions opts;
  opts.mode = mode;
  opts.prune_ratio = 0.8;
  opts.anneal_fraction = 0.0;
  opts.seed = seed ^ 0xfeed;
  core::Pruner pruner(opts, n, samples);

  std::vector<double> loss(n);
  for (size_t i = 0; i < n; ++i) loss[i] = rng.Uniform(0.05, 3.0);
  // Duplicated clusters share their loss (they are redundant samples).
  for (size_t i = 0; i < n; i += 2) loss[i] = 1.5 + 0.01 * double(i % 6);
  for (size_t i = 0; i < n; ++i) pruner.RecordLoss(i, loss[i]);

  const double full_objective = std::accumulate(loss.begin(), loss.end(), 0.0);
  double weighted_sum = 0.0;
  double kept_sum = 0.0;
  for (int e = 1; e <= epochs; ++e) {
    auto plan = pruner.PlanEpoch(static_cast<size_t>(e), 1u << 30);
    for (size_t k = 0; k < plan.kept.size(); ++k) {
      weighted_sum += plan.weights[k] * loss[plan.kept[k]];
    }
    kept_sum += static_cast<double>(plan.kept.size());
  }
  UnbiasednessResult result;
  result.ratio = weighted_sum / (full_objective * epochs);
  result.visit_fraction = kept_sum / (static_cast<double>(n) * epochs);
  return result;
}

}  // namespace

int main() {
  const size_t kSamples = 4000;
  const int kEpochs = 300;

  std::printf(
      "Sect. A.2 empirical check: expected rescaled objective over the\n"
      "pruned epoch vs the full-data objective (%zu samples, %d epochs)\n\n",
      kSamples, kEpochs);

  exp::Table table({"Pruning", "E[pruned objective]/full", "kept fraction",
                    "visits saved (%)"});
  bool all_unbiased = true;
  for (auto [mode, name] :
       {std::pair{core::PruningMode::kInfoBatch, "InfoBatch"},
        std::pair{core::PruningMode::kPa, "PA (Ours)"}}) {
    auto r = Measure(mode, kSamples, kEpochs, 11);
    table.AddRow({name, StrFormat("%.4f", r.ratio),
                  StrFormat("%.3f", r.visit_fraction),
                  StrFormat("%.1f", 100.0 * (1 - r.visit_fraction))});
    if (std::abs(r.ratio - 1.0) > 0.02) all_unbiased = false;
  }
  table.Print();

  std::printf(
      "\nExpected shape: both ratios ~1.0 (the 1/(1-r) rescaling makes\n"
      "pruned-epoch training an unbiased estimate of full-data training,\n"
      "Eq. 22), while PA keeps a smaller fraction of samples per epoch\n"
      "than InfoBatch.\n");
  return all_unbiased ? 0 : 1;
}
