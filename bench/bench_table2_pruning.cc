// Reproduces paper Table 2 / Table 7: the pruning-based acceleration
// (PA) module versus InfoBatch and full-data training, with PISL & MKI
// kept on (the paper's protocol for this table). Expected shape:
// PA saves more training time (fewer sample visits) than InfoBatch at a
// near-lossless AUC-PR cost (paper: -0.009 AUC for -58.3% time).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();

  auto base = [] {
    core::TrainerOptions o;
    o.backbone = "ResNet";
    o.seed = 1;
    o.use_pisl = true;
    o.use_mki = true;
    return o;
  };

  core::TrainerOptions full = base();

  core::TrainerOptions infobatch = base();
  infobatch.pruning.mode = core::PruningMode::kInfoBatch;
  infobatch.pruning.prune_ratio = 0.8;

  core::TrainerOptions pa = base();
  pa.pruning.mode = core::PruningMode::kPa;
  pa.pruning.prune_ratio = 0.8;
  pa.pruning.lsh_bits = 14;
  pa.pruning.num_bins = 8;

  const auto seeds = bench::BenchSeeds();
  std::vector<bench::SolutionResult> results;
  results.push_back(
      bench::TrainAndEvaluateAvg(*env, full, "Full data", seeds));
  results.push_back(
      bench::TrainAndEvaluateAvg(*env, infobatch, "+InfoBatch", seeds));
  results.push_back(bench::TrainAndEvaluateAvg(*env, pa, "+PA (Ours)", seeds));

  const double full_time = results[0].train_seconds;
  const double full_visits = static_cast<double>(results[0].samples_visited);

  std::printf("\nTable 2: Results of PA on all datasets\n");
  exp::Table summary(
      {"Metric", "Full data", "+InfoBatch", "+PA (Ours)"});
  std::vector<std::string> auc_row{"AUC-PR"};
  std::vector<std::string> time_row{"Time (s)"};
  std::vector<std::string> saved_row{"Saved time (%)"};
  std::vector<std::string> visits_row{"Sample visits"};
  std::vector<std::string> visit_saved_row{"Saved visits (%)"};
  for (const auto& r : results) {
    auc_row.push_back(StrFormat("%.4f", r.auc.at("Average")));
    time_row.push_back(StrFormat("%.1f", r.train_seconds));
    saved_row.push_back(
        StrFormat("%.1f", 100.0 * (1.0 - r.train_seconds / full_time)));
    visits_row.push_back(StrFormat("%zu", r.samples_visited));
    visit_saved_row.push_back(StrFormat(
        "%.1f",
        100.0 * (1.0 - static_cast<double>(r.samples_visited) / full_visits)));
  }
  summary.AddRow(auc_row);
  summary.AddRow(time_row);
  summary.AddRow(saved_row);
  summary.AddRow(visits_row);
  summary.AddRow(visit_saved_row);
  summary.Print();

  std::printf("\nTable 7: Full per-dataset results of PA (AUC-PR)\n");
  std::vector<std::map<std::string, double>> maps;
  std::vector<std::string> names;
  for (const auto& r : results) {
    maps.push_back(r.auc);
    names.push_back(r.name);
  }
  std::fputs(
      exp::FormatPerDatasetTable(env->test_dataset_names(), names, maps)
          .c_str(),
      stdout);

  std::printf(
      "\nPaper reference (Table 2): AUC-PR 0.461 / 0.455 / 0.452; time\n"
      "saved 0%% / 39.1%% / 58.3%%. Expected shape: PA prunes strictly\n"
      "more sample visits than InfoBatch with a similarly small AUC-PR\n"
      "drop (redundant high-loss samples are additionally pruned).\n");
  bench::WriteSolutionReport("table2_pruning", results);
  return 0;
}
