#ifndef KDSEL_BENCH_BENCH_REPORT_H_
#define KDSEL_BENCH_BENCH_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/json.h"

namespace kdsel::bench {

/// One timed measurement inside a benchmark report: a named workload run
/// at a specific thread count.
struct BenchEntry {
  std::string name;           ///< Workload id, e.g. "conv1d_forward".
  size_t threads = 1;         ///< Thread count the measured run used.
  double wall_seconds = 0.0;  ///< Wall time of the measured section.
  double items = 0.0;         ///< Work units processed (0 = unknown).
  std::string items_unit;     ///< E.g. "windows", "pairs", "samples".
  /// Extra named metrics (per-dataset AUC-PR, failure counts, ...).
  std::map<std::string, double> metrics;
  /// wall(1 thread) / wall(this run). Filled by ComputeSpeedups for
  /// workloads that were also measured at threads == 1; 0 otherwise
  /// (and then omitted from the JSON instead of emitted as garbage).
  double speedup_vs_1t = 0.0;
};

/// Machine-readable benchmark output: collects BenchEntry rows and
/// writes them as BENCH_<name>.json so paper tables and perf numbers
/// can be diffed by scripts instead of scraped from stderr logs.
///
/// The JSON layout is stable:
///   {"bench": "<name>",
///    "entries": [{"name": ..., "threads": N, "wall_seconds": ...,
///                 "items": ..., "items_unit": ..., "items_per_second":
///                 ..., "speedup_vs_1t": ..., "metrics": {...}}, ...]}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<BenchEntry>& entries() const { return entries_; }

  void Add(BenchEntry entry);

  /// For every entry whose workload name also has a threads == 1
  /// measurement, fills speedup_vs_1t = wall(1 thread) / wall(entry).
  void ComputeSpeedups();

  serve::Json ToJson() const;

  /// Writes BENCH_<name>.json into $KDSEL_BENCH_REPORT_DIR (falling
  /// back to the current directory) and returns the path written.
  StatusOr<std::string> Write() const;

 private:
  std::string name_;
  std::vector<BenchEntry> entries_;
};

}  // namespace kdsel::bench

#endif  // KDSEL_BENCH_BENCH_REPORT_H_
