// Window-length ablation: the paper runs every baseline over
// subsequence lengths L in {16,...,1024} and reports the best. This
// bench sweeps L for the ConvNet selector with and without KDSelector's
// knowledge modules, showing that the knowledge gain is not an artifact
// of one window size. The detector-performance matrix is shared across
// window lengths (model selection labels are per-series).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;

  exp::Table table(
      {"Window L", "Standard AUC-PR", "+PISL&MKI AUC-PR", "Delta"});
  const auto seeds = bench::BenchSeeds();

  for (size_t window : {size_t{32}, size_t{64}, size_t{128}}) {
    auto config = exp::ExperimentConfig::FromEnv();
    config.window_length = window;
    auto env = exp::BenchmarkEnvironment::Create(config);
    if (!env.ok()) {
      std::fprintf(stderr, "env failed: %s\n",
                   env.status().ToString().c_str());
      return 1;
    }
    core::TrainerOptions standard;
    standard.backbone = "ConvNet";
    auto base = bench::TrainAndEvaluateAvg(
        **env, standard, StrFormat("L=%zu standard", window), seeds);
    core::TrainerOptions kd = standard;
    kd.use_pisl = true;
    kd.use_mki = true;
    auto ours = bench::TrainAndEvaluateAvg(
        **env, kd, StrFormat("L=%zu +PISL&MKI", window), seeds);
    table.AddRow({StrFormat("%zu", window),
                  StrFormat("%.4f", base.auc.at("Average")),
                  StrFormat("%.4f", ours.auc.at("Average")),
                  StrFormat("%+.4f", ours.auc.at("Average") -
                                         base.auc.at("Average"))});
  }

  std::printf("\nWindow-length ablation (ConvNet)\n");
  table.Print();
  std::printf(
      "\nExpected shape: the knowledge gain is clearest at the default\n"
      "L=64. Short windows lose shape context and long windows yield few\n"
      "training samples per series, so the deltas at the extremes are\n"
      "noise-dominated on the compact benchmark.\n");
  return 0;
}
