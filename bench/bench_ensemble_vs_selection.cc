// Quantifies the paper's motivating claim (Sect. 1): ensembling all
// TSAD models is accurate but requires running every candidate, while
// a learned selector runs exactly one model per series at comparable
// accuracy. We compare, over the benchmark's test series:
//   - Ensemble: average of min-max-normalized scores of all 12 models
//     (detection cost: run 12 models per series);
//   - Ours: KDSelector-trained ResNet picks one model per series
//     (detection cost: run 1 model per series);
//   - Oracle: per-series best model (upper bound).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/metrics.h"
#include "tsad/util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();
  const auto& models = env->models();

  // Train "Ours" once (kept for the AUC columns) and one concrete
  // selector instance for timing the actually-selected detectors.
  core::TrainerOptions opts;
  opts.backbone = "ResNet";
  opts.seed = 1;
  opts.use_pisl = true;
  opts.use_mki = true;
  auto ours = bench::TrainAndEvaluate(*env, opts, "Ours (selector)");
  auto data = env->BuildTrainingData();
  if (!data.ok()) return 1;
  core::TrainerOptions timing_opts = opts;
  timing_opts.epochs = env->config().epochs;
  timing_opts.batch_size = env->config().batch_size;
  auto timing_selector = core::TrainSelector(*data, timing_opts, nullptr);
  if (!timing_selector.ok()) return 1;

  // Ensemble + per-series timing over the test series.
  double ensemble_sum = 0.0, selector_detect_seconds = 0.0,
         ensemble_detect_seconds = 0.0;
  size_t dataset_count = 0;
  std::map<std::string, double> ensemble_auc;
  for (const auto& name : env->test_dataset_names()) {
    const auto& series_list = env->test_series(name);
    double dataset_sum = 0.0;
    for (const auto& series : series_list) {
      // Ensemble: run all 12 models, average normalized scores.
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<float> combined(series.length(), 0.0f);
      size_t contributors = 0;
      for (const auto& model : models) {
        auto scores = model->Score(series);
        if (!scores.ok()) continue;
        tsad::MinMaxNormalize(*scores);
        for (size_t i = 0; i < combined.size(); ++i) {
          combined[i] += (*scores)[i];
        }
        ++contributors;
      }
      const auto t1 = std::chrono::steady_clock::now();
      ensemble_detect_seconds +=
          std::chrono::duration<double>(t1 - t0).count();
      if (contributors > 0) {
        for (float& v : combined) v /= static_cast<float>(contributors);
      }
      auto auc = metrics::AucPr(combined, series.labels());
      if (auc.ok()) dataset_sum += *auc;
      // Selection-side detection cost: run exactly the detector the
      // trained selector picks for this series (selection itself is
      // included in the timed span — it is part of the cost).
      const auto t2 = std::chrono::steady_clock::now();
      auto sel = core::SelectSeriesModel(**timing_selector, series,
                                         env->window_options(),
                                         models.size());
      if (sel.ok()) {
        auto one = models[static_cast<size_t>(sel->model)]->Score(series);
        (void)one;
      }
      const auto t3 = std::chrono::steady_clock::now();
      selector_detect_seconds +=
          std::chrono::duration<double>(t3 - t2).count();
    }
    ensemble_auc[name] =
        series_list.empty() ? 0.0
                            : dataset_sum / double(series_list.size());
    ensemble_sum += ensemble_auc[name];
    ++dataset_count;
  }
  ensemble_auc["Average"] = ensemble_sum / double(dataset_count);

  auto oracle = env->EvaluateFixedModel(-1);
  if (!oracle.ok()) return 1;

  std::printf("\nSelection vs ensembling (paper Sect. 1 motivation)\n");
  exp::Table table({"Approach", "Avg AUC-PR", "Models run per series",
                    "Detection time (s, all test series)"});
  table.AddRow({"Ensemble (all 12)",
                StrFormat("%.4f", ensemble_auc.at("Average")), "12",
                StrFormat("%.1f", ensemble_detect_seconds)});
  table.AddRow({"Ours (selected 1)",
                StrFormat("%.4f", ours.auc.at("Average")), "1",
                StrFormat("%.1f", selector_detect_seconds)});
  table.AddRow({"Oracle (best 1)",
                StrFormat("%.4f", oracle->at("Average")), "1 (hindsight)",
                "-"});
  table.Print();

  std::printf("\nPer-dataset comparison:\n");
  std::fputs(exp::FormatPerDatasetTable(env->test_dataset_names(),
                                        {"Ensemble", "Ours", "Oracle"},
                                        {ensemble_auc, ours.auc, *oracle})
                 .c_str(),
             stdout);

  std::printf(
      "\nExpected shape: the selector reaches accuracy in the ensemble's\n"
      "neighbourhood while running ~12x fewer detector invocations —\n"
      "the scalability argument for model selection.\n");
  return 0;
}
