// Empirically validates paper Sect. A.1: training samples that are
// similar in value and in loss have nearly identical parameter
// gradients, i.e. ||grad_i - grad_j|| is controlled by ||X_i - X_j||
// (Eq. 12), and conditioning additionally on similar loss tightens the
// bound (Eq. 14). This is the premise that makes PA's bucket pruning
// nearly lossless.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stringutil.h"
#include "core/trainer.h"
#include "exp/tables.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "selectors/backbone.h"

namespace {

using namespace kdsel;

/// Flattens all parameter gradients into one vector.
std::vector<double> FlatGrad(const std::vector<nn::Parameter*>& params) {
  std::vector<double> flat;
  for (const nn::Parameter* p : params) {
    for (float g : p->grad.data()) flat.push_back(g);
  }
  return flat;
}

double L2Diff(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(acc);
}

}  // namespace

int main() {
  const size_t kWindow = 32;
  const size_t kSamples = 72;
  Rng rng(3);

  // Task: three window shapes + per-sample jitter, so the sample pool
  // contains both near-duplicates and genuinely different samples.
  std::vector<std::vector<float>> windows;
  std::vector<int> labels;
  for (size_t i = 0; i < kSamples; ++i) {
    int c = static_cast<int>(i % 3);
    double jitter = 0.02 + 0.4 * rng.Uniform();
    std::vector<float> w(kWindow);
    for (size_t t = 0; t < kWindow; ++t) {
      double base = c == 0   ? std::sin(0.2 * t)
                    : c == 1 ? std::sin(1.3 * t)
                             : 0.06 * t;
      w[t] = static_cast<float>(base + jitter * rng.Normal());
    }
    windows.push_back(std::move(w));
    labels.push_back(c);
  }

  // A dropout-free Transformer encoder (LayerNorm only) so single-sample
  // gradients are well-defined, plus a linear classifier; briefly
  // pre-trained so gradients are not at a random point.
  selectors::TransformerBackbone::Options topts;
  topts.patch_size = 8;
  topts.dim = 16;
  topts.heads = 2;
  topts.layers = 1;
  topts.ffn_hidden = 32;
  topts.dropout = 0.0;
  selectors::TransformerBackbone backbone(kWindow, topts, rng);
  nn::Linear classifier(backbone.feature_dim(), 3, rng);
  std::vector<nn::Parameter*> params = backbone.Parameters();
  for (auto* p : classifier.Parameters()) params.push_back(p);
  nn::Adam opt(params, 1e-3);
  for (int step = 0; step < 30; ++step) {
    nn::Tensor x({kSamples, kWindow});
    for (size_t i = 0; i < kSamples; ++i) {
      std::copy(windows[i].begin(), windows[i].end(),
                x.raw() + i * kWindow);
    }
    nn::Tensor z = backbone.Forward(x, true);
    nn::Tensor logits = classifier.Forward(z, true);
    auto loss = nn::SoftmaxCrossEntropyHard(logits, labels, {});
    backbone.Backward(classifier.Backward(loss.grad));
    nn::ClipGradNorm(params, 5.0);
    opt.Step();
    opt.ZeroGrad();
  }

  // Per-sample gradients and losses.
  std::vector<std::vector<double>> grads(kSamples);
  std::vector<double> losses(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    opt.ZeroGrad();
    nn::Tensor x({1, kWindow});
    std::copy(windows[i].begin(), windows[i].end(), x.raw());
    nn::Tensor z = backbone.Forward(x, true);
    nn::Tensor logits = classifier.Forward(z, true);
    auto loss = nn::SoftmaxCrossEntropyHard(logits, {labels[i]}, {});
    backbone.Backward(classifier.Backward(loss.grad));
    grads[i] = FlatGrad(params);
    losses[i] = loss.mean_loss;
  }
  opt.ZeroGrad();

  // Pairwise statistics.
  struct Pair {
    double dx;
    double dloss;
    double dgrad;
  };
  std::vector<Pair> pairs;
  for (size_t i = 0; i < kSamples; ++i) {
    for (size_t j = i + 1; j < kSamples; ++j) {
      double dx = 0;
      for (size_t t = 0; t < kWindow; ++t) {
        double d = windows[i][t] - windows[j][t];
        dx += d * d;
      }
      pairs.push_back({std::sqrt(dx), std::abs(losses[i] - losses[j]),
                       L2Diff(grads[i], grads[j])});
    }
  }

  // 1) Gradient difference grows with input distance (Eq. 12): report
  //    mean ||dGrad|| per input-distance quintile.
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.dx < b.dx; });
  std::printf("Sect. A.1 empirical check (%zu sample pairs)\n\n",
              pairs.size());
  exp::Table table({"||X_i - X_j|| quintile", "mean ||X_i-X_j||",
                    "mean ||grad_i - grad_j||"});
  const size_t q = pairs.size() / 5;
  std::vector<double> quintile_grad(5, 0.0);
  for (size_t b = 0; b < 5; ++b) {
    double mx = 0, mg = 0;
    size_t begin = b * q, end = (b == 4) ? pairs.size() : (b + 1) * q;
    for (size_t k = begin; k < end; ++k) {
      mx += pairs[k].dx;
      mg += pairs[k].dgrad;
    }
    mx /= double(end - begin);
    mg /= double(end - begin);
    quintile_grad[b] = mg;
    table.AddRow({StrFormat("Q%zu", b + 1), StrFormat("%.4f", mx),
                  StrFormat("%.5f", mg)});
  }
  table.Print();
  // Eq. 12 is an upper bound: close-in-value pairs MUST have close
  // gradients, while distant pairs may have anything up to the bound
  // (and typically saturate). The testable implication is that the
  // closest quintile's gradient distance is far below the rest.
  double rest_max = 0.0;
  for (size_t b = 1; b < 5; ++b) {
    rest_max = std::max(rest_max, quintile_grad[b]);
  }
  const bool near_pairs_tight = quintile_grad[0] < 0.5 * rest_max;

  // 2) Empirical Lipschitz-style bound: max ratio ||dGrad||/||dX||
  //    should be bounded (Eq. 12's B_L*C_F + B_F*C_L).
  double max_ratio = 0;
  for (const Pair& p : pairs) {
    if (p.dx > 1e-3) max_ratio = std::max(max_ratio, p.dgrad / p.dx);
  }
  std::printf("\nEmpirical bound sup ||dGrad||/||dX|| = %.4f (finite)\n",
              max_ratio);

  // 3) Conditioning on similar loss tightens the bound (Eq. 14): among
  //    pairs with small input distance, those that ALSO have similar
  //    losses have smaller gradient differences.
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.dx < b.dx; });
  const size_t close_n = pairs.size() / 4;  // closest quarter by input
  std::vector<Pair> close(pairs.begin(),
                          pairs.begin() + static_cast<ptrdiff_t>(close_n));
  std::sort(close.begin(), close.end(),
            [](const Pair& a, const Pair& b) { return a.dloss < b.dloss; });
  double similar_loss_grad = 0, dissimilar_loss_grad = 0;
  const size_t half = close.size() / 2;
  for (size_t k = 0; k < half; ++k) similar_loss_grad += close[k].dgrad;
  for (size_t k = half; k < close.size(); ++k) {
    dissimilar_loss_grad += close[k].dgrad;
  }
  similar_loss_grad /= double(half);
  dissimilar_loss_grad /= double(close.size() - half);
  std::printf(
      "\nAmong the closest-in-value pairs:\n"
      "  similar-loss half:    mean ||dGrad|| = %.5f\n"
      "  dissimilar-loss half: mean ||dGrad|| = %.5f\n",
      similar_loss_grad, dissimilar_loss_grad);

  const bool loss_tightens = similar_loss_grad < dissimilar_loss_grad;
  std::printf(
      "\nConclusion: close-in-value pairs have %s gradients (Eq. 12's\n"
      "bound bites); similar loss %s the bound (Eq. 14) — %s with\n"
      "Sect. A.1 (samples close in value and loss contribute nearly\n"
      "identical updates, so PA may prune them).\n",
      near_pairs_tight ? "much closer" : "NOT closer",
      loss_tightens ? "tightens" : "does NOT tighten",
      (near_pairs_tight && loss_tightens) ? "CONSISTENT" : "inconsistent");
  return (near_pairs_tight && loss_tightens) ? 0 : 1;
}
