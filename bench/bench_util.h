#ifndef KDSEL_BENCH_BENCH_UTIL_H_
#define KDSEL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/parallel.h"
#include "common/stringutil.h"
#include "core/trainer.h"
#include "exp/env.h"
#include "exp/tables.h"

namespace kdsel::bench {

/// Builds the shared benchmark environment, aborting on failure (benches
/// have no meaningful recovery path).
inline std::unique_ptr<exp::BenchmarkEnvironment> MustCreateEnv() {
  auto config = exp::ExperimentConfig::FromEnv();
  std::fprintf(stderr, "[bench] environment: %zu series/family, seed %llu\n",
               config.series_per_family,
               static_cast<unsigned long long>(config.seed));
  auto env = exp::BenchmarkEnvironment::Create(config);
  if (!env.ok()) {
    std::fprintf(stderr, "environment setup failed: %s\n",
                 env.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(env).value();
}

/// One selector-training measurement: per-dataset AUC-PR + timing.
struct SolutionResult {
  std::string name;
  std::map<std::string, double> auc;  ///< dataset -> AUC-PR (+"Average").
  double train_seconds = 0.0;
  size_t samples_visited = 0;
  size_t full_visits = 0;
};

/// Trains an NN selector under `options` on the environment's pooled
/// training data and evaluates it with the paper's protocol.
inline SolutionResult TrainAndEvaluate(const exp::BenchmarkEnvironment& env,
                                       core::TrainerOptions options,
                                       const std::string& name) {
  auto data = env.BuildTrainingData();
  if (!data.ok()) {
    std::fprintf(stderr, "training data failed: %s\n",
                 data.status().ToString().c_str());
    std::exit(1);
  }
  options.epochs = env.config().epochs;
  options.batch_size = env.config().batch_size;
  core::TrainStats stats;
  auto selector = core::TrainSelector(*data, options, &stats);
  if (!selector.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 selector.status().ToString().c_str());
    std::exit(1);
  }
  auto auc = env.EvaluateSelector(**selector);
  if (!auc.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 auc.status().ToString().c_str());
    std::exit(1);
  }
  SolutionResult result;
  result.name = name;
  result.auc = std::move(auc).value();
  result.train_seconds = stats.train_seconds;
  result.samples_visited = stats.samples_visited;
  result.full_visits = stats.full_dataset_visits;
  std::fprintf(stderr,
               "[bench] %-22s avg AUC-PR %.4f, %6.1fs, visited %zu/%zu\n",
               name.c_str(), result.auc.at("Average"), result.train_seconds,
               result.samples_visited, result.full_visits);
  return result;
}

/// Trains under `options` once per seed and averages the per-dataset
/// AUC-PR and timing. Single-seed NN results on the compact benchmark
/// are noisy; the paper-style tables report the seed mean.
inline SolutionResult TrainAndEvaluateAvg(const exp::BenchmarkEnvironment& env,
                                          const core::TrainerOptions& options,
                                          const std::string& name,
                                          const std::vector<uint64_t>& seeds) {
  SolutionResult avg;
  avg.name = name;
  for (uint64_t seed : seeds) {
    core::TrainerOptions opts = options;
    opts.seed = seed;
    opts.pruning.seed = seed * 131 + 7;
    SolutionResult r = TrainAndEvaluate(env, opts, name);
    for (const auto& [dataset, auc] : r.auc) avg.auc[dataset] += auc;
    avg.train_seconds += r.train_seconds;
    avg.samples_visited += r.samples_visited;
    avg.full_visits += r.full_visits;
  }
  const double inv = 1.0 / static_cast<double>(seeds.size());
  for (auto& [dataset, auc] : avg.auc) auc *= inv;
  avg.train_seconds *= inv;
  avg.samples_visited =
      static_cast<size_t>(double(avg.samples_visited) * inv);
  avg.full_visits = static_cast<size_t>(double(avg.full_visits) * inv);
  return avg;
}

/// Seeds used by the seed-averaged table benches. KDSEL_BENCH_SEEDS=1
/// shrinks to a single seed for quick runs.
inline std::vector<uint64_t> BenchSeeds() {
  const char* env = std::getenv("KDSEL_BENCH_SEEDS");
  size_t n = 3;
  if (env != nullptr) {
    auto parsed = ParseSize(env);
    if (parsed.ok()) n = *parsed;
  }
  if (n == 0) n = 1;
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < n; ++i) seeds.push_back(i + 1);
  return seeds;
}

/// Converts a SolutionResult into a BenchEntry row: training wall time,
/// samples visited, and per-dataset AUC-PR as metrics.
inline BenchEntry SolutionEntry(const SolutionResult& r) {
  BenchEntry e;
  e.name = r.name;
  e.threads = ParallelThreads();
  e.wall_seconds = r.train_seconds;
  e.items = static_cast<double>(r.samples_visited);
  e.items_unit = "samples";
  for (const auto& [dataset, auc] : r.auc) {
    e.metrics["auc_pr/" + dataset] = auc;
  }
  e.metrics["full_dataset_visits"] = static_cast<double>(r.full_visits);
  return e;
}

/// Writes BENCH_<bench_name>.json from a table bench's solution
/// results, logging the output path (or failure) to stderr. Report
/// failures are non-fatal: the human-readable tables on stdout remain
/// the primary output.
inline void WriteSolutionReport(const std::string& bench_name,
                                const std::vector<SolutionResult>& results) {
  BenchReport report(bench_name);
  for (const SolutionResult& r : results) report.Add(SolutionEntry(r));
  report.ComputeSpeedups();
  auto path = report.Write();
  if (path.ok()) {
    std::fprintf(stderr, "[bench] wrote %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "[bench] report write failed: %s\n",
                 path.status().ToString().c_str());
  }
}

}  // namespace kdsel::bench

#endif  // KDSEL_BENCH_BENCH_UTIL_H_
