// Reproduces paper Table 3 / Table 8: KDSelector is architecture-
// agnostic. For each backbone (ResNet, InceptionTime, Transformer) we
// train the default (standard framework) selector and the +KDSelector
// variant. Following the paper's protocol, the AUC-PR improvement is
// measured with PISL&MKI (no pruning, fair accuracy comparison) and the
// time saving is measured with PA enabled on the KDSelector side.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace kdsel;
  auto env = bench::MustCreateEnv();

  const std::vector<std::string> architectures{"ResNet", "InceptionTime",
                                               "Transformer"};
  std::vector<std::map<std::string, double>> maps;
  std::vector<std::string> names;

  exp::Table summary({"Architecture", "Default AUC-PR", "+KDSel AUC-PR",
                      "Improved", "+KDSel time (s)", "+KDSel(PA) time (s)",
                      "PA saved time (%)", "PA saved visits (%)"});

  const auto seeds = bench::BenchSeeds();
  for (const auto& arch : architectures) {
    core::TrainerOptions standard;
    standard.backbone = arch;
    auto base = bench::TrainAndEvaluateAvg(*env, standard,
                                           arch + " (default)", seeds);

    core::TrainerOptions enhanced = standard;
    enhanced.use_pisl = true;
    enhanced.use_mki = true;
    auto kd = bench::TrainAndEvaluateAvg(*env, enhanced,
                                         arch + " +KDSelector", seeds);

    core::TrainerOptions pruned = enhanced;
    pruned.pruning.mode = core::PruningMode::kPa;
    auto kd_pa = bench::TrainAndEvaluateAvg(*env, pruned,
                                            arch + " +KDSelector(PA)", seeds);

    // The PA columns compare the same configuration (PISL&MKI) with and
    // without pruning — the quantity PA controls. Sample visits are the
    // hardware-independent measure; wall-clock tracks them on one core.
    summary.AddRow(
        {arch, StrFormat("%.4f", base.auc.at("Average")),
         StrFormat("%.4f", kd.auc.at("Average")),
         StrFormat("%+.4f", kd.auc.at("Average") - base.auc.at("Average")),
         StrFormat("%.1f", kd.train_seconds),
         StrFormat("%.1f", kd_pa.train_seconds),
         StrFormat("%.1f",
                   100.0 * (1.0 - kd_pa.train_seconds / kd.train_seconds)),
         StrFormat("%.1f",
                   100.0 * (1.0 - double(kd_pa.samples_visited) /
                                      double(kd_pa.full_visits)))});

    maps.push_back(base.auc);
    names.push_back(arch + " default");
    maps.push_back(kd.auc);
    names.push_back(arch + " +KD");
  }

  std::printf("\nTable 3: Results of KDSelector on different architectures\n");
  summary.Print();

  std::printf("\nTable 8: Full per-dataset results on architectures\n");
  std::fputs(
      exp::FormatPerDatasetTable(env->test_dataset_names(), names, maps)
          .c_str(),
      stdout);

  std::printf(
      "\nPaper reference (Table 3): improved AUC-PR +0.040 (ResNet),\n"
      "+0.046 (InceptionTime), +0.015 (Transformer); time saved 58.3%%,\n"
      "70.96%%, 74.17%%. Expected shape: KDSelector improves every\n"
      "architecture's accuracy and PA saves a large share of sample\n"
      "visits on every architecture.\n");
  return 0;
}
