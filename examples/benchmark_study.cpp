// A compact accuracy study using the experiment harness: compares the
// standard NN selector against the full KDSelector configuration on a
// small instance of the 16-family benchmark and prints a per-dataset
// AUC-PR table — the demo paper's "superiority of KDSelector" scenario
// at example scale. (The bench/ binaries run the full-size versions.)
//
// Build & run:  ./build/examples/benchmark_study

#include <cstdio>

#include "core/trainer.h"
#include "exp/env.h"
#include "exp/tables.h"

namespace {

int Run() {
  using namespace kdsel;

  exp::ExperimentConfig config;
  config.series_per_family = 3;
  config.min_length = 384;
  config.max_length = 640;
  config.window_length = 64;
  config.epochs = 8;
  config.seed = 13;
  config.cache_dir = ".kdsel_cache";

  std::printf("building benchmark environment (first run computes the\n"
              "detector performance matrix; later runs hit the cache)...\n");
  auto env = exp::BenchmarkEnvironment::Create(config);
  if (!env.ok()) {
    std::fprintf(stderr, "environment failed: %s\n",
                 env.status().ToString().c_str());
    return 1;
  }

  auto data = (*env)->BuildTrainingData();
  if (!data.ok()) return 1;
  std::printf("training windows: %zu, models: %zu\n\n", data->size(),
              (*env)->num_models());

  auto train_and_eval = [&](bool kd) {
    core::TrainerOptions opts;
    opts.backbone = "ResNet";
    opts.epochs = config.epochs;
    opts.seed = 2;
    opts.use_pisl = kd;
    opts.use_mki = kd;
    core::TrainStats stats;
    auto selector = core::TrainSelector(*data, opts, &stats);
    KDSEL_CHECK(selector.ok());
    auto auc = (*env)->EvaluateSelector(**selector);
    KDSEL_CHECK(auc.ok());
    std::printf("%-22s trained in %.1fs, average AUC-PR %.4f\n",
                kd ? "ResNet+KDSelector" : "ResNet (standard)",
                stats.train_seconds, auc->at("Average"));
    return *auc;
  };

  auto standard = train_and_eval(false);
  auto ours = train_and_eval(true);
  auto oracle = (*env)->EvaluateFixedModel(-1);
  KDSEL_CHECK(oracle.ok());

  std::printf("\nPer-dataset AUC-PR (oracle = per-series best model):\n");
  std::fputs(exp::FormatPerDatasetTable((*env)->test_dataset_names(),
                                        {"Standard", "KDSelector", "Oracle"},
                                        {standard, ours, *oracle})
                 .c_str(),
             stdout);
  return 0;
}

}  // namespace

int main() { return Run(); }
