// Selector management: the demo system's save/load/list workflow.
//
// Trains two differently-configured selectors on the same historical
// data, stores them under a selector directory with SelectorManager,
// lists what is stored, reloads one by name, and verifies the reloaded
// selector predicts identically to the in-memory original.
//
// Build & run:  ./build/examples/selector_management [selector_dir]

#include <cstdio>
#include <filesystem>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "tsad/detector.h"

namespace {

int Run(const std::string& dir) {
  using namespace kdsel;

  // Historical data: a compact two-family pool.
  datagen::BenchmarkOptions data_opts;
  data_opts.series_per_family = 4;
  data_opts.min_length = 448;
  data_opts.max_length = 640;
  data_opts.seed = 21;
  std::vector<ts::TimeSeries> history;
  for (auto family : {datagen::Family::kYahoo, datagen::Family::kSensorScope,
                      datagen::Family::kEcg}) {
    auto dataset = datagen::GenerateFamilyDataset(family, data_opts);
    if (!dataset.ok()) return 1;
    for (auto& s : dataset->series) history.push_back(std::move(s));
  }

  auto models = tsad::BuildDefaultModelSet(21);
  std::vector<std::vector<float>> performance;
  for (const auto& s : history) {
    auto perf = core::EvaluateDetectorsOnSeries(models, s);
    if (!perf.ok()) return 1;
    performance.push_back(std::move(perf).value());
  }

  ts::WindowOptions window_opts;
  window_opts.length = 64;
  window_opts.stride = 64;
  auto data =
      core::BuildSelectorTrainingData(history, performance, window_opts);
  if (!data.ok()) return 1;

  core::SelectorManager manager(dir);

  // Train and store two selectors with different configurations.
  struct Variant {
    const char* name;
    const char* backbone;
    bool kd;
  };
  for (const Variant& v : {Variant{"resnet_standard", "ResNet", false},
                           Variant{"convnet_kdselector", "ConvNet", true}}) {
    core::TrainerOptions opts;
    opts.backbone = v.backbone;
    opts.epochs = 6;
    opts.seed = 3;
    opts.use_pisl = v.kd;
    opts.use_mki = v.kd;
    core::TrainStats stats;
    auto selector = core::TrainSelector(*data, opts, &stats);
    if (!selector.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", v.name,
                   selector.status().ToString().c_str());
      return 1;
    }
    auto saved = manager.Save(**selector, v.name);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("trained and saved '%s' (%s, %.1fs)\n", v.name,
                (*selector)->name().c_str(), stats.train_seconds);
  }

  // List the stored selectors.
  auto names = manager.List();
  if (!names.ok()) return 1;
  std::printf("\nstored selectors in %s:\n", manager.directory().c_str());
  for (const auto& name : *names) std::printf("  - %s\n", name.c_str());

  // Reload one and use it for model selection on a fresh series.
  auto loaded = manager.Load("convnet_kdselector");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Rng rng(77);
  auto unseen =
      datagen::GenerateSeries(datagen::Family::kSensorScope, 600, 0, rng);
  if (!unseen.ok()) return 1;
  auto detection =
      core::DetectWithSelection(**loaded, models, *unseen, window_opts);
  if (!detection.ok()) return 1;
  std::printf(
      "\nreloaded selector chose %s for an unseen SensorScope series "
      "(AUC-PR %.4f)\n",
      detection->model_name.c_str(), detection->auc_pr);

  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1]
                             : (std::filesystem::temp_directory_path() /
                                "kdsel_selectors")
                                   .string();
  return Run(dir);
}
