// Quickstart: the complete KDSelector workflow in one file.
//
// 1. Synthesize a small heterogeneous benchmark (stand-in for TSB-UAD).
// 2. Run the 12-model TSAD set on the historical series to obtain each
//    series' per-model AUC-PR (label generation).
// 3. Train an NN selector with the full KDSelector framework
//    (PISL soft labels + MKI metadata knowledge + PA pruning).
// 4. Select a model for an unseen series and detect its anomalies.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "metrics/metrics.h"
#include "ts/window.h"
#include "tsad/detector.h"

namespace {

int Run() {
  using namespace kdsel;

  // --- 1. Historical data: 4 families, a few series each. -------------
  datagen::BenchmarkOptions data_opts;
  data_opts.series_per_family = 4;
  data_opts.min_length = 512;
  data_opts.max_length = 768;
  data_opts.seed = 7;

  std::vector<datagen::Family> families = {
      datagen::Family::kEcg, datagen::Family::kYahoo, datagen::Family::kNab,
      datagen::Family::kMgab};
  std::vector<ts::TimeSeries> history;
  for (auto family : families) {
    auto dataset = datagen::GenerateFamilyDataset(family, data_opts);
    if (!dataset.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    for (auto& s : dataset->series) history.push_back(std::move(s));
  }
  std::printf("historical series: %zu\n", history.size());

  // --- 2. Label generation: run all 12 TSAD models on each series. ----
  auto models = tsad::BuildDefaultModelSet(/*seed=*/7);
  std::vector<std::vector<float>> performance;
  for (const auto& s : history) {
    auto perf = core::EvaluateDetectorsOnSeries(models, s);
    if (!perf.ok()) {
      std::fprintf(stderr, "label generation failed: %s\n",
                   perf.status().ToString().c_str());
      return 1;
    }
    performance.push_back(std::move(perf).value());
  }
  std::printf("performance matrix: %zu series x %zu models\n",
              performance.size(), models.size());

  // --- 3. Train a ResNet selector with all KDSelector modules on. -----
  ts::WindowOptions window_opts;
  window_opts.length = 64;
  window_opts.stride = 64;
  auto data = core::BuildSelectorTrainingData(history, performance,
                                              window_opts);
  if (!data.ok()) {
    std::fprintf(stderr, "training data failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("training windows: %zu\n", data->size());

  core::TrainerOptions train_opts;
  train_opts.backbone = "ResNet";
  train_opts.epochs = 8;
  train_opts.use_pisl = true;
  train_opts.use_mki = true;
  train_opts.pruning.mode = core::PruningMode::kPa;
  train_opts.seed = 7;

  core::TrainStats stats;
  auto selector = core::TrainSelector(*data, train_opts, &stats);
  if (!selector.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 selector.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %s in %.1fs, visited %zu/%zu sample-iterations\n",
              (*selector)->name().c_str(), stats.train_seconds,
              stats.samples_visited, stats.full_dataset_visits);

  // --- 4. Select & detect on a fresh, unseen series. -------------------
  Rng rng(99);
  auto unseen = datagen::GenerateSeries(datagen::Family::kYahoo, 700,
                                        /*index=*/0, rng);
  if (!unseen.ok()) return 1;
  auto detection = core::DetectWithSelection(**selector, models, *unseen,
                                             window_opts);
  if (!detection.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }
  std::printf("selected model: %s (votes:", detection->model_name.c_str());
  for (size_t j = 0; j < detection->votes.size(); ++j) {
    if (detection->votes[j]) {
      std::printf(" %s=%d", models[j]->name().c_str(), detection->votes[j]);
    }
  }
  std::printf(")\n");
  std::printf("detection AUC-PR on unseen series: %.4f\n", detection->auc_pr);
  return 0;
}

}  // namespace

int main() { return Run(); }
