// Extending the model set: plugging a user-defined TSAD detector into
// the selection pipeline.
//
// The paper's system ships 12 detectors but is designed so "more models
// can be integrated in the same way". This example defines a custom
// detector (a robust moving z-score), appends it to the default model
// set as a 13th candidate, regenerates the labels over the enlarged
// set, trains a selector for it, and runs selection end to end.
//
// Build & run:  ./build/examples/custom_detector

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "tsad/detector.h"
#include "tsad/util.h"

namespace {

using namespace kdsel;

/// A simple user-defined detector: score = |x - median| / MAD over a
/// trailing context window. Strong on point outliers, weak elsewhere —
/// exactly the kind of specialist a selector should learn to pick only
/// when it fits.
class MovingZScoreDetector : public tsad::Detector {
 public:
  explicit MovingZScoreDetector(size_t context) : context_(context) {}

  std::string name() const override { return "MovingZScore"; }

  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override {
    if (series.length() < context_ + 1) {
      return Status::InvalidArgument("series too short for MovingZScore");
    }
    const auto& v = series.values();
    std::vector<float> scores(series.length(), 0.0f);
    std::vector<float> window;
    for (size_t t = context_; t < v.size(); ++t) {
      window.assign(v.begin() + static_cast<ptrdiff_t>(t - context_),
                    v.begin() + static_cast<ptrdiff_t>(t));
      std::nth_element(window.begin(), window.begin() + window.size() / 2,
                       window.end());
      const float median = window[window.size() / 2];
      for (float& x : window) x = std::abs(x - median);
      std::nth_element(window.begin(), window.begin() + window.size() / 2,
                       window.end());
      const float mad = std::max(window[window.size() / 2], 1e-4f);
      scores[t] = std::abs(v[t] - median) / mad;
    }
    for (size_t t = 0; t < context_; ++t) scores[t] = scores[context_];
    tsad::MinMaxNormalize(scores);
    return scores;
  }

 private:
  size_t context_;
};

int Run() {
  // Enlarged model set: the canonical 12 + the custom detector.
  auto models = tsad::BuildDefaultModelSet(9);
  models.push_back(std::make_unique<MovingZScoreDetector>(48));
  std::printf("model set size: %zu (last: %s)\n", models.size(),
              models.back()->name().c_str());

  // Historical data with spike-heavy and spike-free families, so the
  // custom specialist wins somewhere but not everywhere.
  datagen::BenchmarkOptions data_opts;
  data_opts.series_per_family = 4;
  data_opts.min_length = 448;
  data_opts.max_length = 640;
  data_opts.seed = 5;
  std::vector<ts::TimeSeries> history;
  for (auto family : {datagen::Family::kYahoo, datagen::Family::kNab,
                      datagen::Family::kEcg, datagen::Family::kDaphnet}) {
    auto dataset = datagen::GenerateFamilyDataset(family, data_opts);
    if (!dataset.ok()) return 1;
    for (auto& s : dataset->series) history.push_back(std::move(s));
  }

  // Label generation over the enlarged set.
  std::vector<std::vector<float>> performance;
  size_t custom_wins = 0;
  for (const auto& s : history) {
    auto perf = core::EvaluateDetectorsOnSeries(models, s);
    if (!perf.ok()) return 1;
    size_t best = 0;
    for (size_t j = 1; j < perf->size(); ++j) {
      if ((*perf)[j] > (*perf)[best]) best = j;
    }
    custom_wins += (best == models.size() - 1);
    performance.push_back(std::move(perf).value());
  }
  std::printf("custom detector is the best model on %zu/%zu series\n",
              custom_wins, history.size());

  // Train a selector over the 13-way label space.
  ts::WindowOptions window_opts;
  window_opts.length = 64;
  window_opts.stride = 64;
  auto data =
      core::BuildSelectorTrainingData(history, performance, window_opts);
  if (!data.ok()) return 1;
  std::printf("selector classes: %zu\n", data->num_classes);

  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 8;
  opts.use_pisl = true;
  opts.seed = 5;
  auto selector = core::TrainSelector(*data, opts, nullptr);
  if (!selector.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 selector.status().ToString().c_str());
    return 1;
  }

  // Selection on fresh series from two different families.
  Rng rng(123);
  for (auto family : {datagen::Family::kYahoo, datagen::Family::kDaphnet}) {
    auto unseen = datagen::GenerateSeries(family, 600, 0, rng);
    if (!unseen.ok()) return 1;
    auto detection =
        core::DetectWithSelection(**selector, models, *unseen, window_opts);
    if (!detection.ok()) return 1;
    std::printf("%-12s -> selected %-12s (AUC-PR %.4f)\n",
                datagen::FamilyName(family), detection->model_name.c_str(),
                detection->auc_pr);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
