// Online model selection on a live stream: trains a tiny selector
// in-process, registers it, then pushes a sine wave that switches to a
// shifted square wave mid-stream through a StreamScorer. The drift
// monitor catches the regime change and triggers a re-selection without
// waiting for the periodic re-score — the streaming counterpart of the
// batch `kdsel detect` flow. (`kdsel stream` wraps the same scorer in an
// NDJSON stdin/stdout loop; see the README.)
//
// Build & run:  ./build/examples/streaming

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/trainer.h"
#include "serve/registry.h"
#include "stream/scorer.h"

namespace {

using namespace kdsel;

// Four sine variants as selector classes — enough for the selector to
// have something to choose between at example scale.
std::unique_ptr<core::TrainedSelector> TrainTinySelector() {
  core::SelectorTrainingData data;
  data.num_classes = 4;
  Rng rng(1);
  for (int i = 0; i < 120; ++i) {
    const int c = i % 4;
    std::vector<float> w(32);
    for (size_t t = 0; t < w.size(); ++t) {
      w[t] = std::sin((0.15 + 0.35 * c) * static_cast<double>(t)) +
             0.05f * static_cast<float>(rng.Normal());
    }
    data.windows.push_back(std::move(w));
    data.labels.push_back(c);
  }
  core::TrainerOptions opts;
  opts.backbone = "ConvNet";
  opts.epochs = 2;
  opts.seed = 1;
  auto selector = core::TrainSelector(data, opts, nullptr);
  if (!selector.ok()) return nullptr;
  return std::move(selector).value();
}

int Run() {
  serve::SelectorRegistry registry{core::SelectorManager(".")};
  auto selector = TrainTinySelector();
  if (selector == nullptr ||
      !registry.Register("demo", std::move(selector)).ok()) {
    std::fprintf(stderr, "selector training failed\n");
    return 1;
  }

  stream::StreamOptions options;
  options.selector = "demo";
  options.window = 64;
  options.rescore_interval = 4096;  // Rely on drift, not the periodic timer.
  options.drift.calibration = 16;
  options.drift.patience = 2;
  stream::StreamScorer scorer(&registry, options);

  // 400 calm sine points, then a shifted noisy square wave: a regime
  // change the frozen drift baseline cannot explain.
  std::vector<stream::PointEvent> points;
  Rng rng(7);
  for (size_t t = 0; t < 800; ++t) {
    float v;
    if (t < 400) {
      v = std::sin(0.2 * static_cast<double>(t));
    } else {
      v = 8.0f + ((t / 10) % 2 == 0 ? 4.0f : -4.0f) +
          0.3f * static_cast<float>(rng.Normal());
    }
    points.push_back(stream::PointEvent{"sensor", v});
  }

  // Feed in bursts of 100, as an ingestion socket would.
  for (size_t offset = 0; offset < points.size(); offset += 100) {
    const std::vector<stream::PointEvent> burst(
        points.begin() + offset, points.begin() + offset + 100);
    auto events = scorer.ProcessBatch(burst);
    if (!events.ok()) {
      std::fprintf(stderr, "stream failed: %s\n",
                   events.status().ToString().c_str());
      return 1;
    }
    for (const stream::StreamEvent& event : *events) {
      if (event.kind == stream::StreamEvent::Kind::kDrift) {
        std::printf("point %6zu  DRIFT      statistic=%.1f\n", event.point,
                    event.statistic);
      } else {
        std::printf("point %6zu  SELECTION  model=%d reason=%s changed=%s\n",
                    event.point, event.model, event.reason.c_str(),
                    event.changed ? "yes" : "no");
      }
    }
  }
  std::printf("done: %zu points through %zu series\n",
              scorer.points_ingested(), scorer.series_count());
  return 0;
}

}  // namespace

int main() { return Run(); }
