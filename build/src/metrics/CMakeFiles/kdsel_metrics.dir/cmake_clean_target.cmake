file(REMOVE_RECURSE
  "libkdsel_metrics.a"
)
