# Empty compiler generated dependencies file for kdsel_metrics.
# This may be replaced when dependencies are built.
