file(REMOVE_RECURSE
  "CMakeFiles/kdsel_metrics.dir/metrics.cc.o"
  "CMakeFiles/kdsel_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/kdsel_metrics.dir/range_metrics.cc.o"
  "CMakeFiles/kdsel_metrics.dir/range_metrics.cc.o.d"
  "libkdsel_metrics.a"
  "libkdsel_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
