file(REMOVE_RECURSE
  "CMakeFiles/kdsel_tsad.dir/density.cc.o"
  "CMakeFiles/kdsel_tsad.dir/density.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/ensemble.cc.o"
  "CMakeFiles/kdsel_tsad.dir/ensemble.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/iforest.cc.o"
  "CMakeFiles/kdsel_tsad.dir/iforest.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/matrix_profile.cc.o"
  "CMakeFiles/kdsel_tsad.dir/matrix_profile.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/nn_detectors.cc.o"
  "CMakeFiles/kdsel_tsad.dir/nn_detectors.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/norma.cc.o"
  "CMakeFiles/kdsel_tsad.dir/norma.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/ocsvm.cc.o"
  "CMakeFiles/kdsel_tsad.dir/ocsvm.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/pca.cc.o"
  "CMakeFiles/kdsel_tsad.dir/pca.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/predictors.cc.o"
  "CMakeFiles/kdsel_tsad.dir/predictors.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/registry.cc.o"
  "CMakeFiles/kdsel_tsad.dir/registry.cc.o.d"
  "CMakeFiles/kdsel_tsad.dir/util.cc.o"
  "CMakeFiles/kdsel_tsad.dir/util.cc.o.d"
  "libkdsel_tsad.a"
  "libkdsel_tsad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_tsad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
