
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsad/density.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/density.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/density.cc.o.d"
  "/root/repo/src/tsad/ensemble.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/ensemble.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/ensemble.cc.o.d"
  "/root/repo/src/tsad/iforest.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/iforest.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/iforest.cc.o.d"
  "/root/repo/src/tsad/matrix_profile.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/matrix_profile.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/matrix_profile.cc.o.d"
  "/root/repo/src/tsad/nn_detectors.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/nn_detectors.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/nn_detectors.cc.o.d"
  "/root/repo/src/tsad/norma.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/norma.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/norma.cc.o.d"
  "/root/repo/src/tsad/ocsvm.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/ocsvm.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/ocsvm.cc.o.d"
  "/root/repo/src/tsad/pca.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/pca.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/pca.cc.o.d"
  "/root/repo/src/tsad/predictors.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/predictors.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/predictors.cc.o.d"
  "/root/repo/src/tsad/registry.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/registry.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/registry.cc.o.d"
  "/root/repo/src/tsad/util.cc" "src/tsad/CMakeFiles/kdsel_tsad.dir/util.cc.o" "gcc" "src/tsad/CMakeFiles/kdsel_tsad.dir/util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/kdsel_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kdsel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kdsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
