file(REMOVE_RECURSE
  "libkdsel_tsad.a"
)
