# Empty dependencies file for kdsel_tsad.
# This may be replaced when dependencies are built.
