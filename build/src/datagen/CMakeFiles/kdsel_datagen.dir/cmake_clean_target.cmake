file(REMOVE_RECURSE
  "libkdsel_datagen.a"
)
