
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/anomaly_injector.cc" "src/datagen/CMakeFiles/kdsel_datagen.dir/anomaly_injector.cc.o" "gcc" "src/datagen/CMakeFiles/kdsel_datagen.dir/anomaly_injector.cc.o.d"
  "/root/repo/src/datagen/benchmark.cc" "src/datagen/CMakeFiles/kdsel_datagen.dir/benchmark.cc.o" "gcc" "src/datagen/CMakeFiles/kdsel_datagen.dir/benchmark.cc.o.d"
  "/root/repo/src/datagen/families.cc" "src/datagen/CMakeFiles/kdsel_datagen.dir/families.cc.o" "gcc" "src/datagen/CMakeFiles/kdsel_datagen.dir/families.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/kdsel_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kdsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
