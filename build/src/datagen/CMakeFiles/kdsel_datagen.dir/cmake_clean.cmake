file(REMOVE_RECURSE
  "CMakeFiles/kdsel_datagen.dir/anomaly_injector.cc.o"
  "CMakeFiles/kdsel_datagen.dir/anomaly_injector.cc.o.d"
  "CMakeFiles/kdsel_datagen.dir/benchmark.cc.o"
  "CMakeFiles/kdsel_datagen.dir/benchmark.cc.o.d"
  "CMakeFiles/kdsel_datagen.dir/families.cc.o"
  "CMakeFiles/kdsel_datagen.dir/families.cc.o.d"
  "libkdsel_datagen.a"
  "libkdsel_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
