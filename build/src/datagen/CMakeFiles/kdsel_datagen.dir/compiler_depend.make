# Empty compiler generated dependencies file for kdsel_datagen.
# This may be replaced when dependencies are built.
