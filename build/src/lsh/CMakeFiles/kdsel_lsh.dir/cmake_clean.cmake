file(REMOVE_RECURSE
  "CMakeFiles/kdsel_lsh.dir/simhash.cc.o"
  "CMakeFiles/kdsel_lsh.dir/simhash.cc.o.d"
  "libkdsel_lsh.a"
  "libkdsel_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
