# Empty dependencies file for kdsel_lsh.
# This may be replaced when dependencies are built.
