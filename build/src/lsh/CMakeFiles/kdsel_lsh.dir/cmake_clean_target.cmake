file(REMOVE_RECURSE
  "libkdsel_lsh.a"
)
