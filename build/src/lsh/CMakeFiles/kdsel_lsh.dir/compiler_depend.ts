# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kdsel_lsh.
