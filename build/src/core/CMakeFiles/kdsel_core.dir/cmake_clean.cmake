file(REMOVE_RECURSE
  "CMakeFiles/kdsel_core.dir/mki.cc.o"
  "CMakeFiles/kdsel_core.dir/mki.cc.o.d"
  "CMakeFiles/kdsel_core.dir/pipeline.cc.o"
  "CMakeFiles/kdsel_core.dir/pipeline.cc.o.d"
  "CMakeFiles/kdsel_core.dir/pruning.cc.o"
  "CMakeFiles/kdsel_core.dir/pruning.cc.o.d"
  "CMakeFiles/kdsel_core.dir/selection.cc.o"
  "CMakeFiles/kdsel_core.dir/selection.cc.o.d"
  "CMakeFiles/kdsel_core.dir/soft_label.cc.o"
  "CMakeFiles/kdsel_core.dir/soft_label.cc.o.d"
  "CMakeFiles/kdsel_core.dir/trainer.cc.o"
  "CMakeFiles/kdsel_core.dir/trainer.cc.o.d"
  "libkdsel_core.a"
  "libkdsel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
