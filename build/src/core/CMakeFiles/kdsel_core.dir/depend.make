# Empty dependencies file for kdsel_core.
# This may be replaced when dependencies are built.
