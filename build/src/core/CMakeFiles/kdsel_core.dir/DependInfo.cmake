
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/mki.cc" "src/core/CMakeFiles/kdsel_core.dir/mki.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/mki.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/kdsel_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/kdsel_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/kdsel_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/selection.cc.o.d"
  "/root/repo/src/core/soft_label.cc" "src/core/CMakeFiles/kdsel_core.dir/soft_label.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/soft_label.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/kdsel_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/kdsel_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/selectors/CMakeFiles/kdsel_selectors.dir/DependInfo.cmake"
  "/root/repo/build/src/tsad/CMakeFiles/kdsel_tsad.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kdsel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/kdsel_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/kdsel_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/kdsel_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/kdsel_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kdsel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kdsel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/kdsel_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
