file(REMOVE_RECURSE
  "libkdsel_core.a"
)
