file(REMOVE_RECURSE
  "CMakeFiles/kdsel_ts.dir/dataset.cc.o"
  "CMakeFiles/kdsel_ts.dir/dataset.cc.o.d"
  "CMakeFiles/kdsel_ts.dir/time_series.cc.o"
  "CMakeFiles/kdsel_ts.dir/time_series.cc.o.d"
  "CMakeFiles/kdsel_ts.dir/window.cc.o"
  "CMakeFiles/kdsel_ts.dir/window.cc.o.d"
  "libkdsel_ts.a"
  "libkdsel_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
