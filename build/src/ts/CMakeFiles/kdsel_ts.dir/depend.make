# Empty dependencies file for kdsel_ts.
# This may be replaced when dependencies are built.
