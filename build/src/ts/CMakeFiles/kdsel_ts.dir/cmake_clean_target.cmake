file(REMOVE_RECURSE
  "libkdsel_ts.a"
)
