# Empty compiler generated dependencies file for kdsel_common.
# This may be replaced when dependencies are built.
