file(REMOVE_RECURSE
  "libkdsel_common.a"
)
