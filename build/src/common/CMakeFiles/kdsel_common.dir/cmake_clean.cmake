file(REMOVE_RECURSE
  "CMakeFiles/kdsel_common.dir/csv.cc.o"
  "CMakeFiles/kdsel_common.dir/csv.cc.o.d"
  "CMakeFiles/kdsel_common.dir/rng.cc.o"
  "CMakeFiles/kdsel_common.dir/rng.cc.o.d"
  "CMakeFiles/kdsel_common.dir/status.cc.o"
  "CMakeFiles/kdsel_common.dir/status.cc.o.d"
  "CMakeFiles/kdsel_common.dir/stringutil.cc.o"
  "CMakeFiles/kdsel_common.dir/stringutil.cc.o.d"
  "libkdsel_common.a"
  "libkdsel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
