file(REMOVE_RECURSE
  "libkdsel_exp.a"
)
