# Empty dependencies file for kdsel_exp.
# This may be replaced when dependencies are built.
