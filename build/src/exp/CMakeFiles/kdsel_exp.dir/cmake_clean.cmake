file(REMOVE_RECURSE
  "CMakeFiles/kdsel_exp.dir/env.cc.o"
  "CMakeFiles/kdsel_exp.dir/env.cc.o.d"
  "CMakeFiles/kdsel_exp.dir/tables.cc.o"
  "CMakeFiles/kdsel_exp.dir/tables.cc.o.d"
  "libkdsel_exp.a"
  "libkdsel_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
