file(REMOVE_RECURSE
  "libkdsel_text.a"
)
