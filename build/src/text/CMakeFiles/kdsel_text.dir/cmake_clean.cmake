file(REMOVE_RECURSE
  "CMakeFiles/kdsel_text.dir/text_encoder.cc.o"
  "CMakeFiles/kdsel_text.dir/text_encoder.cc.o.d"
  "libkdsel_text.a"
  "libkdsel_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
