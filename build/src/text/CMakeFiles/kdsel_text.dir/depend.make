# Empty dependencies file for kdsel_text.
# This may be replaced when dependencies are built.
