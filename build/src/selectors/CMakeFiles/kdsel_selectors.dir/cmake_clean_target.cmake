file(REMOVE_RECURSE
  "libkdsel_selectors.a"
)
