# Empty compiler generated dependencies file for kdsel_selectors.
# This may be replaced when dependencies are built.
