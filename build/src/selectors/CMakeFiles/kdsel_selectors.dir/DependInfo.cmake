
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selectors/backbone.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/backbone.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/backbone.cc.o.d"
  "/root/repo/src/selectors/classical.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/classical.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/classical.cc.o.d"
  "/root/repo/src/selectors/decision_tree.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/decision_tree.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/decision_tree.cc.o.d"
  "/root/repo/src/selectors/dtw.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/dtw.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/dtw.cc.o.d"
  "/root/repo/src/selectors/more_classical.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/more_classical.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/more_classical.cc.o.d"
  "/root/repo/src/selectors/rocket.cc" "src/selectors/CMakeFiles/kdsel_selectors.dir/rocket.cc.o" "gcc" "src/selectors/CMakeFiles/kdsel_selectors.dir/rocket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/kdsel_features.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kdsel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kdsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
