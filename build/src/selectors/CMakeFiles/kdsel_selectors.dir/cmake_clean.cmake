file(REMOVE_RECURSE
  "CMakeFiles/kdsel_selectors.dir/backbone.cc.o"
  "CMakeFiles/kdsel_selectors.dir/backbone.cc.o.d"
  "CMakeFiles/kdsel_selectors.dir/classical.cc.o"
  "CMakeFiles/kdsel_selectors.dir/classical.cc.o.d"
  "CMakeFiles/kdsel_selectors.dir/decision_tree.cc.o"
  "CMakeFiles/kdsel_selectors.dir/decision_tree.cc.o.d"
  "CMakeFiles/kdsel_selectors.dir/dtw.cc.o"
  "CMakeFiles/kdsel_selectors.dir/dtw.cc.o.d"
  "CMakeFiles/kdsel_selectors.dir/more_classical.cc.o"
  "CMakeFiles/kdsel_selectors.dir/more_classical.cc.o.d"
  "CMakeFiles/kdsel_selectors.dir/rocket.cc.o"
  "CMakeFiles/kdsel_selectors.dir/rocket.cc.o.d"
  "libkdsel_selectors.a"
  "libkdsel_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
