file(REMOVE_RECURSE
  "CMakeFiles/kdsel_nn.dir/attention.cc.o"
  "CMakeFiles/kdsel_nn.dir/attention.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/conv.cc.o"
  "CMakeFiles/kdsel_nn.dir/conv.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/layers.cc.o"
  "CMakeFiles/kdsel_nn.dir/layers.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/loss.cc.o"
  "CMakeFiles/kdsel_nn.dir/loss.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/module.cc.o"
  "CMakeFiles/kdsel_nn.dir/module.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/optimizer.cc.o"
  "CMakeFiles/kdsel_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/serialize.cc.o"
  "CMakeFiles/kdsel_nn.dir/serialize.cc.o.d"
  "CMakeFiles/kdsel_nn.dir/tensor.cc.o"
  "CMakeFiles/kdsel_nn.dir/tensor.cc.o.d"
  "libkdsel_nn.a"
  "libkdsel_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
