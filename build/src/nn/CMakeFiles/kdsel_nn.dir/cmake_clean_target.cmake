file(REMOVE_RECURSE
  "libkdsel_nn.a"
)
