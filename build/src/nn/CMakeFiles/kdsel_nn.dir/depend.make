# Empty dependencies file for kdsel_nn.
# This may be replaced when dependencies are built.
