file(REMOVE_RECURSE
  "CMakeFiles/kdsel_features.dir/features.cc.o"
  "CMakeFiles/kdsel_features.dir/features.cc.o.d"
  "libkdsel_features.a"
  "libkdsel_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
