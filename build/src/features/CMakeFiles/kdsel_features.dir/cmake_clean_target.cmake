file(REMOVE_RECURSE
  "libkdsel_features.a"
)
