# Empty dependencies file for kdsel_features.
# This may be replaced when dependencies are built.
