# Empty dependencies file for selector_management.
# This may be replaced when dependencies are built.
