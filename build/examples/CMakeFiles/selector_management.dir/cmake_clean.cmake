file(REMOVE_RECURSE
  "CMakeFiles/selector_management.dir/selector_management.cpp.o"
  "CMakeFiles/selector_management.dir/selector_management.cpp.o.d"
  "selector_management"
  "selector_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
