file(REMOVE_RECURSE
  "CMakeFiles/benchmark_study.dir/benchmark_study.cpp.o"
  "CMakeFiles/benchmark_study.dir/benchmark_study.cpp.o.d"
  "benchmark_study"
  "benchmark_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
