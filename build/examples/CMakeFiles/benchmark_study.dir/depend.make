# Empty dependencies file for benchmark_study.
# This may be replaced when dependencies are built.
