file(REMOVE_RECURSE
  "CMakeFiles/core_pruning_test.dir/core_pruning_test.cc.o"
  "CMakeFiles/core_pruning_test.dir/core_pruning_test.cc.o.d"
  "core_pruning_test"
  "core_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
