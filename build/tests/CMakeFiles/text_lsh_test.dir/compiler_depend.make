# Empty compiler generated dependencies file for text_lsh_test.
# This may be replaced when dependencies are built.
