file(REMOVE_RECURSE
  "CMakeFiles/text_lsh_test.dir/text_lsh_test.cc.o"
  "CMakeFiles/text_lsh_test.dir/text_lsh_test.cc.o.d"
  "text_lsh_test"
  "text_lsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
