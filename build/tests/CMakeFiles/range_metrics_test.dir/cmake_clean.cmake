file(REMOVE_RECURSE
  "CMakeFiles/range_metrics_test.dir/range_metrics_test.cc.o"
  "CMakeFiles/range_metrics_test.dir/range_metrics_test.cc.o.d"
  "range_metrics_test"
  "range_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
