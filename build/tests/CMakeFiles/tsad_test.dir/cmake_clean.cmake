file(REMOVE_RECURSE
  "CMakeFiles/tsad_test.dir/tsad_test.cc.o"
  "CMakeFiles/tsad_test.dir/tsad_test.cc.o.d"
  "tsad_test"
  "tsad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
