# Empty dependencies file for tsad_test.
# This may be replaced when dependencies are built.
