# Empty compiler generated dependencies file for kdsel.
# This may be replaced when dependencies are built.
