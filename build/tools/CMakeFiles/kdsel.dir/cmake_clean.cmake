file(REMOVE_RECURSE
  "CMakeFiles/kdsel.dir/kdsel_cli.cc.o"
  "CMakeFiles/kdsel.dir/kdsel_cli.cc.o.d"
  "kdsel"
  "kdsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
