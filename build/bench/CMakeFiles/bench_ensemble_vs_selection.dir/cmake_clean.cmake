file(REMOVE_RECURSE
  "CMakeFiles/bench_ensemble_vs_selection.dir/bench_ensemble_vs_selection.cc.o"
  "CMakeFiles/bench_ensemble_vs_selection.dir/bench_ensemble_vs_selection.cc.o.d"
  "bench_ensemble_vs_selection"
  "bench_ensemble_vs_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ensemble_vs_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
