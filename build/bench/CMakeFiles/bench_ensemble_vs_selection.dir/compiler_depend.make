# Empty compiler generated dependencies file for bench_ensemble_vs_selection.
# This may be replaced when dependencies are built.
