file(REMOVE_RECURSE
  "CMakeFiles/bench_selector_zoo.dir/bench_selector_zoo.cc.o"
  "CMakeFiles/bench_selector_zoo.dir/bench_selector_zoo.cc.o.d"
  "bench_selector_zoo"
  "bench_selector_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selector_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
