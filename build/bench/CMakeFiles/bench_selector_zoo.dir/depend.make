# Empty dependencies file for bench_selector_zoo.
# This may be replaced when dependencies are built.
