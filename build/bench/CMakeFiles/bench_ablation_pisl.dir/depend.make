# Empty dependencies file for bench_ablation_pisl.
# This may be replaced when dependencies are built.
