file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pisl.dir/bench_ablation_pisl.cc.o"
  "CMakeFiles/bench_ablation_pisl.dir/bench_ablation_pisl.cc.o.d"
  "bench_ablation_pisl"
  "bench_ablation_pisl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pisl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
