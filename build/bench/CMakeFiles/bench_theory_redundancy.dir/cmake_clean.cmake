file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_redundancy.dir/bench_theory_redundancy.cc.o"
  "CMakeFiles/bench_theory_redundancy.dir/bench_theory_redundancy.cc.o.d"
  "bench_theory_redundancy"
  "bench_theory_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
