# Empty compiler generated dependencies file for bench_theory_redundancy.
# This may be replaced when dependencies are built.
