file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mki.dir/bench_ablation_mki.cc.o"
  "CMakeFiles/bench_ablation_mki.dir/bench_ablation_mki.cc.o.d"
  "bench_ablation_mki"
  "bench_ablation_mki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
