# Empty dependencies file for bench_ablation_mki.
# This may be replaced when dependencies are built.
