# Empty compiler generated dependencies file for bench_ablation_pa.
# This may be replaced when dependencies are built.
