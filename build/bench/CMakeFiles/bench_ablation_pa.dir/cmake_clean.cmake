file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pa.dir/bench_ablation_pa.cc.o"
  "CMakeFiles/bench_ablation_pa.dir/bench_ablation_pa.cc.o.d"
  "bench_ablation_pa"
  "bench_ablation_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
