file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_solutions.dir/bench_fig4_solutions.cc.o"
  "CMakeFiles/bench_fig4_solutions.dir/bench_fig4_solutions.cc.o.d"
  "bench_fig4_solutions"
  "bench_fig4_solutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
