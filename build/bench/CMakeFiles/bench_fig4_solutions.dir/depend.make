# Empty dependencies file for bench_fig4_solutions.
# This may be replaced when dependencies are built.
