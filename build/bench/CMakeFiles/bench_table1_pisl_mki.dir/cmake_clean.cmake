file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pisl_mki.dir/bench_table1_pisl_mki.cc.o"
  "CMakeFiles/bench_table1_pisl_mki.dir/bench_table1_pisl_mki.cc.o.d"
  "bench_table1_pisl_mki"
  "bench_table1_pisl_mki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pisl_mki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
