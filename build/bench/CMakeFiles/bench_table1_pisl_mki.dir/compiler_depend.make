# Empty compiler generated dependencies file for bench_table1_pisl_mki.
# This may be replaced when dependencies are built.
