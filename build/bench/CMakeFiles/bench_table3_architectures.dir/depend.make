# Empty dependencies file for bench_table3_architectures.
# This may be replaced when dependencies are built.
