file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_unbiased.dir/bench_theory_unbiased.cc.o"
  "CMakeFiles/bench_theory_unbiased.dir/bench_theory_unbiased.cc.o.d"
  "bench_theory_unbiased"
  "bench_theory_unbiased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_unbiased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
