# Empty compiler generated dependencies file for bench_theory_unbiased.
# This may be replaced when dependencies are built.
