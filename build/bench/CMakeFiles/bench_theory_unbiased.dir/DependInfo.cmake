
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_theory_unbiased.cc" "bench/CMakeFiles/bench_theory_unbiased.dir/bench_theory_unbiased.cc.o" "gcc" "bench/CMakeFiles/bench_theory_unbiased.dir/bench_theory_unbiased.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/kdsel_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kdsel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/selectors/CMakeFiles/kdsel_selectors.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/kdsel_features.dir/DependInfo.cmake"
  "/root/repo/build/src/tsad/CMakeFiles/kdsel_tsad.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/kdsel_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kdsel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/kdsel_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/kdsel_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/kdsel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/kdsel_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kdsel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
