#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/annotations.h"

namespace kdsel::obs {

namespace detail {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

namespace {

// Per-thread span buffer: fixed capacity, no reallocation after
// registration, drop-newest on overflow. Only the owning thread writes
// `count` and the event slots; drains read `count` with acquire and see
// every slot published before it.
constexpr size_t kBufferCapacity = size_t{1} << 15;  // 32768 spans/thread

struct ThreadBuffer {
  uint32_t tid = 0;
  std::atomic<size_t> count{0};
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;
  // Owned here (not thread-locally) so buffers outlive their threads
  // and a drain can walk them at any time. Bounded by the number of
  // distinct threads that ever recorded a span.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers KDSEL_GUARDED_BY(mu);
  std::atomic<uint64_t> dropped{0};
  std::string env_trace_path;  // Set once by InitTracingFromEnv.
};

// Immortal by design: thread-pool workers may finish spans while static
// destructors run; the state must outlive every thread. Reachable via
// the static pointer, so LeakSanitizer does not flag it.
TraceState& State() {
  static TraceState* state = new TraceState();  // kdsel-lint: allow(naked-new)
  return *state;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer* RegisterThisThread() {
  TraceState& state = State();
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->events.resize(kBufferCapacity);
  ThreadBuffer* raw = buffer.get();
  std::lock_guard<std::mutex> lock(state.mu);
  raw->tid = static_cast<uint32_t>(state.buffers.size());
  state.buffers.push_back(std::move(buffer));
  return raw;
}

void WriteTraceAtExit() {
  StopTracing();
  TraceState& state = State();
  const Status written = WriteChromeTrace(state.env_trace_path);
  if (!written.ok()) {
    std::fprintf(stderr, "[obs] KDSEL_TRACE write failed: %s\n",
                 written.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "[obs] wrote trace to %s (%zu spans, %llu dropped)\n",
               state.env_trace_path.c_str(), CollectTraceEvents().size(),
               static_cast<unsigned long long>(DroppedTraceEvents()));
}

}  // namespace

namespace detail {

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  ThreadBuffer* buffer = t_buffer;
  if (buffer == nullptr) buffer = t_buffer = RegisterThisThread();
  const size_t at = buffer->count.load(std::memory_order_relaxed);
  if (at >= kBufferCapacity) {
    State().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& event = buffer->events[at];
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = end_ns - start_ns;
  event.tid = buffer->tid;
  // Publish the slot before the new count so a concurrent drain never
  // reads a half-written event.
  buffer->count.store(at + 1, std::memory_order_release);
}

}  // namespace detail

void StartTracing() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& buffer : state.buffers) {
    buffer->count.store(0, std::memory_order_relaxed);
  }
  state.dropped.store(0, std::memory_order_relaxed);
  detail::g_tracing_enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  detail::g_tracing_enabled.store(false, std::memory_order_release);
}

std::vector<TraceEvent> CollectTraceEvents() {
  TraceState& state = State();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& buffer : state.buffers) {
    const size_t n =
        std::min(buffer->count.load(std::memory_order_acquire),
                 kBufferCapacity);
    out.insert(out.end(), buffer->events.begin(), buffer->events.begin() + n);
  }
  return out;
}

uint64_t DroppedTraceEvents() {
  return State().dropped.load(std::memory_order_relaxed);
}

Status WriteChromeTrace(const std::string& path) {
  std::vector<TraceEvent> events = CollectTraceEvents();
  // Stable order (and small `ts` values): rebase on the earliest span
  // and sort by start time.
  uint64_t base_ns = ~uint64_t{0};
  for (const TraceEvent& e : events) base_ns = std::min(base_ns, e.start_ns);
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns > b.dur_ns;  // Parents before children.
            });

  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return Status::IoError("cannot open trace file: " + path);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(line, sizeof(line),
                  "%s\n{\"name\":\"%s\",\"cat\":\"kdsel\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<double>(e.start_ns - base_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3);
    out << line;
  }
  out << "\n]}\n";
  out.flush();
  if (!out.good()) {
    return Status::IoError("failed writing trace file: " + path);
  }
  return Status::OK();
}

void InitTracingFromEnv() {
  const char* env = std::getenv("KDSEL_TRACE");
  if (env == nullptr) return;
  if (*env == '\0') {
    std::fprintf(stderr,
                 "[obs] ignoring empty KDSEL_TRACE; expected an output path\n");
    return;
  }
  {
    // Validate the path now, while a warning can still reach a user, not
    // at exit when it is too late to re-run.
    std::ofstream probe(env, std::ios::app);
    if (!probe.good()) {
      std::fprintf(stderr,
                   "[obs] ignoring KDSEL_TRACE=%s (path is not writable); "
                   "tracing disabled\n",
                   env);
      return;
    }
  }
  State().env_trace_path = env;
  StartTracing();
  std::atexit(&WriteTraceAtExit);
}

}  // namespace kdsel::obs
