#ifndef KDSEL_OBS_CLOCK_H_
#define KDSEL_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace kdsel::obs {

/// The one monotonic clock for the whole codebase. Everything outside
/// src/obs/, src/common/ and bench/ must time through this alias (or,
/// better, through spans and histograms) — the `raw-timing` lint rule
/// enforces it — so every duration in logs, metrics and traces is
/// measured on the same timebase.
using Clock = std::chrono::steady_clock;

/// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Monotonic seconds since an arbitrary epoch (for coarse wall timing).
inline double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace kdsel::obs

#endif  // KDSEL_OBS_CLOCK_H_
