#ifndef KDSEL_OBS_FLIGHT_RECORDER_H_
#define KDSEL_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace kdsel::obs {

/// One request as remembered by the flight recorder: trace id, the
/// per-stage latency decomposition and the admission verdict. Fixed-size
/// POD storage (the trace id is an inline char array, not a string) so
/// recording never allocates.
struct FlightRecord {
  static constexpr size_t kTraceBytes = 24;  ///< Incl. NUL; 23 id chars.

  enum class Verdict : uint8_t {
    kOk = 0,        ///< Served; stage timings are populated.
    kError = 1,     ///< Refused with a structured error reply.
    kShed = 2,      ///< Refused by SLO admission control / queue full.
    kOverflow = 3,  ///< Line exceeded the length cap.
  };

  char trace[kTraceBytes] = {};  ///< NUL-terminated, possibly truncated.
  /// Ingress -> worker-dequeue residual not attributed to batch
  /// formation or compute (socket parse, submit and queue wait); the
  /// four stages sum to total_us by construction.
  double queue_us = 0.0;
  double batch_wait_us = 0.0;    ///< Submit -> micro-batch formed.
  double compute_us = 0.0;       ///< Worker dequeue -> response ready.
  double write_us = 0.0;         ///< Response ready -> reply flushed.
  double total_us = 0.0;         ///< Ingress -> reply flushed.
  Verdict verdict = Verdict::kOk;
  bool int8_variant = false;  ///< Served by the int8 selector sibling.
};

const char* FlightVerdictName(FlightRecord::Verdict verdict);

/// Always-on ring of recent request records plus a retained slowest-N
/// set, so a tail-latency outlier observed from outside (bench p999, a
/// client timeout) can be explained after the fact without having had
/// tracing enabled in advance.
///
/// Record() is allocation-free in steady state (both pools are sized at
/// construction) and takes one short critical section -- a struct copy
/// plus, for candidates beating the current slowest-N floor, a scan of
/// the N-element pool. Safe to call from shard and worker threads.
///
/// Retention: the ring keeps the most recent `recent_capacity` records
/// (the tail sample); the slowest pool keeps the `slowest_capacity`
/// largest `total_us` seen since construction, so the worst request of
/// a run survives any amount of later traffic.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t recent_capacity = 256,
                          size_t slowest_capacity = 16);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const FlightRecord& record);

  /// Total records ever seen (not capped by the ring).
  uint64_t recorded() const;

  /// Largest total_us retained in the slowest pool (0 when empty).
  double SlowestTotalUs() const;

  /// Point-in-time dump as JSON text:
  ///   {"recorded":N,
  ///    "recent":[{"trace":..,"verdict":..,"variant":..,stage timings}],
  ///    "slowest":[...]}
  /// `recent` is oldest-to-newest within the retained tail; `slowest`
  /// is descending by total_us. Valid JSON, spliceable into larger
  /// documents (same contract as MetricsRegistry::SnapshotJson).
  std::string DumpJson() const;

  /// Snapshots for tests: the retained tail (oldest first) and the
  /// slowest pool (descending by total_us).
  std::vector<FlightRecord> RecentSnapshot() const;
  std::vector<FlightRecord> SlowestSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<FlightRecord> recent_ KDSEL_GUARDED_BY(mu_);  ///< Ring.
  size_t recent_size_ KDSEL_GUARDED_BY(mu_) = 0;
  size_t next_ KDSEL_GUARDED_BY(mu_) = 0;  ///< Ring write cursor.
  uint64_t recorded_ KDSEL_GUARDED_BY(mu_) = 0;
  std::vector<FlightRecord> slowest_ KDSEL_GUARDED_BY(mu_);  ///< Pool.
  size_t slowest_size_ KDSEL_GUARDED_BY(mu_) = 0;
  size_t slowest_min_ KDSEL_GUARDED_BY(mu_) = 0;  ///< Pool floor index.
};

}  // namespace kdsel::obs

#endif  // KDSEL_OBS_FLIGHT_RECORDER_H_
