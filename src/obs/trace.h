#ifndef KDSEL_OBS_TRACE_H_
#define KDSEL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/clock.h"

namespace kdsel::obs {

/// One completed span. `name` must point at static-storage text (the
/// KDSEL_SPAN macro passes string literals); events store the pointer,
/// never a copy, so recording stays allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  ///< Dense per-thread id, assigned at first record.
};

namespace detail {

extern std::atomic<bool> g_tracing_enabled;

/// Appends a finished span to the calling thread's buffer. Called only
/// from ~TraceSpan when tracing was enabled at span start.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

}  // namespace detail

/// The disabled-path cost of every instrumented site: one relaxed load.
inline bool TracingEnabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Enables span recording, clearing previously collected events and the
/// dropped counter. Call from a quiescent point (no spans in flight):
/// per-thread buffers are rewound in place, so a span racing the rewind
/// could land at a stale slot.
void StartTracing();

/// Disables recording. Collected events stay available for
/// CollectTraceEvents/WriteChromeTrace until the next StartTracing.
void StopTracing();

/// Snapshot of every recorded event across all threads.
std::vector<TraceEvent> CollectTraceEvents();

/// Spans dropped because a thread's buffer filled up since the last
/// StartTracing (drop-newest policy; the buffers never reallocate).
uint64_t DroppedTraceEvents();

/// Writes the collected events to `path` in the chrome://tracing /
/// Perfetto trace-event JSON format ("X" complete events, timestamps in
/// microseconds, rebased to the earliest span).
Status WriteChromeTrace(const std::string& path);

/// KDSEL_TRACE=<path> env hook, strict à la KDSEL_SIMD: unset does
/// nothing; an empty or unwritable path warns on stderr and leaves
/// tracing off; otherwise tracing starts now and the trace is written
/// to <path> at process exit. Call once, early in main().
void InitTracingFromEnv();

/// RAII span. Cheap when tracing is disabled: the constructor is one
/// relaxed load + branch, the destructor one pointer test.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ns_ = NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::RecordSpan(name_, start_ns_, NowNs());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace kdsel::obs

#define KDSEL_OBS_CONCAT_INNER_(a, b) a##b
#define KDSEL_OBS_CONCAT_(a, b) KDSEL_OBS_CONCAT_INNER_(a, b)

// Scoped span covering the rest of the enclosing block. `name` must be
// a string literal (or other static-storage string).
//
// KDSEL_NO_TRACING compiles every span out entirely; trace_overhead_test
// builds its baseline loop this way to bound the disabled-path cost.
#ifdef KDSEL_NO_TRACING
#define KDSEL_SPAN(name) \
  do {                   \
  } while (false)
#else
#define KDSEL_SPAN(name)                 \
  ::kdsel::obs::TraceSpan KDSEL_OBS_CONCAT_(kdsel_obs_span_, __LINE__) { name }
#endif

#endif  // KDSEL_OBS_TRACE_H_
