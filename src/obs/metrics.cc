#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

namespace kdsel::obs {

namespace {

/// fetch_add for atomic<double> (no native RMW before C++20 on all
/// stdlibs; a CAS loop is portable and uncontended enough for stats).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

/// Formats a double as JSON (finite shortest-ish form; non-finite
/// values have no JSON spelling and collapse to 0).
void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

/// Metric names are restricted identifiers, but escape defensively so
/// the snapshot is valid JSON no matter what gets registered.
void AppendQuoted(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// `kdsel.<layer>.<name>` -> `kdsel_<layer>_<name>`: the Prometheus
/// exposition format allows only [a-zA-Z0-9_:] in metric names, and the
/// documented contract maps every other byte to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

Histogram::Histogram() : min_(std::numeric_limits<double>::infinity()) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketIndex(double value) {
  if (value < 1.0) return 0;
  // 4 buckets per octave: index = floor(4 * log2(v)) + 1.
  const double idx = 4.0 * std::log2(value);
  const size_t bucket = static_cast<size_t>(idx) + 1;
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

double Histogram::BucketLowerBound(size_t index) {
  if (index == 0) return 0.0;
  return std::exp2(static_cast<double>(index - 1) / 4.0);
}

void Histogram::Record(double value) {
  if (!(value >= 0.0)) value = 0.0;  // Also catches NaN.
  const uint64_t seq = reset_seq_.load(std::memory_order_seq_cst);
  // Count first, bucket second, both seq_cst: any bucket tick a reader
  // observes has its count tick earlier in the single total order, so
  // Summarize (buckets before count) can never see samples > count.
  count_.fetch_add(1, std::memory_order_seq_cst);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_seq_cst);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  if (reset_seq_.load(std::memory_order_seq_cst) != seq) {
    // A Reset() ran while this sample was being published. Its wipe may
    // have erased the count tick but kept the bucket tick (the wipes of
    // the two locations are not atomic together); re-publishing the
    // count tick restores count >= samples. If the original tick
    // survived, this sample is counted once extra — documented, and
    // harmless for stats.
    count_.fetch_add(1, std::memory_order_seq_cst);
  }
}

Histogram::BucketSnapshot Histogram::Snapshot() const {
  for (;;) {
    const uint64_t seq_before = reset_seq_.load(std::memory_order_seq_cst);
    if (seq_before & 1) continue;  // A wipe is in progress; retry.

    BucketSnapshot snapshot;
    snapshot.samples = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      snapshot.counts[i] = buckets_[i].load(std::memory_order_seq_cst);
      snapshot.samples += snapshot.counts[i];
    }
    // Count is read after every bucket; clamping covers the transient
    // window where a record straddling a reset has published its bucket
    // tick but not yet re-published its wiped count tick.
    snapshot.count =
        std::max(count_.load(std::memory_order_seq_cst), snapshot.samples);
    snapshot.sum = sum_.load(std::memory_order_relaxed);
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
    if (reset_seq_.load(std::memory_order_seq_cst) != seq_before) {
      continue;  // A reset overlapped the snapshot; retry.
    }
    return snapshot;
  }
}

double Histogram::PercentileFrom(const BucketSnapshot& snapshot, double q) {
  if (snapshot.samples == 0) return 0.0;
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(snapshot.samples)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snapshot.counts[i];
    if (seen >= target && snapshot.counts[i] > 0) {
      // Geometric midpoint of the bucket, clamped to observed range.
      const double lo = BucketLowerBound(i);
      const double hi = BucketLowerBound(i + 1);
      const double mid = std::sqrt(std::max(lo, 0.5) * hi);
      return std::min(std::max(mid, snapshot.min), snapshot.max);
    }
  }
  return snapshot.max;
}

Histogram::Summary Histogram::Summarize() const {
  const BucketSnapshot snapshot = Snapshot();
  Summary s;
  s.samples = snapshot.samples;
  s.count = snapshot.count;
  if (snapshot.samples == 0) return s;
  s.min = snapshot.min;
  s.max = snapshot.max;
  s.mean = snapshot.sum / static_cast<double>(snapshot.samples);
  s.p50 = PercentileFrom(snapshot, 0.50);
  s.p95 = PercentileFrom(snapshot, 0.95);
  s.p99 = PercentileFrom(snapshot, 0.99);
  s.p999 = PercentileFrom(snapshot, 0.999);
  return s;
}

double Histogram::Percentile(double q) const {
  return PercentileFrom(Snapshot(), q);
}

uint64_t Histogram::SampleCount() const { return Snapshot().samples; }

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(reset_mu_);
  reset_seq_.fetch_add(1, std::memory_order_seq_cst);  // -> odd: wiping
  count_.store(0, std::memory_order_seq_cst);
  for (auto& b : buckets_) b.store(0, std::memory_order_seq_cst);
  sum_.store(0.0, std::memory_order_seq_cst);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_seq_cst);
  max_.store(0.0, std::memory_order_seq_cst);
  reset_seq_.fetch_add(1, std::memory_order_seq_cst);  // -> even: stable
}

MetricsRegistry& MetricsRegistry::Global() {
  // Immortal by design (see header): worker threads and thread-local
  // cache destructors may still record during static teardown, so the
  // registry must never be destroyed. The one object is reachable
  // through this static pointer, so LeakSanitizer does not flag it.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // kdsel-lint: allow(naked-new)
  return *registry;
}

template <typename T>
T& MetricsRegistry::GetOrCreateLocked(
    std::map<std::string, std::unique_ptr<T>>& slot, const std::string& name)
    KDSEL_REQUIRES(mu_) {
  auto it = slot.find(name);
  if (it == slot.end()) {
    it = slot.emplace(name, std::make_unique<T>()).first;
  }
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(counters_, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(gauges_, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(histograms_, name);
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    out += std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    out += ':';
    AppendNumber(out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(out, name);
    const Histogram::Summary s = histogram->Summarize();
    out += ":{\"count\":" + std::to_string(s.count);
    out += ",\"samples\":" + std::to_string(s.samples);
    out += ",\"min\":";
    AppendNumber(out, s.min);
    out += ",\"max\":";
    AppendNumber(out, s.max);
    out += ",\"mean\":";
    AppendNumber(out, s.mean);
    out += ",\"p50\":";
    AppendNumber(out, s.p50);
    out += ",\"p95\":";
    AppendNumber(out, s.p95);
    out += ",\"p99\":";
    AppendNumber(out, s.p99);
    out += ",\"p999\":";
    AppendNumber(out, s.p999);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto append_number = [&](double value) {
    AppendNumber(out, value);
    out += '\n';
  };
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_number(gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusName(name);
    const Histogram::Summary s = histogram->Summarize();
    out += "# TYPE " + prom + " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}, {"0.999", s.p999}};
    for (const auto& [label, value] : quantiles) {
      out += prom + "{quantile=\"" + label + "\"} ";
      append_number(value);
    }
    out += prom + "_sum ";
    append_number(s.mean * static_cast<double>(s.samples));
    out += prom + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

void MetricsRegistry::ResetValuesForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace kdsel::obs
