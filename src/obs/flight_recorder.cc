#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kdsel::obs {

namespace {

void AppendNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  out += buffer;
}

/// Trace ids are sanitized at the protocol boundary, but escape
/// defensively so the dump stays valid JSON whatever was recorded.
void AppendQuoted(std::string& out, const char* text) {
  out += '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendRecord(std::string& out, const FlightRecord& record) {
  out += "{\"trace\":";
  AppendQuoted(out, record.trace);
  out += ",\"verdict\":\"";
  out += FlightVerdictName(record.verdict);
  out += "\",\"variant\":\"";
  out += record.int8_variant ? "int8" : "fp32";
  out += "\",\"queue_us\":";
  AppendNumber(out, record.queue_us);
  out += ",\"batch_wait_us\":";
  AppendNumber(out, record.batch_wait_us);
  out += ",\"compute_us\":";
  AppendNumber(out, record.compute_us);
  out += ",\"write_us\":";
  AppendNumber(out, record.write_us);
  out += ",\"total_us\":";
  AppendNumber(out, record.total_us);
  out += '}';
}

void AppendRecords(std::string& out, const std::vector<FlightRecord>& records) {
  out += '[';
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ',';
    AppendRecord(out, records[i]);
  }
  out += ']';
}

}  // namespace

const char* FlightVerdictName(FlightRecord::Verdict verdict) {
  switch (verdict) {
    case FlightRecord::Verdict::kOk:
      return "ok";
    case FlightRecord::Verdict::kError:
      return "error";
    case FlightRecord::Verdict::kShed:
      return "shed";
    case FlightRecord::Verdict::kOverflow:
      return "overflow";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t recent_capacity, size_t slowest_capacity)
    : recent_(std::max<size_t>(recent_capacity, 1)),
      slowest_(std::max<size_t>(slowest_capacity, 1)) {}

void FlightRecorder::Record(const FlightRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  recent_[next_] = record;
  next_ = (next_ + 1) % recent_.size();
  recent_size_ = std::min(recent_size_ + 1, recent_.size());

  if (slowest_size_ < slowest_.size()) {
    slowest_[slowest_size_++] = record;
    // Pool just grew; re-derive which entry is the floor.
    slowest_min_ = 0;
    for (size_t i = 1; i < slowest_size_; ++i) {
      if (slowest_[i].total_us < slowest_[slowest_min_].total_us) {
        slowest_min_ = i;
      }
    }
    return;
  }
  if (record.total_us <= slowest_[slowest_min_].total_us) return;
  slowest_[slowest_min_] = record;
  for (size_t i = 0; i < slowest_size_; ++i) {
    if (slowest_[i].total_us < slowest_[slowest_min_].total_us) {
      slowest_min_ = i;
    }
  }
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

double FlightRecorder::SlowestTotalUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  double slowest = 0.0;
  for (size_t i = 0; i < slowest_size_; ++i) {
    slowest = std::max(slowest, slowest_[i].total_us);
  }
  return slowest;
}

std::vector<FlightRecord> FlightRecorder::RecentSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(recent_size_);
  // Oldest retained record sits at the write cursor once the ring wraps.
  const size_t start =
      recent_size_ < recent_.size() ? 0 : next_ % recent_.size();
  for (size_t i = 0; i < recent_size_; ++i) {
    out.push_back(recent_[(start + i) % recent_.size()]);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::SlowestSnapshot() const {
  std::vector<FlightRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(slowest_.begin(),
               slowest_.begin() + static_cast<std::ptrdiff_t>(slowest_size_));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.total_us > b.total_us;
            });
  return out;
}

std::string FlightRecorder::DumpJson() const {
  const std::vector<FlightRecord> recent = RecentSnapshot();
  const std::vector<FlightRecord> slowest = SlowestSnapshot();
  std::string out = "{\"recorded\":";
  out += std::to_string(recorded());
  out += ",\"recent\":";
  AppendRecords(out, recent);
  out += ",\"slowest\":";
  AppendRecords(out, slowest);
  out += '}';
  return out;
}

}  // namespace kdsel::obs
