#ifndef KDSEL_OBS_METRICS_H_
#define KDSEL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/annotations.h"

namespace kdsel::obs {

/// Monotonically increasing event count. All operations are lock-free
/// and allocation-free, so counters are safe on any hot path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread count, keep-rate, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A thread-safe value histogram over geometric buckets (the
/// generalization of the former serve::LatencyHistogram; the serving
/// layer still records microseconds into it, but the buckets are
/// unit-agnostic).
///
/// Record() is wait-free (a few uncontended atomic RMWs per sample plus
/// CAS loops for min/max), so hot paths never contend on a stats lock.
/// Buckets grow by 2^(1/4) per step, bounding the relative quantile
/// error at ~19% — plenty for p50/p95/p99 dashboards.
///
/// Reset() semantics vs concurrent Record()/Summarize():
///   * Reset() bumps a seqlock generation (odd while the wipe is in
///     progress); Summarize() retries until it reads a stable, even
///     generation on both sides of its snapshot, so a summary is never
///     computed from a half-wiped histogram (no mixing of pre- and
///     post-reset buckets).
///   * A Record() that straddles a Reset() publishes its count tick
///     before its bucket tick (both seq_cst) and re-publishes the count
///     tick when it detects a generation change, so the invariant
///     `Summary::count >= Summary::samples` always holds; such a
///     straddling sample may be dropped entirely or counted once extra
///     in `count`, never under-counted. Summarize() additionally clamps
///     `count` up to `samples` to cover the instant between a surviving
///     bucket tick and its in-flight count re-publish.
///   * In quiescence (no reset racing a record) `count == samples`.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative values and NaN clamp to 0.
  void Record(double value);

  struct Summary {
    uint64_t count = 0;    ///< Authoritative sample count (>= samples).
    uint64_t samples = 0;  ///< Population visible in the buckets.
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };

  /// Consistent snapshot: concurrent Record() calls may or may not be
  /// included, but the summary never mixes pre- and post-reset state
  /// (see the class comment for the exact guarantees).
  Summary Summarize() const;

  /// Single-quantile snapshot (q in (0, 1]): the q-quantile of the
  /// current population under the same bucket-midpoint estimate as
  /// Summarize(), with the same never-mixes-resets guarantee. This is
  /// THE percentile implementation for the codebase -- the shedder, the
  /// stage histograms and the serving bench all read quantiles through
  /// it instead of re-deriving their own rank math. Returns 0 when the
  /// histogram is empty.
  double Percentile(double q) const;

  /// Population currently visible in the buckets (the `samples` field
  /// of Summarize(), without computing the quantiles).
  uint64_t SampleCount() const;

  void Reset();

 private:
  // 2^(1/4) growth, 128 buckets: covers [0, ~4.3e9] (in microseconds:
  // ~72 minutes).
  static constexpr size_t kBuckets = 128;

  /// One reset-consistent view of the bucket state (seqlock retry loop
  /// shared by Summarize()/Percentile()/SampleCount()).
  struct BucketSnapshot {
    std::array<uint64_t, kBuckets> counts;
    uint64_t samples = 0;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  BucketSnapshot Snapshot() const;
  static double PercentileFrom(const BucketSnapshot& snapshot, double q);

  static size_t BucketIndex(double value);
  static double BucketLowerBound(size_t index);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_{0.0};
  // Seqlock generation: odd while a Reset() wipe is in progress.
  std::atomic<uint64_t> reset_seq_{0};
  std::mutex reset_mu_;  ///< Serializes concurrent Reset() calls.
};

/// Process-global registry of named metrics.
///
/// Get*() registers on first use and returns a reference with stable
/// address for the process lifetime, so hot paths cache the handle in a
/// function-local static and pay only the atomic update per event.
/// Names follow the `kdsel.<layer>.<name>` convention (see DESIGN.md
/// "Observability").
class MetricsRegistry {
 public:
  /// The process-wide registry. Intentionally immortal: instrumented
  /// code (thread-pool workers, thread-cache destructors) may record
  /// metrics during static teardown, after function-local statics would
  /// already have been destroyed.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Point-in-time snapshot of every registered metric as a JSON text:
  ///   {"counters": {name: N, ...},
  ///    "gauges": {name: X, ...},
  ///    "histograms": {name: {"count":..,"samples":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p95":..,"p99":..,
  ///                          "p999":..}, ..}}
  /// Returned as a string (not serve::Json) so obs stays below serve in
  /// the dependency graph; the text is valid JSON and can be spliced
  /// into larger documents or parsed by serve::Json::Parse.
  std::string SnapshotJson() const;

  /// The same snapshot in the Prometheus text exposition format. Names
  /// translate mechanically from the registry convention to the metric
  /// contract `kdsel_<layer>_<name>` (every byte outside [A-Za-z0-9_]
  /// becomes '_', so `kdsel.net.stage.queue` scrapes as
  /// `kdsel_net_stage_queue`). Counters/gauges render as single
  /// samples; histograms render as summaries with quantile labels
  /// (0.5/0.95/0.99/0.999) plus `_sum`/`_count` series.
  std::string RenderPrometheus() const;

  /// Zeroes every registered counter/gauge/histogram. Handles stay
  /// valid. For tests that need a clean slate.
  void ResetValuesForTesting();

 private:
  template <typename T>
  T& GetOrCreateLocked(std::map<std::string, std::unique_ptr<T>>& slot,
                       const std::string& name) KDSEL_REQUIRES(mu_);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      KDSEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ KDSEL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KDSEL_GUARDED_BY(mu_);
};

}  // namespace kdsel::obs

#endif  // KDSEL_OBS_METRICS_H_
