#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/selection.h"
#include "obs/clock.h"
#include "ts/window.h"

namespace kdsel::serve {

namespace {

double ToUs(obs::Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

InferenceServer::InferenceServer(SelectorRegistry* registry,
                                 ServerOptions options)
    : registry_(registry), options_(options) {}

InferenceServer::~InferenceServer() { Stop(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (registry_ == nullptr) {
    return Status::InvalidArgument("server needs a selector registry");
  }
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.num_workers == 0 || options_.max_batch == 0 ||
      options_.queue_capacity == 0) {
    return Status::InvalidArgument(
        "num_workers, max_batch and queue_capacity must be positive");
  }
  if (options_.max_delay_us < 0) {
    return Status::InvalidArgument("max_delay_us must be >= 0");
  }
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    accepting_ = true;
  }
  batcher_ = std::thread(&InferenceServer::BatcherLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&InferenceServer::WorkerLoop, this);
  }
  return Status::OK();
}

void InferenceServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    accepting_ = false;
  }
  submit_cv_.notify_all();
  batcher_.join();  // Exits only after flushing every accepted request.
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

StatusOr<std::future<StatusOr<SelectResponse>>> InferenceServer::Submit(
    SelectRequest request) {
  // Promise-backed shim over the callback path. The shared_ptr keeps the
  // promise alive inside the copyable std::function.
  auto state = std::make_shared<std::promise<StatusOr<SelectResponse>>>();
  std::future<StatusOr<SelectResponse>> future = state->get_future();
  KDSEL_RETURN_NOT_OK(SubmitAsync(
      std::move(request), [state](StatusOr<SelectResponse> response) {
        state->set_value(std::move(response));
      }));
  return future;
}

Status InferenceServer::SubmitAsync(SelectRequest request, DoneCallback done) {
  if (request.selector.empty()) {
    return Status::InvalidArgument("request names no selector");
  }
  Pending pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending.submit_time = Clock::now();
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    if (!accepting_) {
      return Status::FailedPrecondition("server is not accepting requests");
    }
    if (submit_queue_.size() >= options_.queue_capacity) {
      stats_.RecordRejected();
      return Status::FailedPrecondition(
          "submission queue full (" +
          std::to_string(options_.queue_capacity) + " requests)");
    }
    submit_queue_.push_back(std::move(pending));
  }
  stats_.RecordSubmitted();
  submit_cv_.notify_all();
  return Status::OK();
}

void InferenceServer::SubmitBatch(std::vector<AsyncItem> items) {
  const Clock::time_point now = Clock::now();
  // `done` for inadmissible items runs after the lock drops: callbacks
  // are caller code and must not execute under submit_mu_.
  std::vector<std::pair<DoneCallback, Status>> failed;
  size_t admitted = 0;
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    for (AsyncItem& item : items) {
      Status verdict = Status::OK();
      if (item.request.selector.empty()) {
        verdict = Status::InvalidArgument("request names no selector");
      } else if (!accepting_) {
        verdict = Status::FailedPrecondition("server is not accepting requests");
      } else if (submit_queue_.size() >= options_.queue_capacity) {
        stats_.RecordRejected();
        verdict = Status::FailedPrecondition(
            "submission queue full (" +
            std::to_string(options_.queue_capacity) + " requests)");
      }
      if (!verdict.ok()) {
        failed.emplace_back(std::move(item.done), std::move(verdict));
        continue;
      }
      Pending pending;
      pending.request = std::move(item.request);
      pending.done = std::move(item.done);
      pending.submit_time = now;
      submit_queue_.push_back(std::move(pending));
      ++admitted;
    }
  }
  if (admitted > 0) {
    stats_.RecordSubmitted(admitted);
    submit_cv_.notify_all();
  }
  for (auto& [done, status] : failed) done(status);
}

StatusOr<SelectResponse> InferenceServer::Run(SelectRequest request) {
  KDSEL_ASSIGN_OR_RETURN(auto future, Submit(std::move(request)));
  return future.get();
}

void InferenceServer::PushBatch(Batch batch) {
  // The batch-formed stamp: everything before this is the micro-batch
  // wait (max_delay_us/max_batch), everything until a worker dequeues is
  // time spent waiting for a free worker.
  batch.formed = Clock::now();
  stats_.RecordBatch(batch.items.size());
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_queue_.push_back(std::move(batch));
  }
  batch_cv_.notify_one();
}

void InferenceServer::BatcherLoop() {
  struct Group {
    Batch batch;
    Clock::time_point oldest;
  };
  std::map<std::string, Group> groups;
  const auto max_delay = std::chrono::microseconds(options_.max_delay_us);

  for (;;) {
    bool shutting_down;
    std::deque<Pending> drained;
    {
      std::unique_lock<std::mutex> lock(submit_mu_);
      auto woken = [&] { return !submit_queue_.empty() || !accepting_; };
      if (groups.empty()) {
        submit_cv_.wait(lock, woken);
      } else {
        // Sleep at most until the oldest pending group must flush.
        Clock::time_point deadline = groups.begin()->second.oldest + max_delay;
        for (const auto& [name, group] : groups) {
          deadline = std::min(deadline, group.oldest + max_delay);
        }
        submit_cv_.wait_until(lock, deadline, woken);
      }
      drained.swap(submit_queue_);
      shutting_down = !accepting_;
    }

    for (Pending& pending : drained) {
      const std::string name = pending.request.selector;
      Group& group = groups[name];
      if (group.batch.items.empty()) {
        group.batch.selector = name;
        group.oldest = pending.submit_time;
      }
      group.batch.items.push_back(std::move(pending));
      if (group.batch.items.size() >= options_.max_batch) {
        Batch full = std::move(group.batch);
        groups.erase(name);
        PushBatch(std::move(full));
      }
    }

    const Clock::time_point now = Clock::now();
    for (auto it = groups.begin(); it != groups.end();) {
      if (shutting_down || now - it->second.oldest >= max_delay) {
        PushBatch(std::move(it->second.batch));
        it = groups.erase(it);
      } else {
        ++it;
      }
    }

    if (shutting_down) {
      std::lock_guard<std::mutex> lock(submit_mu_);
      if (submit_queue_.empty() && groups.empty()) break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batcher_done_ = true;
  }
  batch_cv_.notify_all();
}

void InferenceServer::WorkerLoop() {
  // Worker-private state: no locks on the inference hot path. The model
  // set is deterministic given the seed, so every worker detects
  // identically (and identically to the offline pipeline).
  auto models = tsad::BuildDefaultModelSet(options_.detector_seed);
  std::map<std::string, CachedSelector> cache;

  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(batch_mu_);
      batch_cv_.wait(lock,
                     [&] { return !batch_queue_.empty() || batcher_done_; });
      if (batch_queue_.empty()) return;  // batcher_done_ and fully drained.
      batch = std::move(batch_queue_.front());
      batch_queue_.pop_front();
    }
    ProcessBatch(std::move(batch), cache, models);
  }
}

void InferenceServer::FailBatch(Batch& batch, const Status& status) {
  for (Pending& item : batch.items) {
    auto& endpoint = stats_.endpoint(item.request.run_detection
                                         ? ServerStats::Endpoint::kDetect
                                         : ServerStats::Endpoint::kSelect);
    endpoint.failed.fetch_add(1, std::memory_order_relaxed);
    item.done(status);
  }
}

void InferenceServer::ProcessBatch(
    Batch batch, std::map<std::string, CachedSelector>& cache,
    const std::vector<std::unique_ptr<tsad::Detector>>& models) {
  const Clock::time_point dequeue_time = Clock::now();

  auto snapshot = registry_->GetOrLoad(batch.selector);
  if (!snapshot.ok()) {
    FailBatch(batch, snapshot.status());
    return;
  }
  CachedSelector& cached = cache[batch.selector];
  if (cached.selector == nullptr || cached.version != snapshot->version) {
    // Hot-reload happened (or first contact): clone the new snapshot.
    auto clone = snapshot->selector->Clone();
    if (!clone.ok()) {
      FailBatch(batch, clone.status());
      return;
    }
    cached.version = snapshot->version;
    cached.selector = std::move(clone).value();
  }
  const core::TrainedSelector& selector = *cached.selector;
  // Vote over the worker's model-set size, exactly like the offline
  // DetectWithSelection path (the selector picks among these models).
  const size_t num_classes = models.size();

  // Identical protocol to the offline pipeline / `kdsel detect`.
  ts::WindowOptions window_options;
  window_options.length = selector.input_length();
  window_options.stride = window_options.length;

  const Clock::time_point select_begin = Clock::now();
  // Request coalescing: concurrent clients often re-score the same hot
  // series, so identical windows inside one micro-batch go through the
  // forward pass once. `row_of[i]` maps the i-th extracted window to its
  // unique representative.
  std::vector<std::vector<float>> unique_rows;
  std::map<std::vector<float>, size_t> row_index;
  std::vector<size_t> row_of;
  std::vector<size_t> offsets(batch.items.size() + 1, 0);
  std::vector<Status> item_status(batch.items.size(), Status::OK());
  for (size_t i = 0; i < batch.items.size(); ++i) {
    auto windows =
        ts::ExtractWindows(batch.items[i].request.series, i, window_options);
    if (!windows.ok()) {
      item_status[i] = windows.status();
    } else if (windows->empty()) {
      item_status[i] = Status::InvalidArgument("series produced no windows");
    } else {
      for (auto& w : *windows) {
        auto [it, inserted] =
            row_index.try_emplace(std::move(w.values), unique_rows.size());
        if (inserted) unique_rows.push_back(it->first);
        row_of.push_back(it->second);
      }
    }
    offsets[i + 1] = row_of.size();
  }

  // The micro-batched forward pass: one Predict over the distinct
  // windows of every request in the batch. Inference is row-independent
  // (BatchNorm uses running statistics) and deterministic, so the
  // scattered per-request slices are byte-identical to per-request
  // Predict calls.
  std::vector<int> predictions;
  if (!unique_rows.empty()) {
    auto predicted = selector.Predict(unique_rows);
    if (!predicted.ok()) {
      FailBatch(batch, predicted.status());
      return;
    }
    predictions.reserve(row_of.size());
    for (const size_t u : row_of) predictions.push_back((*predicted)[u]);
  }
  const Clock::time_point select_end = Clock::now();
  const double select_us = ToUs(select_end - select_begin);
  stats_.RecordRows(row_of.size(), unique_rows.size());
  stats_.RecordVariantRequests(selector.IsInt8(), batch.items.size());

  for (size_t i = 0; i < batch.items.size(); ++i) {
    Pending& item = batch.items[i];
    const bool detect = item.request.run_detection;
    auto& endpoint = stats_.endpoint(detect ? ServerStats::Endpoint::kDetect
                                            : ServerStats::Endpoint::kSelect);
    if (!item_status[i].ok()) {
      endpoint.failed.fetch_add(1, std::memory_order_relaxed);
      item.done(item_status[i]);
      continue;
    }
    std::vector<int> window_predictions(
        predictions.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
        predictions.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]));
    auto selection = core::VoteSeriesSelection(window_predictions, num_classes);
    if (!selection.ok()) {
      endpoint.failed.fetch_add(1, std::memory_order_relaxed);
      item.done(selection.status());
      continue;
    }

    SelectResponse response;
    response.num_windows = selection->num_windows;
    const Clock::time_point detect_begin = Clock::now();
    if (detect) {
      auto detected =
          core::RunSelectedDetection(*selection, models, item.request.series);
      if (!detected.ok()) {
        endpoint.failed.fetch_add(1, std::memory_order_relaxed);
        item.done(detected.status());
        continue;
      }
      response.result = std::move(detected).value();
    } else {
      response.result.selected_model = selection->model;
      response.result.votes = std::move(selection->votes);
      if (static_cast<size_t>(selection->model) < models.size()) {
        response.result.model_name =
            models[static_cast<size_t>(selection->model)]->name();
      }
    }
    const Clock::time_point done = Clock::now();

    response.timing.queue_us = ToUs(dequeue_time - item.submit_time);
    response.timing.select_us = select_us;
    response.timing.detect_us = detect ? ToUs(done - detect_begin) : 0.0;
    response.timing.total_us = ToUs(done - item.submit_time);
    response.timing.batch_size = batch.items.size();
    response.timing.batch_wait_us = ToUs(batch.formed - item.submit_time);
    response.timing.compute_us = ToUs(done - dequeue_time);
    response.timing.done_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                  done.time_since_epoch())
                                  .count();

    endpoint.queue_wait.Record(response.timing.queue_us);
    endpoint.selection.Record(response.timing.select_us);
    if (detect) endpoint.detection.Record(response.timing.detect_us);
    endpoint.total.Record(response.timing.total_us);
    endpoint.completed.fetch_add(1, std::memory_order_relaxed);
    item.done(std::move(response));
  }
}

}  // namespace kdsel::serve
