#ifndef KDSEL_SERVE_PROTOCOL_H_
#define KDSEL_SERVE_PROTOCOL_H_

#include <iosfwd>
#include <string>

#include "serve/server.h"

namespace kdsel::serve {

/// One parsed line of the newline-delimited JSON wire protocol.
///
/// Requests (one JSON object per line):
///   {"op":"select","id":1,"selector":"mysel","values":[...],
///    "labels":[0,1,...],"detect":true,"scores":false,"name":"s1",
///    "trace":"req-001"}
///   {"op":"list","id":2}            -- resident + on-disk selector names
///   {"op":"reload","id":3,"selector":"mysel"}  -- omit selector: reload all
///   {"op":"stats","id":4}           -- request-level metrics snapshot
///   {"op":"ops","id":5,"view":"snapshot"}  -- live telemetry (see below)
///   {"op":"quit"}                   -- drain and exit (EOF works too)
///
/// Responses echo the request id (and the request's "trace" when one was
/// supplied; over TCP a server-generated trace id is echoed even when
/// the client sent none):
///   {"id":1,"ok":true,"model":"IForest","model_id":4,"votes":[...],
///    "num_windows":8,"auc_pr":0.91,"queue_us":...,"select_us":...,
///    "detect_us":...,"total_us":...,"batch_size":3,"scores":[...],
///    "trace":"req-001"}
///   {"id":1,"ok":false,"error":"NotFound: ...","trace":"req-001"}
///
/// The "ops" op exposes live telemetry; "view" selects the payload:
///   "snapshot" (default) -- stats + metrics + shedder state as JSON
///   "flight"             -- flight-recorder dump (recent + slowest)
///   "prometheus"         -- MetricsRegistry rendered as Prometheus text
struct WireRequest {
  enum class Op { kSelect, kList, kReload, kStats, kOps, kQuit };

  Op op = Op::kSelect;
  int64_t id = -1;
  std::string selector;
  bool detect = true;        ///< Run the selected detector.
  bool want_scores = false;  ///< Include per-point scores in the response.
  std::string trace;         ///< Sanitized client trace id; may be empty.
  std::string view;          ///< "ops" payload selector (validated).
  ts::TimeSeries series;
};

/// Validates a client-supplied trace id: at most 23 characters, every
/// one of them in [A-Za-z0-9._:-]. Returns the id unchanged when it is
/// acceptable and "" otherwise (an unusable id is dropped, not an
/// error: the server falls back to generating one). The charset is what
/// makes raw-splicing a peeked trace into a reply JSON-safe.
std::string SanitizeTraceId(const std::string& raw);

/// Parses one request line. Unknown fields are ignored; unknown ops and
/// malformed JSON are errors.
///
/// When `error_id` is non-null it receives the id to echo in an error
/// reply for this line: the request's "id" whenever the line was at
/// least a JSON object carrying one (e.g. a select with a bad "values"
/// array), -1 when even that much could not be recovered. This keeps a
/// pipelined client able to correlate failures mid-session instead of
/// seeing every malformed line collapse to id -1.
StatusOr<WireRequest> ParseRequestLine(const std::string& line,
                                       int64_t* error_id = nullptr);

/// Response formatting (each returns a complete line WITHOUT the '\n').
/// A non-empty `trace` is echoed as a trailing "trace" field; it must
/// already be sanitized (SanitizeTraceId charset), it is spliced raw.
std::string FormatSelectResponse(int64_t id, const SelectResponse& response,
                                 bool labeled, bool want_scores,
                                 const std::string& trace = "");
std::string FormatErrorResponse(int64_t id, const Status& status,
                                const std::string& trace = "");
std::string FormatOkResponse(int64_t id);

/// Control-op replies shared by the stdin loop and the TCP shards.
std::string FormatListResponse(int64_t id, SelectorRegistry& registry);
std::string FormatStatsResponse(int64_t id, const InferenceServer& server);

/// Transport-owned telemetry spliced into an "ops" reply. Each field is
/// pre-rendered JSON text (or empty when the transport has no such
/// component, e.g. the stdin loop has no shedder or flight recorder, in
/// which case the reply carries `null`). Keeping these as opaque text
/// lets serve stay below net in the dependency graph.
struct OpsExtras {
  std::string shedder_json;  ///< Shedder state object, or "".
  std::string flight_json;   ///< FlightRecorder::DumpJson(), or "".
};

/// Formats one "ops" reply for the given (already validated) view.
std::string FormatOpsResponse(int64_t id, const std::string& view,
                              const InferenceServer& server,
                              const OpsExtras& extras);

/// Runs the NDJSON session: reads requests from `in`, submits "select"
/// ops to `server` (concurrently, responses are written in submission
/// order), and answers control ops inline. Returns when "quit" or EOF
/// is seen and every accepted request has been answered. Does NOT stop
/// the server; the caller owns its lifecycle.
Status RunServeLoop(std::istream& in, std::ostream& out,
                    InferenceServer& server);

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_PROTOCOL_H_
