#ifndef KDSEL_SERVE_REGISTRY_H_
#define KDSEL_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "core/pipeline.h"
#include "core/trainer.h"

namespace kdsel::serve {

/// Keeps named TrainedSelectors resident in memory for serving.
///
/// The registry owns one canonical, immutable instance per name behind a
/// shared_ptr "snapshot". Hot-reload builds the replacement off-lock and
/// swaps the pointer, so in-flight requests holding the old snapshot are
/// never blocked or invalidated; they finish on the version they
/// started with and the next batch picks up the new one.
///
/// Thread-safety contract: the canonical instance is only ever *read*
/// (metadata and parameter tensors). It is never run through a forward
/// pass — Forward caches activations inside the modules, so each server
/// worker clones its snapshot (TrainedSelector::Clone) and predicts on
/// the private clone. Snapshot `version` numbers let workers detect a
/// swap and re-clone lazily.
class SelectorRegistry {
 public:
  /// `manager` names the on-disk selector store used by Load/Reload.
  explicit SelectorRegistry(core::SelectorManager manager);

  struct Snapshot {
    std::shared_ptr<const core::TrainedSelector> selector;
    uint64_t version = 0;
  };

  /// Loads (or reloads) `name` from the manager's directory and swaps it
  /// in. Disk I/O and deserialization happen outside the registry lock.
  Status Load(const std::string& name);

  /// Registers an in-memory selector under `name` (tests, benches, and
  /// deployments that train in-process). Replaces any existing entry.
  Status Register(const std::string& name,
                  std::unique_ptr<core::TrainedSelector> selector);

  /// Current snapshot for `name`; NotFound when not resident.
  StatusOr<Snapshot> Get(const std::string& name) const;

  /// Get, falling back to a disk load when the name is not resident yet.
  StatusOr<Snapshot> GetOrLoad(const std::string& name);

  /// Re-reads every resident selector from disk. Entries registered
  /// purely in memory (no file) are left untouched. Returns the first
  /// error but keeps reloading the rest.
  Status ReloadAll();

  /// Drops `name` from memory (files are untouched). False if absent.
  bool Evict(const std::string& name);

  /// Names currently resident, sorted.
  std::vector<std::string> ResidentNames() const;

  /// Names available in the on-disk store.
  StatusOr<std::vector<std::string>> DiskNames() const { return manager_.List(); }

  const core::SelectorManager& manager() const { return manager_; }

 private:
  Status Swap(const std::string& name,
              std::shared_ptr<const core::TrainedSelector> selector);

  core::SelectorManager manager_;
  mutable std::mutex mu_;
  uint64_t next_version_ KDSEL_GUARDED_BY(mu_) = 1;
  std::map<std::string, Snapshot> selectors_ KDSEL_GUARDED_BY(mu_);
};

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_REGISTRY_H_
