#ifndef KDSEL_SERVE_JSON_H_
#define KDSEL_SERVE_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace kdsel::serve {

/// A minimal JSON document model for the serving wire protocol.
///
/// The serving layer speaks newline-delimited JSON over stdin/stdout and
/// the stats layer exports JSON snapshots; both need only a small,
/// dependency-free subset: objects, arrays, strings, doubles, bools and
/// null. Numbers are stored as double (adequate for ids, flags and
/// float payloads on the wire).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::map<std::string, Json>& members() const { return members_; }

  /// Object access: returns the member or nullptr when absent (or when
  /// this value is not an object).
  const Json* Find(const std::string& key) const;

  /// Typed object lookups with fallbacks, for tolerant request parsing.
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Mutators (only meaningful for the matching type).
  void Append(Json v) { items_.push_back(std::move(v)); }
  void Set(const std::string& key, Json v) { members_[key] = std::move(v); }

  /// Serializes compactly (no insignificant whitespace), suitable for
  /// one-line NDJSON framing.
  std::string Dump() const;

  /// Parses a complete JSON document; trailing non-whitespace is an
  /// error. Depth is bounded to keep hostile inputs from overflowing
  /// the stack.
  static StatusOr<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::map<std::string, Json> members_;
};

/// Appends `text` to `out` as a JSON string literal (quotes + escapes).
void AppendJsonString(std::string& out, const std::string& text);

/// Appends a float array as a compact JSON array literal. Used for
/// anomaly-score payloads where building a Json tree would be wasteful.
void AppendJsonFloatArray(std::string& out, const std::vector<float>& values);

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_JSON_H_
