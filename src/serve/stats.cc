#include "serve/stats.h"

namespace kdsel::serve {

Json LatencyHistogramJson(const LatencyHistogram& histogram) {
  const obs::Histogram::Summary s = histogram.Summarize();
  Json out = Json::Object();
  out.Set("count", Json::Number(static_cast<double>(s.count)));
  out.Set("min_us", Json::Number(s.min));
  out.Set("max_us", Json::Number(s.max));
  out.Set("mean_us", Json::Number(s.mean));
  out.Set("p50_us", Json::Number(s.p50));
  out.Set("p95_us", Json::Number(s.p95));
  out.Set("p99_us", Json::Number(s.p99));
  out.Set("p999_us", Json::Number(s.p999));
  return out;
}

Json EndpointStats::ToJson() const {
  Json out = Json::Object();
  out.Set("completed", Json::Number(static_cast<double>(completed.load())));
  out.Set("failed", Json::Number(static_cast<double>(failed.load())));
  out.Set("queue_wait", LatencyHistogramJson(queue_wait));
  out.Set("selection", LatencyHistogramJson(selection));
  out.Set("detection", LatencyHistogramJson(detection));
  out.Set("total", LatencyHistogramJson(total));
  return out;
}

void ServerStats::RecordBatch(size_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  uint64_t current = max_batch_seen_.load(std::memory_order_relaxed);
  while (size > current && !max_batch_seen_.compare_exchange_weak(
                               current, size, std::memory_order_relaxed)) {
  }
}

uint64_t ServerStats::completed() const {
  uint64_t sum = 0;
  for (const auto& e : endpoints_) sum += e.completed.load();
  return sum;
}

uint64_t ServerStats::failed() const {
  uint64_t sum = 0;
  for (const auto& e : endpoints_) sum += e.failed.load();
  return sum;
}

double ServerStats::MeanBatchSize() const {
  const uint64_t batches = batches_.load();
  if (batches == 0) return 0.0;
  return static_cast<double>(batched_requests_.load()) /
         static_cast<double>(batches);
}

double ServerStats::ShedRate() const {
  const uint64_t shed = shed_.load();
  const uint64_t arrived = shed + submitted_.load();
  if (arrived == 0) return 0.0;
  return static_cast<double>(shed) / static_cast<double>(arrived);
}

Json ServerStats::ToJson() const {
  Json out = Json::Object();
  out.Set("submitted", Json::Number(static_cast<double>(submitted_.load())));
  out.Set("rejected", Json::Number(static_cast<double>(rejected_.load())));
  out.Set("shed", Json::Number(static_cast<double>(shed_.load())));
  out.Set("shed_rate", Json::Number(ShedRate()));
  out.Set("completed", Json::Number(static_cast<double>(completed())));
  out.Set("failed", Json::Number(static_cast<double>(failed())));
  out.Set("reloads", Json::Number(static_cast<double>(reloads_.load())));
  Json batching = Json::Object();
  batching.Set("batches", Json::Number(static_cast<double>(batches_.load())));
  batching.Set("batched_requests",
               Json::Number(static_cast<double>(batched_requests_.load())));
  batching.Set("mean_batch_size", Json::Number(MeanBatchSize()));
  batching.Set("max_batch_size",
               Json::Number(static_cast<double>(max_batch_seen_.load())));
  batching.Set("rows_total",
               Json::Number(static_cast<double>(rows_total_.load())));
  batching.Set("rows_unique",
               Json::Number(static_cast<double>(rows_unique_.load())));
  out.Set("batching", batching);
  Json variants = Json::Object();
  variants.Set("fp32",
               Json::Number(static_cast<double>(fp32_requests_.load())));
  variants.Set("int8",
               Json::Number(static_cast<double>(int8_requests_.load())));
  out.Set("variants", variants);
  Json endpoints = Json::Object();
  endpoints.Set("select", endpoint(Endpoint::kSelect).ToJson());
  endpoints.Set("detect", endpoint(Endpoint::kDetect).ToJson());
  out.Set("endpoints", endpoints);
  return out;
}

}  // namespace kdsel::serve
