#include "serve/stats.h"

#include <cmath>
#include <limits>

namespace kdsel::serve {

namespace {

/// fetch_add for atomic<double> (no native RMW before C++20 on all
/// stdlibs; a CAS loop is portable and uncontended enough for stats).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    : min_us_(std::numeric_limits<double>::infinity()) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double us) {
  if (us < 1.0) return 0;
  // 4 buckets per octave: index = floor(4 * log2(us)) + 1.
  const double idx = 4.0 * std::log2(us);
  const size_t bucket = static_cast<size_t>(idx) + 1;
  return bucket >= kBuckets ? kBuckets - 1 : bucket;
}

double LatencyHistogram::BucketLowerBound(size_t index) {
  if (index == 0) return 0.0;
  return std::exp2(static_cast<double>(index - 1) / 4.0);
}

void LatencyHistogram::Record(double us) {
  if (!(us >= 0.0)) us = 0.0;  // Also catches NaN.
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_us_, us);
  AtomicMin(min_us_, us);
  AtomicMax(max_us_, us);
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Summary s;
  s.count = total;
  if (total == 0) return s;
  s.min_us = min_us_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  s.mean_us = sum_us_.load(std::memory_order_relaxed) /
              static_cast<double>(total);

  auto percentile = [&](double q) {
    const uint64_t target =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target && counts[i] > 0) {
        // Geometric midpoint of the bucket, clamped to observed range.
        const double lo = BucketLowerBound(i);
        const double hi = BucketLowerBound(i + 1);
        const double mid = std::sqrt(std::max(lo, 0.5) * hi);
        return std::min(std::max(mid, s.min_us), s.max_us);
      }
    }
    return s.max_us;
  };
  s.p50_us = percentile(0.50);
  s.p95_us = percentile(0.95);
  s.p99_us = percentile(0.99);
  return s;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0.0, std::memory_order_relaxed);
  min_us_.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  max_us_.store(0.0, std::memory_order_relaxed);
}

Json LatencyHistogram::ToJson() const {
  const Summary s = Summarize();
  Json out = Json::Object();
  out.Set("count", Json::Number(static_cast<double>(s.count)));
  out.Set("min_us", Json::Number(s.min_us));
  out.Set("max_us", Json::Number(s.max_us));
  out.Set("mean_us", Json::Number(s.mean_us));
  out.Set("p50_us", Json::Number(s.p50_us));
  out.Set("p95_us", Json::Number(s.p95_us));
  out.Set("p99_us", Json::Number(s.p99_us));
  return out;
}

Json EndpointStats::ToJson() const {
  Json out = Json::Object();
  out.Set("completed", Json::Number(static_cast<double>(completed.load())));
  out.Set("failed", Json::Number(static_cast<double>(failed.load())));
  out.Set("queue_wait", queue_wait.ToJson());
  out.Set("selection", selection.ToJson());
  out.Set("detection", detection.ToJson());
  out.Set("total", total.ToJson());
  return out;
}

void ServerStats::RecordBatch(size_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
  uint64_t current = max_batch_seen_.load(std::memory_order_relaxed);
  while (size > current && !max_batch_seen_.compare_exchange_weak(
                               current, size, std::memory_order_relaxed)) {
  }
}

uint64_t ServerStats::completed() const {
  uint64_t sum = 0;
  for (const auto& e : endpoints_) sum += e.completed.load();
  return sum;
}

uint64_t ServerStats::failed() const {
  uint64_t sum = 0;
  for (const auto& e : endpoints_) sum += e.failed.load();
  return sum;
}

double ServerStats::MeanBatchSize() const {
  const uint64_t batches = batches_.load();
  if (batches == 0) return 0.0;
  return static_cast<double>(batched_requests_.load()) /
         static_cast<double>(batches);
}

Json ServerStats::ToJson() const {
  Json out = Json::Object();
  out.Set("submitted", Json::Number(static_cast<double>(submitted_.load())));
  out.Set("rejected", Json::Number(static_cast<double>(rejected_.load())));
  out.Set("completed", Json::Number(static_cast<double>(completed())));
  out.Set("failed", Json::Number(static_cast<double>(failed())));
  out.Set("reloads", Json::Number(static_cast<double>(reloads_.load())));
  Json batching = Json::Object();
  batching.Set("batches", Json::Number(static_cast<double>(batches_.load())));
  batching.Set("batched_requests",
               Json::Number(static_cast<double>(batched_requests_.load())));
  batching.Set("mean_batch_size", Json::Number(MeanBatchSize()));
  batching.Set("max_batch_size",
               Json::Number(static_cast<double>(max_batch_seen_.load())));
  batching.Set("rows_total",
               Json::Number(static_cast<double>(rows_total_.load())));
  batching.Set("rows_unique",
               Json::Number(static_cast<double>(rows_unique_.load())));
  out.Set("batching", batching);
  Json endpoints = Json::Object();
  endpoints.Set("select", endpoint(Endpoint::kSelect).ToJson());
  endpoints.Set("detect", endpoint(Endpoint::kDetect).ToJson());
  out.Set("endpoints", endpoints);
  return out;
}

}  // namespace kdsel::serve
