#ifndef KDSEL_SERVE_SERVER_H_
#define KDSEL_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "core/pipeline.h"
#include "obs/clock.h"
#include "serve/registry.h"
#include "serve/stats.h"
#include "ts/time_series.h"
#include "tsad/detector.h"

namespace kdsel::serve {

/// Tuning knobs for the inference server.
struct ServerOptions {
  size_t num_workers = 4;     ///< Worker threads executing batches.
  size_t max_batch = 8;       ///< Flush a pending group at this size.
  int64_t max_delay_us = 1000;  ///< ... or when its oldest request ages out.
  size_t queue_capacity = 1024;  ///< Bounded submission queue (backpressure).
  uint64_t detector_seed = 42;   ///< Seed for each worker's TSAD model set.
};

/// One inference request: select a TSAD model for `series` with the
/// named selector and (optionally) run the selected detector.
struct SelectRequest {
  std::string selector;
  ts::TimeSeries series;
  bool run_detection = true;
};

/// Request-level timing, echoed back so clients and the bench can
/// attribute latency without scraping server logs. The first four
/// fields are the historical wire keys; the stage fields below them
/// feed the net layer's per-stage histograms (kdsel.net.stage.*) and
/// the flight recorder, and stay off the wire.
struct RequestTiming {
  double queue_us = 0.0;   ///< Submit -> worker picked up the batch.
  double select_us = 0.0;  ///< Windowing + (batched) selector forward + vote.
  double detect_us = 0.0;  ///< Selected-detector scoring; 0 if skipped.
  double total_us = 0.0;   ///< Submit -> response completed.
  size_t batch_size = 0;   ///< Number of requests in the serving batch.

  /// Submit -> the batcher flushed this request's micro-batch (the
  /// max_delay_us/max_batch wait); queue_us minus this is the time the
  /// formed batch waited for a free worker.
  double batch_wait_us = 0.0;
  /// Worker dequeue -> response ready (shared forward pass + this
  /// request's vote/detection slice).
  double compute_us = 0.0;
  /// Absolute completion timestamp, monotonic microseconds on the obs
  /// timebase (obs::NowNs()/1000); lets the transport attribute the
  /// remaining completion->reply-flushed time without a clock handoff.
  int64_t done_us = 0;
};

struct SelectResponse {
  core::DetectionResult result;  ///< scores/auc empty when !run_detection.
  size_t num_windows = 0;
  RequestTiming timing;
};

/// A long-lived, concurrent wrapper around the KDSelector pipeline.
///
/// Architecture (see src/serve/README.md):
///
///   Submit() -> bounded submission queue -> batcher thread ->
///   per-selector micro-batches -> batch queue -> worker pool
///
/// The batcher groups concurrent requests addressed to the same selector
/// and flushes a group when it reaches `max_batch` or its oldest request
/// has waited `max_delay_us`. A worker serves a batch by running ONE
/// selector forward pass over the concatenated windows of every request
/// in the batch, then voting and (optionally) detecting per request.
/// Window extraction mirrors the offline protocol (window length =
/// selector input length, stride = length), so responses are
/// byte-identical to core::DetectWithSelection.
///
/// Each worker keeps a private clone of every selector version it serves
/// (forward passes mutate module-internal caches) plus its own TSAD
/// model set, so workers share no mutable state on the hot path.
class InferenceServer {
 public:
  /// The registry must outlive the server.
  InferenceServer(SelectorRegistry* registry, ServerOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the batcher and worker threads. Call once.
  Status Start();

  /// Stops accepting work, drains every accepted request, and joins all
  /// threads. Idempotent and safe to call from multiple threads
  /// concurrently (the destructor calls it too); exactly one caller
  /// performs the shutdown, the rest return immediately.
  void Stop();

  /// Enqueues a request. Fails fast with FailedPrecondition when the
  /// submission queue is full (backpressure) or the server is stopped.
  /// The future resolves when a worker finishes the request.
  StatusOr<std::future<StatusOr<SelectResponse>>> Submit(SelectRequest request);

  /// Completion callback for the async submission path. Invoked exactly
  /// once per request, from a worker thread (or from the submitting
  /// thread when admission fails synchronously). Must not block: the
  /// net layer's callbacks hand the formatted response to an epoll shard
  /// and return.
  using DoneCallback = std::function<void(StatusOr<SelectResponse>)>;

  /// One request of a batched async hand-off.
  struct AsyncItem {
    SelectRequest request;
    DoneCallback done;
  };

  /// Callback flavor of Submit for event-loop callers that cannot park a
  /// thread on a future.
  Status SubmitAsync(SelectRequest request, DoneCallback done);

  /// Batched hand-off: admits every item under ONE submission-queue lock
  /// acquisition (an epoll shard submits everything parsed in one wake
  /// cycle together). Items that cannot be admitted (queue full, server
  /// stopped) have `done` invoked synchronously with the error; the rest
  /// resolve from worker threads. Every `done` is invoked exactly once.
  void SubmitBatch(std::vector<AsyncItem> items);

  /// Convenience: Submit + wait.
  StatusOr<SelectResponse> Run(SelectRequest request);

  ServerStats& stats() { return stats_; }
  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }
  SelectorRegistry& registry() { return *registry_; }

 private:
  using Clock = obs::Clock;

  struct Pending {
    SelectRequest request;
    DoneCallback done;
    Clock::time_point submit_time;
  };

  struct Batch {
    std::string selector;
    std::vector<Pending> items;
    Clock::time_point formed;  ///< Stamped when the batcher flushes it.
  };

  /// A worker's private clone of one registry snapshot.
  struct CachedSelector {
    uint64_t version = 0;
    std::unique_ptr<core::TrainedSelector> selector;
  };

  void BatcherLoop();
  void WorkerLoop();
  void ProcessBatch(Batch batch,
                    std::map<std::string, CachedSelector>& cache,
                    const std::vector<std::unique_ptr<tsad::Detector>>& models);
  void FailBatch(Batch& batch, const Status& status);
  void PushBatch(Batch batch);

  SelectorRegistry* registry_;
  ServerOptions options_;
  ServerStats stats_;

  std::mutex submit_mu_;
  std::condition_variable submit_cv_;
  std::deque<Pending> submit_queue_ KDSEL_GUARDED_BY(submit_mu_);
  bool accepting_ KDSEL_GUARDED_BY(submit_mu_) = false;

  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<Batch> batch_queue_ KDSEL_GUARDED_BY(batch_mu_);
  bool batcher_done_ KDSEL_GUARDED_BY(batch_mu_) = false;

  std::thread batcher_;
  std::vector<std::thread> workers_;

  // Serializes Start/Stop; started_/stopped_ are only touched under it.
  // Without this, a Stop() racing the destructor's Stop() could both
  // pass the started-and-not-stopped check and double-join the threads.
  std::mutex lifecycle_mu_;
  bool started_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ KDSEL_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_SERVER_H_
