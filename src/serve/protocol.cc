#include "serve/protocol.h"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>

#include "common/annotations.h"
#include "obs/metrics.h"
#include "serve/json.h"

namespace kdsel::serve {

namespace {

std::string FormatIntArray(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
  return out;
}

std::string FormatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

bool IsTraceChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
         c == '-';
}

/// Appends `,"trace":"<id>"` when `trace` is non-empty. The id is in
/// the SanitizeTraceId charset by contract, so raw splicing is safe.
void AppendTrace(std::string& out, const std::string& trace) {
  if (trace.empty()) return;
  out += ",\"trace\":\"";
  out += trace;
  out += '"';
}

}  // namespace

std::string SanitizeTraceId(const std::string& raw) {
  if (raw.empty() || raw.size() > 23) return std::string();
  for (char c : raw) {
    if (!IsTraceChar(c)) return std::string();
  }
  return raw;
}

StatusOr<WireRequest> ParseRequestLine(const std::string& line,
                                       int64_t* error_id) {
  if (error_id != nullptr) *error_id = -1;
  KDSEL_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  WireRequest request;
  request.id = static_cast<int64_t>(doc.GetNumber("id", -1));
  // From here on the line is a JSON object: any later validation error
  // can still be attributed to the request the client sent.
  if (error_id != nullptr) *error_id = request.id;

  const std::string op = doc.GetString("op", "select");
  if (op == "select") {
    request.op = WireRequest::Op::kSelect;
  } else if (op == "list") {
    request.op = WireRequest::Op::kList;
  } else if (op == "reload") {
    request.op = WireRequest::Op::kReload;
  } else if (op == "stats") {
    request.op = WireRequest::Op::kStats;
  } else if (op == "ops") {
    request.op = WireRequest::Op::kOps;
  } else if (op == "quit") {
    request.op = WireRequest::Op::kQuit;
  } else {
    return Status::InvalidArgument("unknown op '" + op + "'");
  }

  request.selector = doc.GetString("selector", "");
  request.detect = doc.GetBool("detect", true);
  request.want_scores = doc.GetBool("scores", false);
  // An over-long or out-of-charset trace id is dropped rather than
  // rejected: tracing must never turn a valid request into an error.
  request.trace = SanitizeTraceId(doc.GetString("trace", ""));

  if (request.op == WireRequest::Op::kOps) {
    request.view = doc.GetString("view", "snapshot");
    if (request.view != "snapshot" && request.view != "flight" &&
        request.view != "prometheus") {
      return Status::InvalidArgument(
          "unknown view '" + request.view +
          "' (expected \"snapshot\", \"flight\" or \"prometheus\")");
    }
  }

  if (request.op == WireRequest::Op::kSelect) {
    if (request.selector.empty()) {
      return Status::InvalidArgument("select request needs \"selector\"");
    }
    // A/B variant routing: "int8" rewrites the lookup to the quantized
    // sibling (saved/registered as `<name>.int8`), so both variants stay
    // independently hot-reloadable registry entries.
    const std::string variant = doc.GetString("variant", "fp32");
    if (variant == "int8") {
      request.selector += ".int8";
    } else if (variant != "fp32") {
      return Status::InvalidArgument("unknown variant '" + variant +
                                     "' (expected \"fp32\" or \"int8\")");
    }
    const Json* values = doc.Find("values");
    if (values == nullptr || !values->is_array() || values->items().empty()) {
      return Status::InvalidArgument(
          "select request needs a non-empty \"values\" array");
    }
    std::vector<float> floats;
    floats.reserve(values->items().size());
    for (const Json& v : values->items()) {
      if (!v.is_number()) {
        return Status::InvalidArgument("\"values\" must contain only numbers");
      }
      floats.push_back(static_cast<float>(v.as_number()));
    }
    request.series =
        ts::TimeSeries(doc.GetString("name", "wire"), std::move(floats));

    if (const Json* labels = doc.Find("labels"); labels != nullptr) {
      if (!labels->is_array()) {
        return Status::InvalidArgument("\"labels\" must be an array");
      }
      std::vector<uint8_t> parsed;
      parsed.reserve(labels->items().size());
      for (const Json& l : labels->items()) {
        if (!l.is_number()) {
          return Status::InvalidArgument("\"labels\" must contain 0/1");
        }
        parsed.push_back(l.as_number() != 0.0 ? 1 : 0);
      }
      KDSEL_RETURN_NOT_OK(request.series.SetLabels(std::move(parsed)));
    }
  }
  return request;
}

std::string FormatSelectResponse(int64_t id, const SelectResponse& response,
                                 bool labeled, bool want_scores,
                                 const std::string& trace) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":true";
  out += ",\"model\":";
  AppendJsonString(out, response.result.model_name);
  out += ",\"model_id\":" + std::to_string(response.result.selected_model);
  out += ",\"votes\":" + FormatIntArray(response.result.votes);
  out += ",\"num_windows\":" + std::to_string(response.num_windows);
  if (labeled && !response.result.anomaly_scores.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", response.result.auc_pr);
    out += ",\"auc_pr\":";
    out += buf;
  }
  out += ",\"queue_us\":" + FormatUs(response.timing.queue_us);
  out += ",\"select_us\":" + FormatUs(response.timing.select_us);
  out += ",\"detect_us\":" + FormatUs(response.timing.detect_us);
  out += ",\"total_us\":" + FormatUs(response.timing.total_us);
  out += ",\"batch_size\":" + std::to_string(response.timing.batch_size);
  if (want_scores) {
    out += ",\"scores\":";
    AppendJsonFloatArray(out, response.result.anomaly_scores);
  }
  AppendTrace(out, trace);
  out.push_back('}');
  return out;
}

std::string FormatErrorResponse(int64_t id, const Status& status,
                                const std::string& trace) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":false,\"error\":";
  AppendJsonString(out, status.ToString());
  AppendTrace(out, trace);
  out.push_back('}');
  return out;
}

std::string FormatOkResponse(int64_t id) {
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true}";
}

std::string FormatListResponse(int64_t id, SelectorRegistry& registry) {
  Json names = Json::Array();
  for (const auto& name : registry.ResidentNames()) {
    names.Append(Json::Str(name));
  }
  Json disk = Json::Array();
  if (auto on_disk = registry.DiskNames(); on_disk.ok()) {
    for (const auto& name : *on_disk) disk.Append(Json::Str(name));
  }
  Json reply = Json::Object();
  reply.Set("id", Json::Number(static_cast<double>(id)));
  reply.Set("ok", Json::Bool(true));
  reply.Set("resident", names);
  reply.Set("on_disk", disk);
  return reply.Dump();
}

std::string FormatStatsResponse(int64_t id, const InferenceServer& server) {
  // SnapshotJson() is already valid JSON text, spliced verbatim.
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"stats\":" +
         server.stats().ToJsonString() + ",\"metrics\":" +
         obs::MetricsRegistry::Global().SnapshotJson() + "}";
}

std::string FormatOpsResponse(int64_t id, const std::string& view,
                              const InferenceServer& server,
                              const OpsExtras& extras) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"ok\":true";
  if (view == "flight") {
    out += ",\"flight\":";
    out += extras.flight_json.empty() ? "null" : extras.flight_json;
  } else if (view == "prometheus") {
    out += ",\"prometheus\":";
    AppendJsonString(out, obs::MetricsRegistry::Global().RenderPrometheus());
  } else {  // "snapshot"
    out += ",\"stats\":" + server.stats().ToJsonString();
    out += ",\"metrics\":" + obs::MetricsRegistry::Global().SnapshotJson();
    out += ",\"shedder\":";
    out += extras.shedder_json.empty() ? "null" : extras.shedder_json;
  }
  out.push_back('}');
  return out;
}

namespace {

struct PrintItem {
  int64_t id = -1;
  bool labeled = false;
  bool want_scores = false;
  bool stats = false;
  bool ops = false;
  std::string view;   ///< "ops" payload selector.
  std::string trace;  ///< Echoed on select/error replies when non-empty.
  std::optional<std::string> ready;
  std::future<StatusOr<SelectResponse>> future;
};

/// Responses are printed by one thread, in submission order, so the
/// reader keeps submitting while earlier requests are still in flight
/// (the server processes them concurrently). One instance lives on
/// RunServeLoop's stack; the printer thread joins before it dies.
struct PrintQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PrintItem> pending KDSEL_GUARDED_BY(mu);
  bool done KDSEL_GUARDED_BY(mu) = false;
};

}  // namespace

Status RunServeLoop(std::istream& in, std::ostream& out,
                    InferenceServer& server) {
  PrintQueue q;

  std::thread printer([&] {
    for (;;) {
      PrintItem item;
      {
        std::unique_lock<std::mutex> lock(q.mu);
        q.cv.wait(lock, [&] { return !q.pending.empty() || q.done; });
        if (q.pending.empty()) return;
        item = std::move(q.pending.front());
        q.pending.pop_front();
      }
      std::string line;
      if (item.stats) {
        // Formatted at print time, after every earlier reply has been
        // resolved, so the snapshot covers all previously answered
        // requests in the session.
        line = FormatStatsResponse(item.id, server);
      } else if (item.ops) {
        // Same print-time semantics as stats. The stdin transport has
        // no shedder or flight recorder; those fields render as null.
        line = FormatOpsResponse(item.id, item.view, server, OpsExtras{});
      } else if (item.ready.has_value()) {
        line = *item.ready;
      } else {
        StatusOr<SelectResponse> response = item.future.get();
        line = response.ok()
                   ? FormatSelectResponse(item.id, *response, item.labeled,
                                          item.want_scores, item.trace)
                   : FormatErrorResponse(item.id, response.status(),
                                         item.trace);
      }
      out << line << '\n' << std::flush;
    }
  });

  auto enqueue = [&](PrintItem item) {
    {
      std::lock_guard<std::mutex> lock(q.mu);
      q.pending.push_back(std::move(item));
    }
    q.cv.notify_one();
  };
  auto enqueue_ready = [&](std::string line) {
    PrintItem item;
    item.ready = std::move(line);
    enqueue(std::move(item));
  };

  SelectorRegistry& registry = server.registry();
  std::string line;
  bool quit = false;
  while (!quit && std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // A malformed line answers with a structured error (echoing the
    // request id whenever one was recoverable) and the session keeps
    // going; only "quit"/EOF end the loop.
    int64_t error_id = -1;
    auto parsed = ParseRequestLine(line, &error_id);
    if (!parsed.ok()) {
      enqueue_ready(FormatErrorResponse(error_id, parsed.status()));
      continue;
    }
    WireRequest& request = *parsed;
    switch (request.op) {
      case WireRequest::Op::kQuit:
        quit = true;
        break;
      case WireRequest::Op::kList:
        enqueue_ready(FormatListResponse(request.id, registry));
        break;
      case WireRequest::Op::kReload: {
        Status status = request.selector.empty()
                            ? registry.ReloadAll()
                            : registry.Load(request.selector);
        if (status.ok()) server.stats().RecordReload();
        enqueue_ready(status.ok()
                          ? FormatOkResponse(request.id)
                          : FormatErrorResponse(request.id, status));
        break;
      }
      case WireRequest::Op::kStats: {
        PrintItem item;
        item.id = request.id;
        item.stats = true;
        enqueue(std::move(item));
        break;
      }
      case WireRequest::Op::kOps: {
        PrintItem item;
        item.id = request.id;
        item.ops = true;
        item.view = request.view;
        enqueue(std::move(item));
        break;
      }
      case WireRequest::Op::kSelect: {
        PrintItem item;
        item.id = request.id;
        item.labeled = request.series.has_labels();
        item.want_scores = request.want_scores;
        item.trace = request.trace;
        SelectRequest submit;
        submit.selector = request.selector;
        submit.series = std::move(request.series);
        submit.run_detection = request.detect;
        auto future = server.Submit(std::move(submit));
        if (!future.ok()) {
          enqueue_ready(FormatErrorResponse(request.id, future.status(),
                                            request.trace));
          break;
        }
        item.future = std::move(future).value();
        enqueue(std::move(item));
        break;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.done = true;
  }
  q.cv.notify_all();
  printer.join();
  return Status::OK();
}

}  // namespace kdsel::serve
