#ifndef KDSEL_SERVE_STATS_H_
#define KDSEL_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "serve/json.h"

namespace kdsel::serve {

/// The serving layer's latency histograms are the general-purpose
/// obs::Histogram (which started life here as serve::LatencyHistogram
/// and was promoted to src/obs/ when the rest of the codebase grew
/// metrics). Samples are microseconds; the wire format in stats
/// responses keeps its historical `*_us` key names (see
/// LatencyHistogramJson).
using LatencyHistogram = obs::Histogram;

/// Renders a histogram of microsecond samples with the serving wire
/// keys: {"count":..,"min_us":..,"max_us":..,"mean_us":..,"p50_us":..,
/// "p95_us":..,"p99_us":..,"p999_us":..}.
Json LatencyHistogramJson(const LatencyHistogram& histogram);

/// Counters and latency histograms for one logical endpoint ("select"
/// for selection-only requests, "detect" for selection+detection).
struct EndpointStats {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  LatencyHistogram queue_wait;  ///< Submit -> batch dequeue by a worker.
  LatencyHistogram selection;   ///< Windowing + batched selector forward.
  LatencyHistogram detection;   ///< Selected-detector scoring (+metric).
  LatencyHistogram total;       ///< Submit -> response ready.

  Json ToJson() const;
};

/// Request-level metrics for the whole inference server. All mutators
/// are thread-safe; ToJson/ToJsonString take a point-in-time snapshot.
class ServerStats {
 public:
  enum class Endpoint { kSelect = 0, kDetect = 1 };
  static constexpr size_t kNumEndpoints = 2;

  void RecordSubmitted(uint64_t n = 1) {
    submitted_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordReload() { reloads_.fetch_add(1, std::memory_order_relaxed); }

  /// Records one request refused by SLO-aware admission control (the
  /// net-layer shedder) before it reached the submission queue. Distinct
  /// from `rejected`, which counts queue-full backpressure failures.
  void RecordShed() { shed_.fetch_add(1, std::memory_order_relaxed); }

  /// Records one flushed batch of `size` requests.
  void RecordBatch(size_t size);

  /// Records window-row coalescing for one served batch: `total` rows
  /// extracted, `unique` rows actually run through the forward pass.
  void RecordRows(size_t total, size_t unique) {
    rows_total_.fetch_add(total, std::memory_order_relaxed);
    rows_unique_.fetch_add(unique, std::memory_order_relaxed);
  }

  /// Records `n` requests served by the fp32 or int8 selector variant
  /// (A/B routing attribution; see "variants" in the stats reply).
  void RecordVariantRequests(bool int8, uint64_t n) {
    (int8 ? int8_requests_ : fp32_requests_)
        .fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t fp32_requests() const { return fp32_requests_.load(); }
  uint64_t int8_requests() const { return int8_requests_.load(); }

  EndpointStats& endpoint(Endpoint e) {
    return endpoints_[static_cast<size_t>(e)];
  }
  const EndpointStats& endpoint(Endpoint e) const {
    return endpoints_[static_cast<size_t>(e)];
  }

  uint64_t submitted() const { return submitted_.load(); }
  uint64_t rejected() const { return rejected_.load(); }
  uint64_t shed() const { return shed_.load(); }
  uint64_t completed() const;
  uint64_t failed() const;
  uint64_t batches() const { return batches_.load(); }
  uint64_t rows_total() const { return rows_total_.load(); }
  uint64_t rows_unique() const { return rows_unique_.load(); }

  /// Mean number of requests per flushed batch (0 when no batches yet).
  double MeanBatchSize() const;

  /// Fraction of arrived requests refused by admission control:
  /// shed / (shed + submitted), 0 when nothing has arrived. Rejected
  /// (queue-full) requests were submitted first, so they are already in
  /// the denominator.
  double ShedRate() const;

  Json ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> max_batch_seen_{0};
  std::atomic<uint64_t> rows_total_{0};
  std::atomic<uint64_t> rows_unique_{0};
  std::atomic<uint64_t> fp32_requests_{0};
  std::atomic<uint64_t> int8_requests_{0};
  std::array<EndpointStats, kNumEndpoints> endpoints_;
};

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_STATS_H_
