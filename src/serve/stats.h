#ifndef KDSEL_SERVE_STATS_H_
#define KDSEL_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/json.h"

namespace kdsel::serve {

/// A thread-safe latency histogram over geometric buckets.
///
/// Record() is wait-free (one relaxed fetch_add per sample plus a few
/// CAS loops for min/max), so the serving hot path never contends on a
/// stats lock. Buckets grow by 2^(1/4) per step, bounding the relative
/// quantile error at ~19% — plenty for p50/p95/p99 dashboards.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one sample, in microseconds. Negative values clamp to 0.
  void Record(double us);

  struct Summary {
    uint64_t count = 0;
    double min_us = 0.0;
    double max_us = 0.0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };

  /// Consistent-enough snapshot: concurrent Record() calls may or may
  /// not be included, but the summary never mixes torn per-bucket state.
  Summary Summarize() const;

  void Reset();

  /// {"count":..,"min_us":..,"max_us":..,"mean_us":..,"p50_us":..,...}
  Json ToJson() const;

 private:
  // 2^(1/4) growth, 128 buckets: covers [0, ~4.3e9] us (~72 minutes).
  static constexpr size_t kBuckets = 128;

  static size_t BucketIndex(double us);
  static double BucketLowerBound(size_t index);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_us_{0.0};
  std::atomic<double> min_us_;
  std::atomic<double> max_us_{0.0};
};

/// Counters and latency histograms for one logical endpoint ("select"
/// for selection-only requests, "detect" for selection+detection).
struct EndpointStats {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  LatencyHistogram queue_wait;  ///< Submit -> batch dequeue by a worker.
  LatencyHistogram selection;   ///< Windowing + batched selector forward.
  LatencyHistogram detection;   ///< Selected-detector scoring (+metric).
  LatencyHistogram total;       ///< Submit -> response ready.

  Json ToJson() const;
};

/// Request-level metrics for the whole inference server. All mutators
/// are thread-safe; ToJson/ToJsonString take a point-in-time snapshot.
class ServerStats {
 public:
  enum class Endpoint { kSelect = 0, kDetect = 1 };
  static constexpr size_t kNumEndpoints = 2;

  void RecordSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordReload() { reloads_.fetch_add(1, std::memory_order_relaxed); }

  /// Records one flushed batch of `size` requests.
  void RecordBatch(size_t size);

  /// Records window-row coalescing for one served batch: `total` rows
  /// extracted, `unique` rows actually run through the forward pass.
  void RecordRows(size_t total, size_t unique) {
    rows_total_.fetch_add(total, std::memory_order_relaxed);
    rows_unique_.fetch_add(unique, std::memory_order_relaxed);
  }

  EndpointStats& endpoint(Endpoint e) {
    return endpoints_[static_cast<size_t>(e)];
  }
  const EndpointStats& endpoint(Endpoint e) const {
    return endpoints_[static_cast<size_t>(e)];
  }

  uint64_t submitted() const { return submitted_.load(); }
  uint64_t rejected() const { return rejected_.load(); }
  uint64_t completed() const;
  uint64_t failed() const;
  uint64_t batches() const { return batches_.load(); }
  uint64_t rows_total() const { return rows_total_.load(); }
  uint64_t rows_unique() const { return rows_unique_.load(); }

  /// Mean number of requests per flushed batch (0 when no batches yet).
  double MeanBatchSize() const;

  Json ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }

 private:
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<uint64_t> max_batch_seen_{0};
  std::atomic<uint64_t> rows_total_{0};
  std::atomic<uint64_t> rows_unique_{0};
  std::array<EndpointStats, kNumEndpoints> endpoints_;
};

}  // namespace kdsel::serve

#endif  // KDSEL_SERVE_STATS_H_
