#include "serve/registry.h"

#include <algorithm>
#include <utility>

namespace kdsel::serve {

SelectorRegistry::SelectorRegistry(core::SelectorManager manager)
    : manager_(std::move(manager)) {}

Status SelectorRegistry::Swap(
    const std::string& name,
    std::shared_ptr<const core::TrainedSelector> selector) {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot& entry = selectors_[name];
  entry.selector = std::move(selector);
  entry.version = next_version_++;
  return Status::OK();
}

Status SelectorRegistry::Load(const std::string& name) {
  // Deserialize outside the lock: a slow disk must not stall Get().
  KDSEL_ASSIGN_OR_RETURN(auto loaded, manager_.Load(name));
  return Swap(name, std::shared_ptr<const core::TrainedSelector>(
                        std::move(loaded)));
}

Status SelectorRegistry::Register(
    const std::string& name, std::unique_ptr<core::TrainedSelector> selector) {
  if (name.empty()) return Status::InvalidArgument("empty selector name");
  if (selector == nullptr) {
    return Status::InvalidArgument("cannot register a null selector");
  }
  return Swap(name, std::shared_ptr<const core::TrainedSelector>(
                        std::move(selector)));
}

StatusOr<SelectorRegistry::Snapshot> SelectorRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = selectors_.find(name);
  if (it == selectors_.end()) {
    return Status::NotFound("selector not resident: " + name);
  }
  return it->second;
}

StatusOr<SelectorRegistry::Snapshot> SelectorRegistry::GetOrLoad(
    const std::string& name) {
  auto snapshot = Get(name);
  if (snapshot.ok()) return snapshot;
  KDSEL_RETURN_NOT_OK(Load(name));
  return Get(name);
}

Status SelectorRegistry::ReloadAll() {
  Status first_error = Status::OK();
  for (const std::string& name : ResidentNames()) {
    Status s = Load(name);
    // In-memory-only selectors have no file; leave them as they are.
    if (!s.ok() && s.code() != StatusCode::kIoError &&
        s.code() != StatusCode::kNotFound && first_error.ok()) {
      first_error = s;
    }
  }
  return first_error;
}

bool SelectorRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return selectors_.erase(name) > 0;
}

std::vector<std::string> SelectorRegistry::ResidentNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(selectors_.size());
    for (const auto& [name, snapshot] : selectors_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kdsel::serve
