#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stringutil.h"

namespace kdsel::serve {

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a raw character range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    SkipWhitespace();
    KDSEL_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        KDSEL_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json::Str(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    Consume('{');
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      KDSEL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      KDSEL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<Json> ParseArray(int depth) {
    Consume('[');
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      KDSEL_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are
          // passed through as two 3-byte sequences, fine for metadata).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  StatusOr<Json> ParseNumber() {
    const size_t begin = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos_;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("invalid value");
    const std::string token = text_.substr(begin, pos_ - begin);
    auto v = ParseDouble(token);
    if (!v.ok()) return Error("invalid number '" + token + "'");
    return Json::Number(*v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf; emit null.
    out += "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

std::string Json::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendJsonString(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        out += item.Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        AppendJsonString(out, key);
        out.push_back(':');
        out += value.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

void AppendJsonString(std::string& out, const std::string& text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendJsonFloatArray(std::string& out, const std::vector<float>& values) {
  out.push_back('[');
  char buf[40];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    if (std::isfinite(values[i])) {
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(values[i]));
      out += buf;
    } else {
      out += "null";
    }
  }
  out.push_back(']');
}

}  // namespace kdsel::serve
