#include "common/cpu.h"

namespace kdsel {

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports caches the CPUID result after the first call.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace kdsel
