#ifndef KDSEL_COMMON_ANNOTATIONS_H_
#define KDSEL_COMMON_ANNOTATIONS_H_

// Static-analysis annotations checked by tools/kdsel_lint.
//
// The macros are deliberately free of runtime cost: under GCC they
// expand to nothing (or a plain optimization hint), and kdsel_lint
// parses them out of the token stream to drive its whole-program rules:
//
//   KDSEL_GUARDED_BY(m)   on a member/global declaration: every access
//                         must happen with mutex `m` held (guarded-by
//                         rule). `m` is a member of the same class or a
//                         global declared in the same file.
//   KDSEL_REQUIRES(m)     on a function: callers must hold `m`; inside
//                         the function `m` is assumed held. Use for
//                         *Locked() helpers instead of re-locking.
//   KDSEL_HOT             on a function definition: marks a steady-state
//                         entry point. The alloc-in-hot-path rule walks
//                         the call graph from every KDSEL_HOT root and
//                         flags reachable allocating constructs.
//   KDSEL_ALLOC_OK(why)   on a function definition: trusted allocation
//                         boundary; the hot-path walk does not descend
//                         into it. The `why` string is mandatory and
//                         should name the runtime test or invariant
//                         that justifies the trust (e.g. a pooled
//                         allocator verified by a counting-allocator
//                         test, or a provably rare path).
//
// When compiled with clang and -DKDSEL_CLANG_TSA, GUARDED_BY/REQUIRES
// additionally expand to clang's thread-safety attributes so
// -Wthread-safety cross-checks the same annotations.

#if defined(KDSEL_CLANG_TSA) && defined(__clang__)
#define KDSEL_GUARDED_BY(m) __attribute__((guarded_by(m)))
#define KDSEL_REQUIRES(m) __attribute__((exclusive_locks_required(m)))
#else
#define KDSEL_GUARDED_BY(m)
#define KDSEL_REQUIRES(m)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define KDSEL_HOT __attribute__((hot))
#else
#define KDSEL_HOT
#endif

#define KDSEL_ALLOC_OK(why)

#endif  // KDSEL_COMMON_ANNOTATIONS_H_
