#ifndef KDSEL_COMMON_RNG_H_
#define KDSEL_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace kdsel {

/// Deterministic random number generator used everywhere in the library.
///
/// Every stochastic component (data generation, weight init, pruning,
/// detectors with randomness) takes an explicit seed so whole experiments
/// are reproducible bit-for-bit. Wraps std::mt19937_64 with the handful of
/// draw shapes the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    KDSEL_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    KDSEL_DCHECK(n > 0);
    return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    KDSEL_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double Normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal draw with given mean/stddev.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Derives an independent child RNG; used to give each sub-component its
  /// own stream so adding draws in one place does not perturb another.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kdsel

#endif  // KDSEL_COMMON_RNG_H_
