#ifndef KDSEL_COMMON_STRINGUTIL_H_
#define KDSEL_COMMON_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kdsel {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace kdsel

#endif  // KDSEL_COMMON_STRINGUTIL_H_
