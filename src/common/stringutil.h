#ifndef KDSEL_COMMON_STRINGUTIL_H_
#define KDSEL_COMMON_STRINGUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kdsel {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict base-10 unsigned parse: the whole string must be digits, with
/// no sign, whitespace, or overflow. This is the one sanctioned integer
/// parser outside tests — std::stoul throws, atoi silently wraps, and
/// both have bitten metadata/flag parsing before (kdsel-lint rule
/// `raw-parse` points callers here).
StatusOr<uint64_t> ParseUint64(std::string_view s);

/// ParseUint64 narrowed to size_t; kOutOfRange if it does not fit.
StatusOr<size_t> ParseSize(std::string_view s);

/// Strict float parse: the whole string must form one finite number
/// (strtod grammar, locale-independent for the inputs we write). The
/// strto*-with-nullptr-end idiom this replaces silently read garbage
/// as 0.0 — corrupt CSV cells must surface as a Status instead.
StatusOr<double> ParseDouble(std::string_view s);

/// ParseDouble narrowed to float; kOutOfRange when the value does not
/// fit in a finite float.
StatusOr<float> ParseFloat(std::string_view s);

}  // namespace kdsel

#endif  // KDSEL_COMMON_STRINGUTIL_H_
