#ifndef KDSEL_COMMON_PARALLEL_H_
#define KDSEL_COMMON_PARALLEL_H_

/// Shared thread-pool subsystem. Every hot loop in the repo (NN kernels,
/// the detector performance matrix, feature/text batch encoding, SimHash
/// signatures) funnels through ParallelFor() below instead of spawning
/// threads per call. The kdsel_lint `raw-thread` rule enforces this:
/// `std::thread`/`std::async` may only appear under src/common/ and
/// src/serve/ (the serving layer owns long-lived worker threads with a
/// different lifecycle).
///
/// Determinism contract: the chunk partition handed to `fn` depends ONLY
/// on (n, grain) — never on the worker count or scheduling — and the
/// serial fallback executes the exact same per-chunk calls. Work that
/// writes disjoint slots is therefore bitwise-identical at any
/// KDSEL_THREADS setting; reductions stay deterministic by accumulating
/// into per-chunk scratch and reducing serially in ascending chunk order
/// (see Conv1d::Backward for the pattern).

#include <cstddef>
#include <memory>
#include <type_traits>

namespace kdsel {

/// Non-owning reference to a `void(size_t begin, size_t end)` callable —
/// two words, no heap. For()/ParallelFor() block until every chunk has
/// run, so borrowing the caller's callable is safe, and replacing
/// std::function here keeps large-capture lambdas (the norm in the
/// tensor kernels) from heap-allocating on every hot-loop dispatch;
/// steady-state training must perform zero allocations (train_alloc_test).
class ChunkCallback {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ChunkCallback>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  ChunkCallback(F&& f)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, size_t begin, size_t end) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(begin, end);
        }) {}

  void operator()(size_t begin, size_t end) const {
    invoke_(obj_, begin, end);
  }

 private:
  void* obj_;
  void (*invoke_)(void*, size_t, size_t);
};

/// A fixed pool of N-1 worker threads; the calling thread participates
/// in every For() as the Nth executor. Construction spawns the workers,
/// destruction drains queued jobs and joins. Most code should use the
/// free functions below, which share one process-global pool.
class ThreadPool {
 public:
  /// `threads` is the total degree of parallelism (workers + caller);
  /// values < 1 are clamped to 1 (no worker threads, fully inline).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total degree of parallelism (worker threads + calling thread).
  size_t threads() const { return threads_; }

  /// Invokes fn(begin, end) over the static chunk partition of [0, n)
  /// with chunks of size `grain` (last chunk may be short). Blocks until
  /// every chunk finished. If any fn invocation throws, the first
  /// exception (in completion order) is rethrown on the caller after all
  /// in-flight chunks drain; chunks not yet started are skipped.
  ///
  /// Nested calls — For() from inside a running chunk — execute their
  /// chunks inline on the current thread, in ascending order, so nesting
  /// can never deadlock and stays deterministic.
  void For(size_t n, size_t grain, ChunkCallback fn);

  /// The process-global pool, created on first use with ThreadsFromEnv().
  static ThreadPool& Global();

  /// Test hook: tears down the global pool and rebuilds it with
  /// `threads` executors (0 = re-read KDSEL_THREADS / hardware). Must not
  /// race with concurrent Global()/ParallelFor use; tests call it only
  /// from a quiescent main thread.
  static void ResetGlobalForTesting(size_t threads);

  /// Degree of parallelism requested by the environment: KDSEL_THREADS
  /// parsed with the strict kdsel::ParseSize (invalid values warn on
  /// stderr and fall back), 0/unset = std::thread::hardware_concurrency.
  static size_t ThreadsFromEnv();

 private:
  struct Job;
  void WorkerLoop();
  static void RunChunks(Job& job);

  size_t threads_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Number of chunks ParallelFor uses for (n, grain): ceil(n / max(grain,1)).
size_t ParallelChunkCount(size_t n, size_t grain);

/// Degree of parallelism of the global pool.
size_t ParallelThreads();

/// ThreadPool::Global().For(n, grain, fn).
void ParallelFor(size_t n, size_t grain, ChunkCallback fn);

}  // namespace kdsel

#endif  // KDSEL_COMMON_PARALLEL_H_
