#ifndef KDSEL_COMMON_CSV_H_
#define KDSEL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kdsel {

/// A parsed CSV file: optional header row plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads a comma-separated file. When `has_header` is true the first
/// non-empty line populates `header`. No quoting support — the library
/// only reads files it wrote itself or simple numeric exports.
StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header);

/// Writes `table` to `path`, overwriting any existing file.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace kdsel

#endif  // KDSEL_COMMON_CSV_H_
