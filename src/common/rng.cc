#include "common/rng.h"

#include <numeric>

namespace kdsel {

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  KDSEL_CHECK(k <= n);
  // Partial Fisher-Yates: only the first k positions are settled.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace kdsel
