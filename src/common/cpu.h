#ifndef KDSEL_COMMON_CPU_H_
#define KDSEL_COMMON_CPU_H_

namespace kdsel {

/// True when the CPU this process runs on supports AVX2 and FMA
/// (queried once via CPUID; always false on non-x86 builds). Used by
/// nn::kernels::Dispatch() to pick the widest safe kernel variant.
bool CpuSupportsAvx2Fma();

}  // namespace kdsel

#endif  // KDSEL_COMMON_CPU_H_
