#ifndef KDSEL_COMMON_CHECK_H_
#define KDSEL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace kdsel::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "KDSEL_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace kdsel::internal

/// Invariant check that is active in all build types. Use for programmer
/// errors (index math, shape mismatches) that indicate bugs rather than
/// bad user input; user input errors return Status instead.
#define KDSEL_CHECK(cond)                                        \
  do {                                                           \
    if (!(cond)) {                                               \
      ::kdsel::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                            \
  } while (0)

/// Debug-only check for hot loops.
#ifndef NDEBUG
#define KDSEL_DCHECK(cond) KDSEL_CHECK(cond)
#else
#define KDSEL_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // KDSEL_COMMON_CHECK_H_
