#include "common/stringutil.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace kdsel {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

StatusOr<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in integer: '" +
                                     std::string(s) + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("integer overflow: '" + std::string(s) + "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

StatusOr<size_t> ParseSize(std::string_view s) {
  KDSEL_ASSIGN_OR_RETURN(const uint64_t value, ParseUint64(s));
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (value > static_cast<uint64_t>(SIZE_MAX)) {
      return Status::OutOfRange("integer too large for size_t: '" +
                                std::string(s) + "'");
    }
  }
  return static_cast<size_t>(value);
}

StatusOr<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  const std::string text(s);  // strtod needs NUL termination.
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("trailing junk in number: '" + text + "'");
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    return Status::OutOfRange("number out of range: '" + text + "'");
  }
  return value;
}

StatusOr<float> ParseFloat(std::string_view s) {
  KDSEL_ASSIGN_OR_RETURN(const double value, ParseDouble(s));
  const float narrowed = static_cast<float>(value);
  if (!std::isfinite(narrowed)) {
    return Status::OutOfRange("number does not fit in float: '" +
                              std::string(s) + "'");
  }
  return narrowed;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace kdsel
