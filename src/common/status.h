#ifndef KDSEL_COMMON_STATUS_H_
#define KDSEL_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kdsel {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: library code never throws; fallible
/// operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations that return no value.
///
/// Status is cheap to copy in the success case (no allocation) and carries
/// a code plus message otherwise. Use the factory functions
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
///
/// The class-level [[nodiscard]] makes every function returning Status
/// by value warn (and, under -Werror, fail the build) when the caller
/// drops the result; silently ignored errors were the most common bug
/// class before this was enforced.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error result. Holds either a T (when `ok()`) or an error
/// Status. Accessing the value of a non-OK StatusOr aborts, so callers
/// must check `ok()` first (or use ASSIGN_OR_* style macros below).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}
  /// Constructs from a non-OK status. Aborts if `status.ok()`.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) std::abort();  // OK status must carry a value.
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& value() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& value() && {
    if (!ok()) std::abort();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

}  // namespace kdsel

/// Propagates a non-OK Status from an expression, Arrow-style.
#define KDSEL_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::kdsel::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates `rexpr` (a StatusOr<T>), propagating the error or moving the
/// value into `lhs`.
#define KDSEL_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto KDSEL_CONCAT_(_statusor_, __LINE__) = (rexpr); \
  if (!KDSEL_CONCAT_(_statusor_, __LINE__).ok())      \
    return KDSEL_CONCAT_(_statusor_, __LINE__).status(); \
  lhs = std::move(KDSEL_CONCAT_(_statusor_, __LINE__)).value()

#define KDSEL_CONCAT_IMPL_(a, b) a##b
#define KDSEL_CONCAT_(a, b) KDSEL_CONCAT_IMPL_(a, b)

#endif  // KDSEL_COMMON_STATUS_H_
