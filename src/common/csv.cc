#include "common/csv.h"

#include <fstream>

#include "common/stringutil.h"

namespace kdsel {

StatusOr<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  CsvTable table;
  std::string line;
  bool header_pending = has_header;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto cells = Split(line, ',');
    if (header_pending) {
      table.header = std::move(cells);
      header_pending = false;
    } else {
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  if (!table.header.empty()) out << Join(table.header, ",") << "\n";
  for (const auto& row : table.rows) out << Join(row, ",") << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace kdsel
