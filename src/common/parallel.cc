#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/stringutil.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kdsel {

namespace {

// Set while the current thread executes chunks of any job (worker or
// participating caller); nested For() calls see it and run inline.
thread_local bool t_in_parallel_region = false;

// Handles into the immortal registry, resolved once; a struct of
// references has a trivial destructor, so recording stays safe even
// from worker threads during static teardown.
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& inline_jobs;
  obs::Counter& chunks;
  obs::Histogram& job_us;
  obs::Gauge& threads;
};

PoolMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static PoolMetrics metrics{
      registry.GetCounter("kdsel.parallel.jobs"),
      registry.GetCounter("kdsel.parallel.inline_jobs"),
      registry.GetCounter("kdsel.parallel.chunks"),
      registry.GetHistogram("kdsel.parallel.job_us"),
      registry.GetGauge("kdsel.parallel.threads"),
  };
  return metrics;
}

// KDSEL_THREADS values above this are almost certainly typos; clamp and
// warn rather than trying to spawn thousands of workers.
constexpr size_t kMaxThreads = 256;

}  // namespace

/// One For() invocation: a shared chunk counter workers and the caller
/// race on, plus completion bookkeeping for the caller's wait.
struct ThreadPool::Job {
  const ChunkCallback* fn = nullptr;
  size_t n = 0;
  size_t grain = 1;
  size_t chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error KDSEL_GUARDED_BY(mu);  // First failure wins.
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable wake;
  // Jobs with chunks left to hand out.
  std::deque<std::shared_ptr<Job>> queue KDSEL_GUARDED_BY(mu);
  std::vector<std::thread> workers;
  bool stop KDSEL_GUARDED_BY(mu) = false;
};

size_t ThreadPool::ThreadsFromEnv() {
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  const char* env = std::getenv("KDSEL_THREADS");
  if (env == nullptr || *env == '\0') return hardware;
  auto parsed = ParseSize(env);
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "[parallel] ignoring invalid KDSEL_THREADS=%s (%s); using "
                 "%zu threads\n",
                 env, parsed.status().message().c_str(), hardware);
    return hardware;
  }
  if (*parsed == 0) return hardware;
  if (*parsed > kMaxThreads) {
    std::fprintf(stderr,
                 "[parallel] clamping KDSEL_THREADS=%zu to %zu\n", *parsed,
                 kMaxThreads);
    return kMaxThreads;
  }
  return *parsed;
}

ThreadPool::ThreadPool(size_t threads)
    : threads_(std::max<size_t>(1, threads)),
      impl_(std::make_unique<Impl>()) {
  impl_->workers.reserve(threads_ - 1);
  for (size_t i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { WorkerLoop(); });
  }
  Metrics().threads.Set(static_cast<double>(threads_));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

size_t ParallelChunkCount(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    const size_t chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunks) return;
    if (!job.failed.load(std::memory_order_relaxed)) {
      const size_t begin = chunk * job.grain;
      const size_t end = std::min(job.n, begin + job.grain);
      try {
        KDSEL_SPAN("parallel.chunk");
        (*job.fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.mu);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunks) {
      // Lock so the notify cannot slip between the waiter's predicate
      // check and its wait().
      std::lock_guard<std::mutex> lock(job.mu);
      job.done_cv.notify_all();
    }
  }
}

KDSEL_ALLOC_OK(
    "one Job control block per dispatch, amortized across all chunks of "
    "the parallel region; the per-chunk worker path is allocation-free")
void ThreadPool::For(size_t n, size_t grain, ChunkCallback fn) {
  if (n == 0) return;
  if (grain < 1) grain = 1;
  const size_t chunks = ParallelChunkCount(n, grain);

  // Inline path: nested call, single-threaded pool, or a single chunk.
  // Runs the identical chunk partition in ascending order so results
  // match the parallel path bitwise.
  if (t_in_parallel_region || impl_->workers.empty() || chunks == 1) {
    PoolMetrics& metrics = Metrics();
    metrics.inline_jobs.Increment();
    metrics.chunks.Increment(chunks);
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      const size_t begin = chunk * grain;
      const size_t end = std::min(n, begin + grain);
      try {
        // No span here: inline chunks are covered by the caller's own
        // span, and emitting one per chunk floods the trace buffers on
        // small workloads. "parallel.chunk" marks pooled execution only.
        fn(begin, end);
      } catch (...) {
        t_in_parallel_region = was_in_region;
        throw;
      }
    }
    t_in_parallel_region = was_in_region;
    return;
  }

  PoolMetrics& metrics = Metrics();
  metrics.jobs.Increment();
  metrics.chunks.Increment(chunks);
  const uint64_t job_begin_ns = obs::NowNs();

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->chunks = chunks;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(job);
  }
  impl_->wake.notify_all();

  // The caller is the Nth executor.
  t_in_parallel_region = true;
  RunChunks(*job);
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->done_chunks.load(std::memory_order_acquire) == job->chunks;
    });
    if (job->error) std::rethrow_exception(job->error);
  }
  metrics.job_us.Record(static_cast<double>(obs::NowNs() - job_begin_ns) /
                        1e3);
}

void ThreadPool::WorkerLoop() {
  t_in_parallel_region = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->wake.wait(lock,
                       [&] { return impl_->stop || !impl_->queue.empty(); });
      // Drop exhausted jobs (all chunks handed out; remaining work is
      // in flight on other threads and completion is signalled per-job).
      while (!impl_->queue.empty() &&
             impl_->queue.front()->next_chunk.load(
                 std::memory_order_relaxed) >= impl_->queue.front()->chunks) {
        impl_->queue.pop_front();
      }
      if (impl_->queue.empty()) {
        if (impl_->stop) return;
        continue;
      }
      job = impl_->queue.front();
    }
    RunChunks(*job);
  }
}

namespace {

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool KDSEL_GUARDED_BY(g_global_pool_mu);

ThreadPool& GlobalPoolLocked() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(ThreadPool::ThreadsFromEnv());
  }
  return *g_global_pool;
}

}  // namespace

ThreadPool& ThreadPool::Global() { return GlobalPoolLocked(); }

void ThreadPool::ResetGlobalForTesting(size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  g_global_pool.reset();
  g_global_pool = std::make_unique<ThreadPool>(
      threads == 0 ? ThreadsFromEnv() : threads);
}

size_t ParallelThreads() { return ThreadPool::Global().threads(); }

void ParallelFor(size_t n, size_t grain, ChunkCallback fn) {
  ThreadPool::Global().For(n, grain, fn);
}

}  // namespace kdsel
