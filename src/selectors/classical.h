#ifndef KDSEL_SELECTORS_CLASSICAL_H_
#define KDSEL_SELECTORS_CLASSICAL_H_

#include <memory>
#include <vector>

#include "features/features.h"
#include "selectors/decision_tree.h"
#include "selectors/selector.h"

namespace kdsel::selectors {

/// K-nearest-neighbours on TSFresh-style features (paper baseline "KNN").
class KnnSelector : public Selector {
 public:
  struct Options {
    size_t k = 5;
  };

  explicit KnnSelector(const Options& options) : options_(options) {}

  std::string name() const override { return "KNN"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  features::FeatureScaler scaler_;
  std::vector<std::vector<float>> train_features_;
  std::vector<int> train_labels_;
  size_t num_classes_ = 0;
};

/// Linear support-vector classifier, one-vs-rest hinge loss via SGD on
/// TSFresh-style features (paper baseline "SVC").
class SvcSelector : public Selector {
 public:
  struct Options {
    size_t epochs = 40;
    double learning_rate = 0.05;
    double reg = 1e-4;
    uint64_t seed = 37;
  };

  explicit SvcSelector(const Options& options) : options_(options) {}

  std::string name() const override { return "SVC"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  features::FeatureScaler scaler_;
  std::vector<std::vector<double>> weights_;  ///< [C][D+1] (bias last).
  size_t num_classes_ = 0;
};

/// SAMME AdaBoost over depth-2 decision trees on TSFresh-style features
/// (paper baseline "AdaBoost").
class AdaBoostSelector : public Selector {
 public:
  struct Options {
    size_t rounds = 40;
    size_t stump_depth = 2;
    uint64_t seed = 41;
  };

  explicit AdaBoostSelector(const Options& options) : options_(options) {}

  std::string name() const override { return "AdaBoost"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  features::FeatureScaler scaler_;
  std::vector<DecisionTree> learners_;
  std::vector<double> alphas_;
  size_t num_classes_ = 0;
};

/// Random forest on TSFresh-style features (paper baseline
/// "RandomForest"): bootstrap-sampled Gini trees with sqrt-feature
/// subsampling, majority vote.
class RandomForestSelector : public Selector {
 public:
  struct Options {
    size_t num_trees = 40;
    size_t max_depth = 12;
    uint64_t seed = 43;
  };

  explicit RandomForestSelector(const Options& options) : options_(options) {}

  std::string name() const override { return "RandomForest"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  features::FeatureScaler scaler_;
  std::vector<DecisionTree> trees_;
  size_t num_classes_ = 0;
};

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_CLASSICAL_H_
