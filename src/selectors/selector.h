#ifndef KDSEL_SELECTORS_SELECTOR_H_
#define KDSEL_SELECTORS_SELECTOR_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kdsel::selectors {

/// Window-level training set for a selector: fixed-length subsequences
/// and the index of the best TSAD model for each (the hard label y_i).
struct TrainingData {
  std::vector<std::vector<float>> windows;  ///< [N][L], z-normalized.
  std::vector<int> labels;                  ///< [N], in [0, num_classes).
  size_t num_classes = 0;

  size_t size() const { return windows.size(); }
};

/// Interface shared by all selectors (TSC models f in the paper).
///
/// A selector classifies a window into one of `num_classes` TSAD-model
/// ids. Series-level selection (majority voting over a series' windows)
/// is layered on top by `core::SelectSeriesModel`.
class Selector {
 public:
  virtual ~Selector() = default;

  Selector() = default;
  Selector(const Selector&) = delete;
  Selector& operator=(const Selector&) = delete;

  virtual std::string name() const = 0;

  /// Trains on window-level data. Called once.
  virtual Status Fit(const TrainingData& data) = 0;

  /// Predicts a model id per window.
  virtual StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const = 0;
};

/// Checks invariant conditions common to all Fit implementations.
Status ValidateTrainingData(const TrainingData& data);

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_SELECTOR_H_
