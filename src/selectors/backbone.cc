#include "selectors/backbone.h"

namespace kdsel::selectors {

namespace {

/// Reshapes window batches [B, L] to conv input [B, 1, L].
class ToConvInput : public nn::Module {
 public:
  nn::Tensor Forward(const nn::Tensor& input, bool /*training*/) override {
    KDSEL_CHECK(input.rank() == 2);
    return input.Reshaped({input.dim(0), 1, input.dim(1)});
  }
  nn::Tensor Backward(const nn::Tensor& grad_output) override {
    KDSEL_CHECK(grad_output.rank() == 3 && grad_output.dim(1) == 1);
    return grad_output.Reshaped({grad_output.dim(0), grad_output.dim(2)});
  }
};

/// Concatenates [B, C_i, L] tensors along the channel axis.
nn::Tensor ConcatChannels(const std::vector<const nn::Tensor*>& parts) {
  KDSEL_CHECK(!parts.empty());
  const size_t B = parts[0]->dim(0), L = parts[0]->dim(2);
  size_t total_c = 0;
  for (const nn::Tensor* p : parts) {
    KDSEL_CHECK(p->rank() == 3 && p->dim(0) == B && p->dim(2) == L);
    total_c += p->dim(1);
  }
  nn::Tensor out({B, total_c, L});
  for (size_t b = 0; b < B; ++b) {
    size_t c_off = 0;
    for (const nn::Tensor* p : parts) {
      const size_t c = p->dim(1);
      std::copy(p->raw() + b * c * L, p->raw() + (b + 1) * c * L,
                out.raw() + (b * total_c + c_off) * L);
      c_off += c;
    }
  }
  return out;
}

/// Splits the channel axis back into parts of the given channel counts.
std::vector<nn::Tensor> SplitChannels(const nn::Tensor& x,
                                      const std::vector<size_t>& channels) {
  const size_t B = x.dim(0), L = x.dim(2);
  std::vector<nn::Tensor> parts;
  parts.reserve(channels.size());
  size_t c_off = 0;
  const size_t total_c = x.dim(1);
  for (size_t c : channels) {
    nn::Tensor part({B, c, L});
    for (size_t b = 0; b < B; ++b) {
      std::copy(x.raw() + (b * total_c + c_off) * L,
                x.raw() + (b * total_c + c_off + c) * L,
                part.raw() + b * c * L);
    }
    parts.push_back(std::move(part));
    c_off += c;
  }
  KDSEL_CHECK(c_off == total_c);
  return parts;
}

}  // namespace

// -------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(size_t in_channels, size_t out_channels, Rng& rng)
    : conv1_(in_channels, out_channels, 7, rng, /*use_bias=*/false),
      conv2_(out_channels, out_channels, 5, rng, /*use_bias=*/false),
      conv3_(out_channels, out_channels, 3, rng, /*use_bias=*/false),
      bn1_(out_channels),
      bn2_(out_channels),
      bn3_(out_channels),
      project_(in_channels != out_channels) {
  if (project_) {
    shortcut_conv_ = std::make_unique<nn::Conv1d>(in_channels, out_channels,
                                                  1, rng, /*use_bias=*/false);
    shortcut_bn_ = std::make_unique<nn::BatchNorm1d>(out_channels);
  }
}

nn::Tensor ResidualBlock::Forward(const nn::Tensor& input, bool training) {
  nn::Tensor h = relu1_.Forward(bn1_.Forward(conv1_.Forward(input, training),
                                             training),
                                training);
  h = relu2_.Forward(bn2_.Forward(conv2_.Forward(h, training), training),
                     training);
  h = bn3_.Forward(conv3_.Forward(h, training), training);
  nn::Tensor shortcut =
      project_ ? shortcut_bn_->Forward(
                     shortcut_conv_->Forward(input, training), training)
               : input;
  h.AddInPlace(shortcut);
  return relu_out_.Forward(h, training);
}

nn::Tensor ResidualBlock::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = relu_out_.Backward(grad_output);
  // Main path.
  nn::Tensor gm = conv1_.Backward(
      bn1_.Backward(relu1_.Backward(conv2_.Backward(bn2_.Backward(
          relu2_.Backward(conv3_.Backward(bn3_.Backward(g))))))));
  // Shortcut path.
  nn::Tensor gs =
      project_ ? shortcut_conv_->Backward(shortcut_bn_->Backward(g)) : g;
  gm.AddInPlace(gs);
  return gm;
}

std::vector<nn::Parameter*> ResidualBlock::Parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Module* m : std::initializer_list<nn::Module*>{
           &conv1_, &bn1_, &conv2_, &bn2_, &conv3_, &bn3_}) {
    for (auto* p : m->Parameters()) params.push_back(p);
  }
  if (project_) {
    for (auto* p : shortcut_conv_->Parameters()) params.push_back(p);
    for (auto* p : shortcut_bn_->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Tensor*> ResidualBlock::StateTensors() {
  std::vector<nn::Tensor*> state;
  for (nn::Module* m :
       std::initializer_list<nn::Module*>{&bn1_, &bn2_, &bn3_}) {
    for (auto* t : m->StateTensors()) state.push_back(t);
  }
  if (project_) {
    for (auto* t : shortcut_bn_->StateTensors()) state.push_back(t);
  }
  return state;
}

// ------------------------------------------------------ InceptionModule

InceptionModule::InceptionModule(size_t in_channels, size_t bottleneck,
                                 size_t filters_per_branch, Rng& rng)
    : filters_(filters_per_branch),
      bottleneck_(in_channels, bottleneck, 1, rng, /*use_bias=*/false),
      branch1_(bottleneck, filters_per_branch, 5, rng, /*use_bias=*/false),
      branch2_(bottleneck, filters_per_branch, 11, rng, /*use_bias=*/false),
      branch3_(bottleneck, filters_per_branch, 23, rng, /*use_bias=*/false),
      pool_conv_(in_channels, filters_per_branch, 1, rng, /*use_bias=*/false),
      bn_(4 * filters_per_branch) {}

nn::Tensor InceptionModule::Forward(const nn::Tensor& input, bool training) {
  nn::Tensor b = bottleneck_.Forward(input, training);
  nn::Tensor o1 = branch1_.Forward(b, training);
  nn::Tensor o2 = branch2_.Forward(b, training);
  nn::Tensor o3 = branch3_.Forward(b, training);
  nn::Tensor p = pool_conv_.Forward(pool_.Forward(input, training), training);
  nn::Tensor cat = ConcatChannels({&o1, &o2, &o3, &p});
  return relu_.Forward(bn_.Forward(cat, training), training);
}

nn::Tensor InceptionModule::Backward(const nn::Tensor& grad_output) {
  nn::Tensor g = bn_.Backward(relu_.Backward(grad_output));
  auto parts = SplitChannels(g, {filters_, filters_, filters_, filters_});
  nn::Tensor gb = branch1_.Backward(parts[0]);
  gb.AddInPlace(branch2_.Backward(parts[1]));
  gb.AddInPlace(branch3_.Backward(parts[2]));
  nn::Tensor gx = bottleneck_.Backward(gb);
  gx.AddInPlace(pool_.Backward(pool_conv_.Backward(parts[3])));
  return gx;
}

std::vector<nn::Parameter*> InceptionModule::Parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Module* m : std::initializer_list<nn::Module*>{
           &bottleneck_, &branch1_, &branch2_, &branch3_, &pool_conv_, &bn_}) {
    for (auto* p : m->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::Tensor*> InceptionModule::StateTensors() {
  return bn_.StateTensors();
}

// ------------------------------------------------------------- ConvNet

ConvNetBackbone::ConvNetBackbone(size_t input_length, size_t base_channels,
                                 Rng& rng)
    : input_length_(input_length), feature_dim_(2 * base_channels) {
  seq_.Add(std::make_unique<ToConvInput>());
  seq_.Add(std::make_unique<nn::Conv1d>(1, base_channels, 7, rng, false));
  seq_.Add(std::make_unique<nn::BatchNorm1d>(base_channels));
  seq_.Add(std::make_unique<nn::ReLU>());
  seq_.Add(std::make_unique<nn::Conv1d>(base_channels, 2 * base_channels, 5,
                                        rng, false));
  seq_.Add(std::make_unique<nn::BatchNorm1d>(2 * base_channels));
  seq_.Add(std::make_unique<nn::ReLU>());
  seq_.Add(std::make_unique<nn::Conv1d>(2 * base_channels, 2 * base_channels,
                                        3, rng, false));
  seq_.Add(std::make_unique<nn::BatchNorm1d>(2 * base_channels));
  seq_.Add(std::make_unique<nn::ReLU>());
  seq_.Add(std::make_unique<nn::GlobalAvgPool1d>());
}

nn::Tensor ConvNetBackbone::Forward(const nn::Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == input_length_);
  return seq_.Forward(input, training);
}

nn::Tensor ConvNetBackbone::Backward(const nn::Tensor& grad_output) {
  return seq_.Backward(grad_output);
}

// -------------------------------------------------------------- ResNet

ResNetBackbone::ResNetBackbone(size_t input_length, size_t base_channels,
                               Rng& rng)
    : input_length_(input_length), feature_dim_(2 * base_channels) {
  seq_.Add(std::make_unique<ToConvInput>());
  seq_.Add(std::make_unique<ResidualBlock>(1, base_channels, rng));
  seq_.Add(std::make_unique<ResidualBlock>(base_channels, 2 * base_channels,
                                           rng));
  seq_.Add(std::make_unique<ResidualBlock>(2 * base_channels,
                                           2 * base_channels, rng));
  seq_.Add(std::make_unique<nn::GlobalAvgPool1d>());
}

nn::Tensor ResNetBackbone::Forward(const nn::Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == input_length_);
  return seq_.Forward(input, training);
}

nn::Tensor ResNetBackbone::Backward(const nn::Tensor& grad_output) {
  return seq_.Backward(grad_output);
}

// ------------------------------------------------------- InceptionTime

InceptionTimeBackbone::InceptionTimeBackbone(size_t input_length,
                                             size_t filters, Rng& rng)
    : input_length_(input_length), feature_dim_(4 * filters) {
  seq_.Add(std::make_unique<ToConvInput>());
  seq_.Add(std::make_unique<InceptionModule>(1, std::max<size_t>(filters, 1),
                                             filters, rng));
  seq_.Add(std::make_unique<InceptionModule>(4 * filters, filters, filters,
                                             rng));
  seq_.Add(std::make_unique<nn::GlobalAvgPool1d>());
}

nn::Tensor InceptionTimeBackbone::Forward(const nn::Tensor& input,
                                          bool training) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == input_length_);
  return seq_.Forward(input, training);
}

nn::Tensor InceptionTimeBackbone::Backward(const nn::Tensor& grad_output) {
  return seq_.Backward(grad_output);
}

// --------------------------------------------------------- Transformer

TransformerBackbone::TransformerBackbone(size_t input_length,
                                         const Options& options, Rng& rng)
    : input_length_(input_length),
      options_(options),
      num_patches_(input_length / options.patch_size),
      patch_embed_(options.patch_size, options.dim, rng),
      pos_embed_("transformer.pos_embed",
                 nn::Tensor({input_length / options.patch_size, options.dim})),
      final_norm_(options.dim) {
  KDSEL_CHECK(input_length % options_.patch_size == 0);
  KDSEL_CHECK(num_patches_ >= 1);
  for (float& v : pos_embed_.value.mutable_data()) {
    v = static_cast<float>(rng.Normal(0.0, 0.02));
  }
  for (size_t i = 0; i < options_.layers; ++i) {
    blocks_.push_back(std::make_unique<nn::TransformerEncoderBlock>(
        options_.dim, options_.heads, options_.ffn_hidden, options_.dropout,
        rng));
  }
}

std::vector<nn::Parameter*> TransformerBackbone::Parameters() {
  std::vector<nn::Parameter*> params = patch_embed_.Parameters();
  params.push_back(&pos_embed_);
  for (auto& b : blocks_) {
    for (auto* p : b->Parameters()) params.push_back(p);
  }
  for (auto* p : final_norm_.Parameters()) params.push_back(p);
  return params;
}

nn::Tensor TransformerBackbone::Forward(const nn::Tensor& input,
                                        bool training) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == input_length_);
  const size_t B = input.dim(0);
  const size_t T = num_patches_, P = options_.patch_size, D = options_.dim;
  cached_batch_ = {B};
  // [B, L] rows are already contiguous patches: view as [B*T, P].
  nn::Tensor patches = input.Reshaped({B * T, P});
  nn::Tensor x = patch_embed_.Forward(patches, training).Reshaped({B, T, D});
  for (size_t b = 0; b < B; ++b) {
    float* row = x.raw() + b * T * D;
    const float* pos = pos_embed_.value.raw();
    for (size_t i = 0; i < T * D; ++i) row[i] += pos[i];
  }
  for (auto& block : blocks_) x = block->Forward(x, training);
  x = final_norm_.Forward(x, training);
  // Mean pooling over tokens.
  nn::Tensor out({B, D});
  const float inv_t = 1.0f / static_cast<float>(T);
  for (size_t b = 0; b < B; ++b) {
    for (size_t t = 0; t < T; ++t) {
      const float* row = x.raw() + (b * T + t) * D;
      float* o = out.raw() + b * D;
      for (size_t d = 0; d < D; ++d) o[d] += row[d] * inv_t;
    }
  }
  return out;
}

nn::Tensor TransformerBackbone::Backward(const nn::Tensor& grad_output) {
  const size_t B = cached_batch_[0];
  const size_t T = num_patches_, D = options_.dim;
  KDSEL_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == B &&
              grad_output.dim(1) == D);
  // Un-pool.
  nn::Tensor g({B, T, D});
  const float inv_t = 1.0f / static_cast<float>(T);
  for (size_t b = 0; b < B; ++b) {
    const float* go = grad_output.raw() + b * D;
    for (size_t t = 0; t < T; ++t) {
      float* row = g.raw() + (b * T + t) * D;
      for (size_t d = 0; d < D; ++d) row[d] = go[d] * inv_t;
    }
  }
  g = final_norm_.Backward(g);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  // Positional-embedding gradient sums over the batch.
  for (size_t b = 0; b < B; ++b) {
    const float* row = g.raw() + b * T * D;
    float* pg = pos_embed_.grad.raw();
    for (size_t i = 0; i < T * D; ++i) pg[i] += row[i];
  }
  nn::Tensor gp = patch_embed_.Backward(g.Reshaped({B * T, D}));
  return gp.Reshaped({B, input_length_});
}

// --------------------------------------------------------------- Factory

const std::vector<std::string>& BackboneNames() {
  static const std::vector<std::string> names{"ConvNet", "ResNet",
                                              "InceptionTime", "Transformer"};
  return names;
}

namespace {

/// make_unique with the base-typed return BuildBackbone needs (a raw
/// unique_ptr<Derived> would take two user-defined conversions to reach
/// StatusOr<unique_ptr<Backbone>>).
template <typename T, typename... Args>
std::unique_ptr<Backbone> MakeBackbone(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

StatusOr<std::unique_ptr<Backbone>> BuildBackbone(const std::string& name,
                                                  size_t input_length,
                                                  Rng& rng) {
  if (name == "ConvNet") {
    return MakeBackbone<ConvNetBackbone>(input_length, 16, rng);
  }
  if (name == "ResNet") {
    return MakeBackbone<ResNetBackbone>(input_length, 16, rng);
  }
  if (name == "InceptionTime") {
    return MakeBackbone<InceptionTimeBackbone>(input_length, 8, rng);
  }
  if (name == "Transformer") {
    TransformerBackbone::Options o;
    if (input_length % o.patch_size != 0) {
      // Fall back to a patch size that divides the window.
      for (size_t p = o.patch_size; p >= 1; --p) {
        if (input_length % p == 0) {
          o.patch_size = p;
          break;
        }
      }
    }
    return MakeBackbone<TransformerBackbone>(input_length, o, rng);
  }
  return Status::NotFound("unknown backbone: " + name);
}

}  // namespace kdsel::selectors
