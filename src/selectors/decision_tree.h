#ifndef KDSEL_SELECTORS_DECISION_TREE_H_
#define KDSEL_SELECTORS_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace kdsel::selectors {

/// A CART-style classification tree with Gini impurity, supporting
/// per-sample weights (needed by AdaBoost) and random feature
/// subsampling (needed by RandomForest).
class DecisionTree {
 public:
  struct Options {
    size_t max_depth = 10;
    size_t min_samples_split = 2;
    /// Number of features considered per split; 0 = all.
    size_t max_features = 0;
    uint64_t seed = 31;
  };

  explicit DecisionTree(const Options& options) : options_(options) {}

  /// `rows` is [N][D]; `labels` in [0, num_classes); `weights` empty or [N].
  Status Fit(const std::vector<std::vector<float>>& rows,
             const std::vector<int>& labels, size_t num_classes,
             const std::vector<double>& weights);

  int PredictOne(const std::vector<float>& row) const;
  std::vector<int> Predict(const std::vector<std::vector<float>>& rows) const;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int left = -1;   ///< -1 marks a leaf.
    int right = -1;
    size_t feature = 0;
    float threshold = 0.0f;
    int label = 0;   ///< Majority (weighted) class at this node.
  };

  int BuildNode(const std::vector<std::vector<float>>& rows,
                const std::vector<int>& labels,
                const std::vector<double>& weights, size_t num_classes,
                std::vector<size_t>& idx, size_t begin, size_t end,
                size_t depth, Rng& rng);

  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_DECISION_TREE_H_
