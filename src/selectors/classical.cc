#include "selectors/classical.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kdsel::selectors {

Status ValidateTrainingData(const TrainingData& data) {
  if (data.windows.empty()) return Status::InvalidArgument("no windows");
  if (data.labels.size() != data.windows.size()) {
    return Status::InvalidArgument("labels/windows size mismatch");
  }
  if (data.num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  const size_t dim = data.windows[0].size();
  for (const auto& w : data.windows) {
    if (w.size() != dim) {
      return Status::InvalidArgument("ragged window lengths");
    }
  }
  for (int y : data.labels) {
    if (y < 0 || static_cast<size_t>(y) >= data.num_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- KNN --

Status KnnSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  train_features_ = scaler_.TransformBatch(raw);
  train_labels_ = data.labels;
  num_classes_ = data.num_classes;
  return Status::OK();
}

StatusOr<std::vector<int>> KnnSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (train_features_.empty()) {
    return Status::FailedPrecondition("KNN not fitted");
  }
  auto query = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  const size_t k = std::min(options_.k, train_features_.size());
  std::vector<int> out;
  out.reserve(query.size());
  std::vector<std::pair<float, int>> dists(train_features_.size());
  for (const auto& q : query) {
    for (size_t i = 0; i < train_features_.size(); ++i) {
      double acc = 0.0;
      const auto& t = train_features_[i];
      for (size_t j = 0; j < q.size(); ++j) {
        double d = q[j] - t[j];
        acc += d * d;
      }
      dists[i] = {static_cast<float>(acc), train_labels_[i]};
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<ptrdiff_t>(k - 1),
                     dists.end());
    std::vector<int> votes(num_classes_, 0);
    for (size_t i = 0; i < k; ++i) ++votes[static_cast<size_t>(dists[i].second)];
    out.push_back(static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin()));
  }
  return out;
}

// ---------------------------------------------------------------- SVC --

Status SvcSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  num_classes_ = data.num_classes;
  const size_t d = rows[0].size();
  weights_.assign(num_classes_, std::vector<double>(d + 1, 0.0));

  Rng rng(options_.seed);
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        options_.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (size_t i : order) {
      const auto& x = rows[i];
      for (size_t c = 0; c < num_classes_; ++c) {
        auto& w = weights_[c];
        const double y = (data.labels[i] == static_cast<int>(c)) ? 1.0 : -1.0;
        double margin = w[d];
        for (size_t j = 0; j < d; ++j) margin += w[j] * x[j];
        margin *= y;
        for (size_t j = 0; j < d; ++j) {
          double grad = options_.reg * w[j];
          if (margin < 1.0) grad -= y * x[j];
          w[j] -= lr * grad;
        }
        if (margin < 1.0) w[d] += lr * y;
      }
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int>> SvcSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (weights_.empty()) return Status::FailedPrecondition("SVC not fitted");
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  const size_t d = rows.empty() ? 0 : rows[0].size();
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    int best = 0;
    double best_score = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      const auto& w = weights_[c];
      double score = w[d];
      for (size_t j = 0; j < d; ++j) score += w[j] * x[j];
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    out.push_back(best);
  }
  return out;
}

// ----------------------------------------------------------- AdaBoost --

Status AdaBoostSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  num_classes_ = data.num_classes;
  const size_t n = rows.size();
  const double k = static_cast<double>(num_classes_);

  learners_.clear();
  alphas_.clear();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  for (size_t round = 0; round < options_.rounds; ++round) {
    DecisionTree::Options topt;
    topt.max_depth = options_.stump_depth;
    topt.seed = options_.seed + round;
    DecisionTree tree(topt);
    KDSEL_RETURN_NOT_OK(tree.Fit(rows, data.labels, num_classes_, weights));
    auto pred = tree.Predict(rows);
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != data.labels[i]) err += weights[i];
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    // SAMME multi-class condition: a learner must beat random guessing.
    if (err >= 1.0 - 1.0 / k) {
      if (learners_.empty()) {
        learners_.push_back(std::move(tree));
        alphas_.push_back(1.0);
      }
      break;
    }
    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (pred[i] != data.labels[i]) weights[i] *= std::exp(alpha);
      total += weights[i];
    }
    for (double& w : weights) w /= total;
    learners_.push_back(std::move(tree));
    alphas_.push_back(alpha);
  }
  return Status::OK();
}

StatusOr<std::vector<int>> AdaBoostSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (learners_.empty()) {
    return Status::FailedPrecondition("AdaBoost not fitted");
  }
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    std::vector<double> votes(num_classes_, 0.0);
    for (size_t t = 0; t < learners_.size(); ++t) {
      votes[static_cast<size_t>(learners_[t].PredictOne(x))] += alphas_[t];
    }
    out.push_back(static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin()));
  }
  return out;
}

// ------------------------------------------------------- RandomForest --

Status RandomForestSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  num_classes_ = data.num_classes;
  const size_t n = rows.size();
  const size_t dim = rows[0].size();

  trees_.clear();
  Rng rng(options_.seed);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample expressed through per-sample multiplicity weights.
    std::vector<double> weights(n, 0.0);
    for (size_t i = 0; i < n; ++i) weights[rng.Index(n)] += 1.0;
    DecisionTree::Options topt;
    topt.max_depth = options_.max_depth;
    topt.max_features =
        std::max<size_t>(1, static_cast<size_t>(std::sqrt(double(dim))));
    topt.seed = options_.seed * 977 + t;
    DecisionTree tree(topt);
    KDSEL_RETURN_NOT_OK(tree.Fit(rows, data.labels, num_classes_, weights));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

StatusOr<std::vector<int>> RandomForestSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("RandomForest not fitted");
  }
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    std::vector<int> votes(num_classes_, 0);
    for (const auto& tree : trees_) {
      ++votes[static_cast<size_t>(tree.PredictOne(x))];
    }
    out.push_back(static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin()));
  }
  return out;
}

}  // namespace kdsel::selectors
