#include "selectors/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace kdsel::selectors {

double BandedDtwSquared(const std::vector<float>& a,
                        const std::vector<float>& b, size_t band,
                        double bound) {
  KDSEL_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n == 0) return 0.0;
  band = std::max<size_t>(band, 1);
  constexpr double kInf = std::numeric_limits<double>::max() / 4;

  // Two rolling rows of the DP matrix, restricted to the band.
  std::vector<double> prev(n, kInf), curr(n, kInf);
  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i > band ? i - band : 0;
    const size_t j_hi = std::min(n - 1, i + band);
    double row_min = kInf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = (static_cast<double>(a[i]) - b[j]) *
                       (static_cast<double>(a[i]) - b[j]);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);                 // insertion
        if (j > 0) best = std::min(best, curr[j - 1]);             // deletion
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);    // match
      }
      curr[j] = best >= kInf ? kInf : best + d;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min >= bound) return bound;  // early abandon
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  return std::min(prev[n - 1], bound);
}

double LbKeoghSquared(const std::vector<float>& query,
                      const std::vector<float>& candidate, size_t band) {
  KDSEL_CHECK(query.size() == candidate.size());
  const size_t n = query.size();
  band = std::max<size_t>(band, 1);
  double lb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = std::min(n - 1, i + band);
    float upper = candidate[lo], lower = candidate[lo];
    for (size_t j = lo + 1; j <= hi; ++j) {
      upper = std::max(upper, candidate[j]);
      lower = std::min(lower, candidate[j]);
    }
    const float q = query[i];
    if (q > upper) {
      lb += (static_cast<double>(q) - upper) * (static_cast<double>(q) - upper);
    } else if (q < lower) {
      lb += (static_cast<double>(q) - lower) * (static_cast<double>(q) - lower);
    }
  }
  return lb;
}

Status DtwSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  train_windows_.clear();
  train_labels_.clear();
  if (data.size() <= options_.max_train_samples) {
    train_windows_ = data.windows;
    train_labels_ = data.labels;
    return Status::OK();
  }
  // Class-stratified subsample: round-robin over classes so minority
  // classes keep representation.
  std::vector<std::vector<size_t>> by_class(data.num_classes);
  for (size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<size_t>(data.labels[i])].push_back(i);
  }
  Rng rng(options_.seed);
  for (auto& bucket : by_class) rng.Shuffle(bucket);
  std::vector<size_t> cursor(data.num_classes, 0);
  while (train_windows_.size() < options_.max_train_samples) {
    bool any = false;
    for (size_t c = 0;
         c < data.num_classes &&
         train_windows_.size() < options_.max_train_samples;
         ++c) {
      if (cursor[c] < by_class[c].size()) {
        const size_t idx = by_class[c][cursor[c]++];
        train_windows_.push_back(data.windows[idx]);
        train_labels_.push_back(data.labels[idx]);
        any = true;
      }
    }
    if (!any) break;
  }
  return Status::OK();
}

StatusOr<std::vector<int>> DtwSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (train_windows_.empty()) {
    return Status::FailedPrecondition("DTW-1NN not fitted");
  }
  const size_t L = train_windows_[0].size();
  const size_t band = std::max<size_t>(
      1, static_cast<size_t>(options_.band_fraction * double(L)));
  std::vector<int> out;
  out.reserve(windows.size());
  for (const auto& q : windows) {
    if (q.size() != L) {
      return Status::InvalidArgument("query window length mismatch");
    }
    double best = std::numeric_limits<double>::max();
    int best_label = train_labels_[0];
    for (size_t i = 0; i < train_windows_.size(); ++i) {
      // LB_Keogh prune before the expensive DTW.
      if (LbKeoghSquared(q, train_windows_[i], band) >= best) continue;
      const double d = BandedDtwSquared(q, train_windows_[i], band, best);
      if (d < best) {
        best = d;
        best_label = train_labels_[i];
      }
    }
    out.push_back(best_label);
  }
  return out;
}

}  // namespace kdsel::selectors
