#ifndef KDSEL_SELECTORS_BACKBONE_H_
#define KDSEL_SELECTORS_BACKBONE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace kdsel::selectors {

/// A time-series encoder E_T: windows [B, L] -> features [B, D].
///
/// This is the architecture-specific half of an NN selector; the linear
/// classifier C_T, the PISL/MKI losses and the PA pruning are composed
/// around it by core::SelectorTrainer, which is exactly the paper's
/// "architecture-agnostic plug-and-play" claim.
class Backbone : public nn::Module {
 public:
  virtual std::string name() const = 0;
  virtual size_t feature_dim() const = 0;
  virtual size_t input_length() const = 0;
};

/// The classic TSC residual block: three conv-BN-ReLU stages with a
/// (possibly projected) shortcut.
class ResidualBlock : public nn::Module {
 public:
  ResidualBlock(size_t in_channels, size_t out_channels, Rng& rng);

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override;
  std::vector<nn::Tensor*> StateTensors() override;
  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    conv1_.CollectQuantizable(out);
    conv2_.CollectQuantizable(out);
    conv3_.CollectQuantizable(out);
    if (shortcut_conv_) shortcut_conv_->CollectQuantizable(out);
  }

 private:
  nn::Conv1d conv1_, conv2_, conv3_;
  nn::BatchNorm1d bn1_, bn2_, bn3_;
  nn::ReLU relu1_, relu2_, relu_out_;
  bool project_;
  std::unique_ptr<nn::Conv1d> shortcut_conv_;
  std::unique_ptr<nn::BatchNorm1d> shortcut_bn_;
};

/// InceptionTime module: bottleneck 1x1 conv, three parallel convs with
/// different kernel sizes, plus a maxpool->1x1 branch, concatenated and
/// batch-normed.
class InceptionModule : public nn::Module {
 public:
  InceptionModule(size_t in_channels, size_t bottleneck,
                  size_t filters_per_branch, Rng& rng);

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override;
  std::vector<nn::Tensor*> StateTensors() override;

  size_t out_channels() const { return 4 * filters_; }

  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    bottleneck_.CollectQuantizable(out);
    branch1_.CollectQuantizable(out);
    branch2_.CollectQuantizable(out);
    branch3_.CollectQuantizable(out);
    pool_conv_.CollectQuantizable(out);
  }

 private:
  size_t filters_;
  nn::Conv1d bottleneck_;
  nn::Conv1d branch1_, branch2_, branch3_;
  nn::MaxPool1dSame pool_;
  nn::Conv1d pool_conv_;
  nn::BatchNorm1d bn_;
  nn::ReLU relu_;
};

/// Plain 3-stage CNN encoder (paper baseline "ConvNet").
class ConvNetBackbone : public Backbone {
 public:
  ConvNetBackbone(size_t input_length, size_t base_channels, Rng& rng);

  std::string name() const override { return "ConvNet"; }
  size_t feature_dim() const override { return feature_dim_; }
  size_t input_length() const override { return input_length_; }

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override { return seq_.Parameters(); }
  std::vector<nn::Tensor*> StateTensors() override { return seq_.StateTensors(); }
  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    seq_.CollectQuantizable(out);
  }

 private:
  size_t input_length_;
  size_t feature_dim_;
  nn::Sequential seq_;
};

/// TSC ResNet encoder (default architecture in the paper).
class ResNetBackbone : public Backbone {
 public:
  ResNetBackbone(size_t input_length, size_t base_channels, Rng& rng);

  std::string name() const override { return "ResNet"; }
  size_t feature_dim() const override { return feature_dim_; }
  size_t input_length() const override { return input_length_; }

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override { return seq_.Parameters(); }
  std::vector<nn::Tensor*> StateTensors() override { return seq_.StateTensors(); }
  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    seq_.CollectQuantizable(out);
  }

 private:
  size_t input_length_;
  size_t feature_dim_;
  nn::Sequential seq_;
};

/// InceptionTime encoder.
class InceptionTimeBackbone : public Backbone {
 public:
  InceptionTimeBackbone(size_t input_length, size_t filters, Rng& rng);

  std::string name() const override { return "InceptionTime"; }
  size_t feature_dim() const override { return feature_dim_; }
  size_t input_length() const override { return input_length_; }

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override { return seq_.Parameters(); }
  std::vector<nn::Tensor*> StateTensors() override { return seq_.StateTensors(); }
  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    seq_.CollectQuantizable(out);
  }

 private:
  size_t input_length_;
  size_t feature_dim_;
  nn::Sequential seq_;
};

/// Patch-embedding Transformer encoder (the paper's "SiT-stem"-style
/// Transformer baseline): non-overlapping patches -> linear embedding +
/// learned positional encoding -> encoder blocks -> mean pooling.
class TransformerBackbone : public Backbone {
 public:
  struct Options {
    size_t patch_size = 8;
    size_t dim = 32;
    size_t heads = 4;
    size_t layers = 2;
    size_t ffn_hidden = 64;
    double dropout = 0.1;
  };

  TransformerBackbone(size_t input_length, const Options& options, Rng& rng);

  std::string name() const override { return "Transformer"; }
  size_t feature_dim() const override { return options_.dim; }
  size_t input_length() const override { return input_length_; }

  nn::Tensor Forward(const nn::Tensor& input, bool training) override;
  nn::Tensor Backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> Parameters() override;
  std::vector<nn::Tensor*> StateTensors() override { return {}; }
  void CollectQuantizable(std::vector<nn::Quantizable*>* out) override {
    patch_embed_.CollectQuantizable(out);
    for (auto& b : blocks_) b->CollectQuantizable(out);
  }

 private:
  size_t input_length_;
  Options options_;
  size_t num_patches_;
  nn::Linear patch_embed_;
  nn::Parameter pos_embed_;  // [T, D]
  std::vector<std::unique_ptr<nn::TransformerEncoderBlock>> blocks_;
  nn::LayerNorm final_norm_;
  std::vector<size_t> cached_batch_;
};

/// Canonical NN backbone names.
const std::vector<std::string>& BackboneNames();

/// Builds a backbone by name ("ConvNet", "ResNet", "InceptionTime",
/// "Transformer") sized for `input_length` windows.
StatusOr<std::unique_ptr<Backbone>> BuildBackbone(const std::string& name,
                                                  size_t input_length,
                                                  Rng& rng);

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_BACKBONE_H_
