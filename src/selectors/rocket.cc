#include "selectors/rocket.h"

#include <algorithm>
#include <cmath>

namespace kdsel::selectors {

namespace {

/// Solves (A + lambda I) X = B for X where A is [d,d] SPD, B is [d,c],
/// via Cholesky decomposition. Returns false if not positive definite.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, size_t d,
                   size_t c, double lambda) {
  for (size_t i = 0; i < d; ++i) a[i * d + i] += lambda;
  // Cholesky: A = L L^T (in-place, lower triangle).
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * d + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * d + k] * a[j * d + k];
      if (i == j) {
        if (sum <= 0) return false;
        a[i * d + i] = std::sqrt(sum);
      } else {
        a[i * d + j] = sum / a[j * d + j];
      }
    }
  }
  // Solve L Y = B, then L^T X = Y (per column).
  for (size_t col = 0; col < c; ++col) {
    for (size_t i = 0; i < d; ++i) {
      double sum = b[i * c + col];
      for (size_t k = 0; k < i; ++k) sum -= a[i * d + k] * b[k * c + col];
      b[i * c + col] = sum / a[i * d + i];
    }
    for (size_t i = d; i-- > 0;) {
      double sum = b[i * c + col];
      for (size_t k = i + 1; k < d; ++k) sum -= a[k * d + i] * b[k * c + col];
      b[i * c + col] = sum / a[i * d + i];
    }
  }
  return true;
}

}  // namespace

void RocketSelector::SampleKernels(size_t input_length, Rng& rng) {
  kernels_.clear();
  kernels_.reserve(options_.num_kernels);
  const size_t klen = options_.kernel_length;
  for (size_t i = 0; i < options_.num_kernels; ++i) {
    Kernel k;
    k.weights.resize(klen);
    double mean = 0.0;
    for (float& w : k.weights) {
      w = static_cast<float>(rng.Normal());
      mean += w;
    }
    mean /= static_cast<double>(klen);
    for (float& w : k.weights) w = static_cast<float>(w - mean);
    k.bias = static_cast<float>(rng.Uniform(-1.0, 1.0));
    // Dilation sampled log-uniformly up to what the window allows.
    const size_t max_dilation =
        std::max<size_t>(1, (input_length - 1) / (klen - 1));
    const double log_max = std::log2(static_cast<double>(max_dilation));
    k.dilation = static_cast<size_t>(
        std::pow(2.0, rng.Uniform(0.0, log_max)));
    k.dilation = std::max<size_t>(1, k.dilation);
    kernels_.push_back(std::move(k));
  }
}

std::vector<float> RocketSelector::Transform(
    const std::vector<float>& window) const {
  std::vector<float> features;
  features.reserve(kernels_.size() * 2);
  const size_t n = window.size();
  for (const Kernel& k : kernels_) {
    const size_t span = (k.weights.size() - 1) * k.dilation;
    size_t positives = 0, count = 0;
    float max_v = -1e30f;
    if (span < n) {
      for (size_t start = 0; start + span < n; ++start) {
        float acc = k.bias;
        for (size_t j = 0; j < k.weights.size(); ++j) {
          acc += k.weights[j] * window[start + j * k.dilation];
        }
        max_v = std::max(max_v, acc);
        positives += (acc > 0);
        ++count;
      }
    }
    features.push_back(count > 0 ? static_cast<float>(positives) /
                                       static_cast<float>(count)
                                 : 0.0f);
    features.push_back(count > 0 ? max_v : 0.0f);
  }
  return features;
}

Status RocketSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  num_classes_ = data.num_classes;
  Rng rng(options_.seed);
  SampleKernels(data.windows[0].size(), rng);

  // Transform all training windows.
  std::vector<std::vector<float>> feats;
  feats.reserve(data.size());
  for (const auto& w : data.windows) feats.push_back(Transform(w));
  const size_t f = feats[0].size();
  const size_t n = feats.size();

  // Standardize features (ridge is scale-sensitive).
  feat_mean_.assign(f, 0.0f);
  feat_inv_std_.assign(f, 1.0f);
  {
    std::vector<double> mean(f, 0.0), var(f, 0.0);
    for (const auto& row : feats) {
      for (size_t j = 0; j < f; ++j) mean[j] += row[j];
    }
    for (size_t j = 0; j < f; ++j) mean[j] /= static_cast<double>(n);
    for (const auto& row : feats) {
      for (size_t j = 0; j < f; ++j) {
        double d = row[j] - mean[j];
        var[j] += d * d;
      }
    }
    for (size_t j = 0; j < f; ++j) {
      double sd = std::sqrt(var[j] / static_cast<double>(n));
      feat_mean_[j] = static_cast<float>(mean[j]);
      feat_inv_std_[j] = static_cast<float>(sd > 1e-9 ? 1.0 / sd : 0.0);
    }
    for (auto& row : feats) {
      for (size_t j = 0; j < f; ++j) {
        row[j] = (row[j] - feat_mean_[j]) * feat_inv_std_[j];
      }
    }
  }

  // Ridge regression to one-hot targets (+ bias feature).
  const size_t d = f + 1;
  const size_t c = num_classes_;
  std::vector<double> gram(d * d, 0.0);
  std::vector<double> xty(d * c, 0.0);
  std::vector<double> x(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) x[j] = feats[i][j];
    x[f] = 1.0;
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) gram[a * d + b] += x[a] * x[b];
    }
    const size_t y = static_cast<size_t>(data.labels[i]);
    for (size_t a = 0; a < d; ++a) {
      xty[a * c + y] += x[a];       // target +1 for true class
      for (size_t cc = 0; cc < c; ++cc) {
        xty[a * c + cc] -= x[a] / static_cast<double>(c);  // center targets
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) gram[a * d + b] = gram[b * d + a];
  }
  if (!CholeskySolve(gram, xty, d, c, options_.ridge_lambda)) {
    return Status::Internal("ridge system not positive definite");
  }
  readout_.assign(c, std::vector<double>(d, 0.0));
  for (size_t a = 0; a < d; ++a) {
    for (size_t cc = 0; cc < c; ++cc) readout_[cc][a] = xty[a * c + cc];
  }
  return Status::OK();
}

StatusOr<std::vector<int>> RocketSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (readout_.empty()) return Status::FailedPrecondition("Rocket not fitted");
  std::vector<int> out;
  out.reserve(windows.size());
  for (const auto& w : windows) {
    auto feat = Transform(w);
    for (size_t j = 0; j < feat.size(); ++j) {
      feat[j] = (feat[j] - feat_mean_[j]) * feat_inv_std_[j];
    }
    int best = 0;
    double best_score = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      const auto& r = readout_[c];
      double score = r.back();
      for (size_t j = 0; j < feat.size(); ++j) score += r[j] * feat[j];
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    out.push_back(best);
  }
  return out;
}

}  // namespace kdsel::selectors
