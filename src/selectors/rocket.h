#ifndef KDSEL_SELECTORS_ROCKET_H_
#define KDSEL_SELECTORS_ROCKET_H_

#include <vector>

#include "common/rng.h"
#include "selectors/selector.h"

namespace kdsel::selectors {

/// Rocket-style kernel selector (paper baseline "Rocket"/MiniRocket):
/// many random dilated convolution kernels, each contributing a PPV
/// (proportion of positive values) and a max feature, classified with a
/// closed-form ridge-regression one-vs-rest readout.
class RocketSelector : public Selector {
 public:
  struct Options {
    size_t num_kernels = 200;
    size_t kernel_length = 9;
    double ridge_lambda = 1.0;
    uint64_t seed = 47;
  };

  explicit RocketSelector(const Options& options) : options_(options) {}

  std::string name() const override { return "Rocket"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  struct Kernel {
    std::vector<float> weights;
    float bias = 0.0f;
    size_t dilation = 1;
  };

  /// Applies all kernels to one window -> 2*num_kernels features.
  std::vector<float> Transform(const std::vector<float>& window) const;

  void SampleKernels(size_t input_length, Rng& rng);

  Options options_;
  std::vector<Kernel> kernels_;
  std::vector<std::vector<double>> readout_;  ///< [C][F+1], bias last.
  std::vector<float> feat_mean_, feat_inv_std_;
  size_t num_classes_ = 0;
};

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_ROCKET_H_
