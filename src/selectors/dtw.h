#ifndef KDSEL_SELECTORS_DTW_H_
#define KDSEL_SELECTORS_DTW_H_

#include <vector>

#include "selectors/selector.h"

namespace kdsel::selectors {

/// Dynamic time warping distance with a Sakoe-Chiba band and early
/// abandoning: returns min(DTW^2, bound) — computation stops once every
/// cell in a row exceeds `bound`. `band` limits |i - j|.
double BandedDtwSquared(const std::vector<float>& a,
                        const std::vector<float>& b, size_t band,
                        double bound);

/// The LB_Keogh lower bound on banded-DTW^2 (used to skip full DTW
/// computations during 1-NN search).
double LbKeoghSquared(const std::vector<float>& query,
                      const std::vector<float>& candidate, size_t band);

/// 1-nearest-neighbour selector under banded DTW — the classic strong
/// TSC baseline. O(n * m * L * band) per query, so the training set is
/// subsampled to `max_train_samples` (class-stratified) at Fit time.
class DtwSelector : public Selector {
 public:
  struct Options {
    /// Sakoe-Chiba band as a fraction of the window length.
    double band_fraction = 0.1;
    size_t max_train_samples = 400;
    uint64_t seed = 59;
  };

  explicit DtwSelector(const Options& options) : options_(options) {}
  DtwSelector() : DtwSelector(Options{}) {}

  std::string name() const override { return "DTW-1NN"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  std::vector<std::vector<float>> train_windows_;
  std::vector<int> train_labels_;
};

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_DTW_H_
