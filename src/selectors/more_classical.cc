#include "selectors/more_classical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"

namespace kdsel::selectors {

// --------------------------------------------------------------- ED-1NN

Status Ed1nnSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  train_windows_ = data.windows;
  train_labels_ = data.labels;
  return Status::OK();
}

StatusOr<std::vector<int>> Ed1nnSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (train_windows_.empty()) {
    return Status::FailedPrecondition("ED-1NN not fitted");
  }
  std::vector<int> out;
  out.reserve(windows.size());
  for (const auto& q : windows) {
    if (q.size() != train_windows_[0].size()) {
      return Status::InvalidArgument("query window length mismatch");
    }
    double best = std::numeric_limits<double>::max();
    int best_label = train_labels_[0];
    for (size_t i = 0; i < train_windows_.size(); ++i) {
      const auto& t = train_windows_[i];
      double acc = 0.0;
      for (size_t j = 0; j < q.size(); ++j) {
        double d = q[j] - t[j];
        acc += d * d;
        if (acc >= best) break;  // early abandon
      }
      if (acc < best) {
        best = acc;
        best_label = train_labels_[i];
      }
    }
    out.push_back(best_label);
  }
  return out;
}

// ------------------------------------------------------------- Logistic

Status LogisticSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  num_classes_ = data.num_classes;
  const size_t d = rows[0].size();
  weights_.assign(num_classes_, std::vector<double>(d + 1, 0.0));

  Rng rng(options_.seed);
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> logits(num_classes_);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        options_.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t i : order) {
      const auto& x = rows[i];
      double mx = -1e300;
      for (size_t c = 0; c < num_classes_; ++c) {
        const auto& w = weights_[c];
        logits[c] = w[d];
        for (size_t j = 0; j < d; ++j) logits[c] += w[j] * x[j];
        mx = std::max(mx, logits[c]);
      }
      double sum = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        logits[c] = std::exp(logits[c] - mx);
        sum += logits[c];
      }
      for (size_t c = 0; c < num_classes_; ++c) {
        const double p = logits[c] / sum;
        const double err =
            p - (data.labels[i] == static_cast<int>(c) ? 1.0 : 0.0);
        auto& w = weights_[c];
        for (size_t j = 0; j < d; ++j) {
          w[j] -= lr * (err * x[j] + options_.reg * w[j]);
        }
        w[d] -= lr * err;
      }
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int>> LogisticSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (weights_.empty()) {
    return Status::FailedPrecondition("Logistic not fitted");
  }
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  const size_t d = rows.empty() ? 0 : rows[0].size();
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    int best = 0;
    double best_score = -1e300;
    for (size_t c = 0; c < num_classes_; ++c) {
      const auto& w = weights_[c];
      double score = w[d];
      for (size_t j = 0; j < d; ++j) score += w[j] * x[j];
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    out.push_back(best);
  }
  return out;
}

// ------------------------------------------------------ NearestCentroid

Status NearestCentroidSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  const size_t d = rows[0].size();
  centroids_.assign(data.num_classes, std::vector<double>(d, 0.0));
  seen_class_.assign(data.num_classes, false);
  std::vector<size_t> counts(data.num_classes, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto c = static_cast<size_t>(data.labels[i]);
    for (size_t j = 0; j < d; ++j) centroids_[c][j] += rows[i][j];
    ++counts[c];
    seen_class_[c] = true;
  }
  for (size_t c = 0; c < centroids_.size(); ++c) {
    if (counts[c] == 0) continue;
    for (double& v : centroids_[c]) v /= static_cast<double>(counts[c]);
  }
  return Status::OK();
}

StatusOr<std::vector<int>> NearestCentroidSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (centroids_.empty()) {
    return Status::FailedPrecondition("NearestCentroid not fitted");
  }
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    int best = -1;
    double best_d = std::numeric_limits<double>::max();
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (!seen_class_[c]) continue;
      double acc = 0.0;
      for (size_t j = 0; j < x.size(); ++j) {
        double diff = x[j] - centroids_[c][j];
        acc += diff * diff;
      }
      if (acc < best_d) {
        best_d = acc;
        best = static_cast<int>(c);
      }
    }
    out.push_back(std::max(best, 0));
  }
  return out;
}

// ----------------------------------------------------------- GaussianNB

Status GaussianNbSelector::Fit(const TrainingData& data) {
  KDSEL_RETURN_NOT_OK(ValidateTrainingData(data));
  auto raw = features::ExtractFeaturesBatch(data.windows);
  scaler_.Fit(raw);
  auto rows = scaler_.TransformBatch(raw);
  const size_t d = rows[0].size();
  const size_t k = data.num_classes;
  mean_.assign(k, std::vector<double>(d, 0.0));
  var_.assign(k, std::vector<double>(d, 0.0));
  log_prior_.assign(k, -1e9);
  seen_class_.assign(k, false);
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto c = static_cast<size_t>(data.labels[i]);
    for (size_t j = 0; j < d; ++j) mean_[c][j] += rows[i][j];
    ++counts[c];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    seen_class_[c] = true;
    for (double& v : mean_[c]) v /= static_cast<double>(counts[c]);
    log_prior_[c] = std::log(static_cast<double>(counts[c]) /
                             static_cast<double>(rows.size()));
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto c = static_cast<size_t>(data.labels[i]);
    for (size_t j = 0; j < d; ++j) {
      double diff = rows[i][j] - mean_[c][j];
      var_[c][j] += diff * diff;
    }
  }
  const double smoothing = 1e-3;
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (double& v : var_[c]) {
      v = v / static_cast<double>(counts[c]) + smoothing;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<int>> GaussianNbSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  if (mean_.empty()) {
    return Status::FailedPrecondition("GaussianNB not fitted");
  }
  auto rows = scaler_.TransformBatch(features::ExtractFeaturesBatch(windows));
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& x : rows) {
    int best = 0;
    double best_ll = -std::numeric_limits<double>::max();
    for (size_t c = 0; c < mean_.size(); ++c) {
      if (!seen_class_[c]) continue;
      double ll = log_prior_[c];
      for (size_t j = 0; j < x.size(); ++j) {
        const double diff = x[j] - mean_[c][j];
        ll -= 0.5 * (std::log(2 * 3.14159265358979 * var_[c][j]) +
                     diff * diff / var_[c][j]);
      }
      if (ll > best_ll) {
        best_ll = ll;
        best = static_cast<int>(c);
      }
    }
    out.push_back(best);
  }
  return out;
}

}  // namespace kdsel::selectors
