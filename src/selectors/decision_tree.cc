#include "selectors/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kdsel::selectors {

Status DecisionTree::Fit(const std::vector<std::vector<float>>& rows,
                         const std::vector<int>& labels, size_t num_classes,
                         const std::vector<double>& weights) {
  if (rows.empty()) return Status::InvalidArgument("no training rows");
  if (labels.size() != rows.size()) {
    return Status::InvalidArgument("labels/rows size mismatch");
  }
  if (!weights.empty() && weights.size() != rows.size()) {
    return Status::InvalidArgument("weights/rows size mismatch");
  }
  nodes_.clear();
  std::vector<size_t> idx(rows.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  Rng rng(options_.seed);
  std::vector<double> w = weights;
  if (w.empty()) w.assign(rows.size(), 1.0);
  BuildNode(rows, labels, w, num_classes, idx, 0, idx.size(), 0, rng);
  return Status::OK();
}

int DecisionTree::BuildNode(const std::vector<std::vector<float>>& rows,
                            const std::vector<int>& labels,
                            const std::vector<double>& weights,
                            size_t num_classes, std::vector<size_t>& idx,
                            size_t begin, size_t end, size_t depth, Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Weighted class histogram for this node.
  std::vector<double> hist(num_classes, 0.0);
  for (size_t i = begin; i < end; ++i) {
    hist[static_cast<size_t>(labels[idx[i]])] += weights[idx[i]];
  }
  const double total =
      std::accumulate(hist.begin(), hist.end(), 0.0);
  int majority = 0;
  for (size_t c = 1; c < num_classes; ++c) {
    if (hist[c] > hist[static_cast<size_t>(majority)]) {
      majority = static_cast<int>(c);
    }
  }
  nodes_[static_cast<size_t>(node_id)].label = majority;

  // Stop: depth, size, or purity.
  const bool pure = hist[static_cast<size_t>(majority)] >= total - 1e-12;
  if (depth >= options_.max_depth || end - begin < options_.min_samples_split ||
      pure || total <= 0) {
    return node_id;
  }

  const size_t dim = rows[0].size();
  const size_t n_features =
      options_.max_features == 0 ? dim : std::min(options_.max_features, dim);
  auto feature_pool = rng.Sample(dim, n_features);

  // Find best split by Gini gain. For each candidate feature, sort node
  // samples by value and scan thresholds between distinct values.
  double best_gini = std::numeric_limits<double>::max();
  size_t best_feature = 0;
  float best_threshold = 0.0f;
  bool found = false;

  std::vector<size_t> local(idx.begin() + static_cast<ptrdiff_t>(begin),
                            idx.begin() + static_cast<ptrdiff_t>(end));
  std::vector<double> left_hist(num_classes);
  for (size_t feature : feature_pool) {
    std::sort(local.begin(), local.end(), [&](size_t a, size_t b) {
      return rows[a][feature] < rows[b][feature];
    });
    std::fill(left_hist.begin(), left_hist.end(), 0.0);
    double left_total = 0.0;
    for (size_t i = 0; i + 1 < local.size(); ++i) {
      const size_t r = local[i];
      left_hist[static_cast<size_t>(labels[r])] += weights[r];
      left_total += weights[r];
      const float v0 = rows[r][feature];
      const float v1 = rows[local[i + 1]][feature];
      if (v1 <= v0) continue;  // Not a valid threshold between duplicates.
      const double right_total = total - left_total;
      if (left_total <= 0 || right_total <= 0) continue;
      double left_gini = 1.0, right_gini = 1.0;
      for (size_t c = 0; c < num_classes; ++c) {
        const double pl = left_hist[c] / left_total;
        const double pr = (hist[c] - left_hist[c]) / right_total;
        left_gini -= pl * pl;
        right_gini -= pr * pr;
      }
      const double weighted =
          (left_total * left_gini + right_total * right_gini) / total;
      if (weighted < best_gini) {
        best_gini = weighted;
        best_feature = feature;
        best_threshold = 0.5f * (v0 + v1);
        found = true;
      }
    }
  }
  if (!found) return node_id;

  auto mid_it =
      std::partition(idx.begin() + static_cast<ptrdiff_t>(begin),
                     idx.begin() + static_cast<ptrdiff_t>(end), [&](size_t r) {
                       return rows[r][best_feature] < best_threshold;
                     });
  const size_t mid = static_cast<size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;

  const int left =
      BuildNode(rows, labels, weights, num_classes, idx, begin, mid,
                depth + 1, rng);
  const int right =
      BuildNode(rows, labels, weights, num_classes, idx, mid, end, depth + 1,
                rng);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.left = left;
  node.right = right;
  node.feature = best_feature;
  node.threshold = best_threshold;
  return node_id;
}

int DecisionTree::PredictOne(const std::vector<float>& row) const {
  KDSEL_CHECK(!nodes_.empty());
  size_t node = 0;
  while (nodes_[node].left != -1) {
    node = row[nodes_[node].feature] < nodes_[node].threshold
               ? static_cast<size_t>(nodes_[node].left)
               : static_cast<size_t>(nodes_[node].right);
  }
  return nodes_[node].label;
}

std::vector<int> DecisionTree::Predict(
    const std::vector<std::vector<float>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(PredictOne(r));
  return out;
}

}  // namespace kdsel::selectors
