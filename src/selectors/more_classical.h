#ifndef KDSEL_SELECTORS_MORE_CLASSICAL_H_
#define KDSEL_SELECTORS_MORE_CLASSICAL_H_

#include <vector>

#include "features/features.h"
#include "selectors/selector.h"

namespace kdsel::selectors {

/// 1-nearest-neighbour on raw z-normalized windows (Euclidean) — the
/// classic ED-1NN time-series-classification baseline.
class Ed1nnSelector : public Selector {
 public:
  std::string name() const override { return "ED-1NN"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  std::vector<std::vector<float>> train_windows_;
  std::vector<int> train_labels_;
};

/// Multinomial logistic regression (softmax linear model) on
/// TSFresh-style features, trained with mini-batch gradient descent.
class LogisticSelector : public Selector {
 public:
  struct Options {
    size_t epochs = 60;
    double learning_rate = 0.1;
    double reg = 1e-4;
    uint64_t seed = 53;
  };

  explicit LogisticSelector(const Options& options) : options_(options) {}
  LogisticSelector() : LogisticSelector(Options{}) {}

  std::string name() const override { return "Logistic"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  Options options_;
  features::FeatureScaler scaler_;
  std::vector<std::vector<double>> weights_;  ///< [C][D+1], bias last.
  size_t num_classes_ = 0;
};

/// Nearest class centroid on TSFresh-style features.
class NearestCentroidSelector : public Selector {
 public:
  std::string name() const override { return "NearestCentroid"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  features::FeatureScaler scaler_;
  std::vector<std::vector<double>> centroids_;  ///< [C][D].
  std::vector<bool> seen_class_;
};

/// Gaussian naive Bayes on TSFresh-style features (per-class diagonal
/// Gaussians with variance smoothing).
class GaussianNbSelector : public Selector {
 public:
  std::string name() const override { return "GaussianNB"; }
  Status Fit(const TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

 private:
  features::FeatureScaler scaler_;
  std::vector<std::vector<double>> mean_;      ///< [C][D].
  std::vector<std::vector<double>> var_;       ///< [C][D].
  std::vector<double> log_prior_;              ///< [C].
  std::vector<bool> seen_class_;
};

}  // namespace kdsel::selectors

#endif  // KDSEL_SELECTORS_MORE_CLASSICAL_H_
