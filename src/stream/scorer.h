#ifndef KDSEL_STREAM_SCORER_H_
#define KDSEL_STREAM_SCORER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/annotations.h"
#include "serve/registry.h"
#include "stream/drift.h"
#include "stream/incremental_features.h"

namespace kdsel::stream {

struct StreamOptions {
  std::string selector;             ///< Registry name scored against.
  size_t window = 256;              ///< Ring capacity per series.
  size_t rescore_interval = 128;    ///< Points between periodic re-scores.
  size_t drift_check_interval = 16;  ///< Points between drift checks.
  size_t recompute_interval = 0;    ///< Exact-recompute cadence; 0 = window.
  size_t rescore_grain = 2;         ///< Series per parallel re-score chunk.
  DriftOptions drift;
  std::vector<std::string> model_names;  ///< Optional id -> display name.
};

/// One input point of one series.
struct PointEvent {
  std::string series;
  float value = 0.0f;
};

/// One output event: a (re-)selection or a drift trigger.
struct StreamEvent {
  enum class Kind { kSelection, kDrift };

  Kind kind = Kind::kSelection;
  std::string series;
  uint64_t point = 0;  ///< Points ingested for the series at emission.
  int model = -1;      ///< Winning model id (selection events).
  std::string model_name;
  std::vector<int> votes;  ///< Per-model vote counts over the window.
  size_t num_windows = 0;
  bool changed = false;  ///< Selection differs from the previous one.
  std::string reason;    ///< "initial" | "periodic" | "drift".
  double statistic = 0.0;        ///< Drift statistic (drift events).
  uint64_t selector_version = 0;  ///< Registry snapshot that scored it.
};

/// Multiplexes many series through incremental feature maintenance,
/// drift monitoring, and periodic selector re-scoring against a
/// serve::SelectorRegistry snapshot (hot reload: a new registry version
/// is picked up at the next batch and workers re-clone lazily).
///
/// ProcessBatch output is deterministic w.r.t. thread count: per-series
/// ingest runs one series per ParallelFor chunk, re-scores run on
/// per-chunk selector clones whose assignment depends only on the
/// re-score list and rescore_grain, and events are assembled serially in
/// first-touch order. Not thread-safe itself: one StreamScorer per
/// ingest thread.
class StreamScorer {
 public:
  StreamScorer(serve::SelectorRegistry* registry, StreamOptions options);
  ~StreamScorer();

  StreamScorer(const StreamScorer&) = delete;
  StreamScorer& operator=(const StreamScorer&) = delete;

  /// Ingests a batch of point events; returns the events it emitted, in
  /// deterministic order (per series: drift first, then selection).
  StatusOr<std::vector<StreamEvent>> ProcessBatch(
      const std::vector<PointEvent>& events);

  size_t series_count() const { return series_.size(); }
  uint64_t points_ingested() const { return points_ingested_; }
  const StreamOptions& options() const { return options_; }

 private:
  struct SeriesState;
  struct WorkerClone;

  SeriesState* FindOrCreate(const std::string& name);
  /// Steady-state per-point loop: feature pushes, drift checks, rescore
  /// scheduling. KDSEL_HOT -- kdsel_lint proves no allocation happens
  /// here outside the NoteDrift boundary.
  void IngestPending(SeriesState& state, size_t min_points);
  /// Drift events are rare (one per detected distribution change), so
  /// the event construction + push is an accepted allocation boundary
  /// (KDSEL_ALLOC_OK on the definition).
  void NoteDrift(SeriesState& state, uint64_t total);
  Status RescoreSeries(SeriesState& state,
                       const core::TrainedSelector& selector,
                       StreamEvent* out);
  std::string ModelName(int model) const;

  serve::SelectorRegistry* registry_;
  StreamOptions options_;
  std::unordered_map<std::string, std::unique_ptr<SeriesState>> series_;
  std::vector<SeriesState*> touched_;   ///< Batch scratch, first-touch order.
  std::vector<SeriesState*> rescore_;   ///< Batch scratch.
  std::vector<StreamEvent> results_;    ///< Per-rescore output slots.
  std::vector<Status> statuses_;        ///< Per-rescore status slots.
  std::vector<WorkerClone> clones_;     ///< Per-chunk selector clones.
  uint64_t points_ingested_ = 0;
};

}  // namespace kdsel::stream

#endif  // KDSEL_STREAM_SCORER_H_
