#include "stream/incremental_features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace kdsel::stream {

namespace {

constexpr size_t kLags[] = {1, 2, 4, 8};
constexpr size_t kNumLags = 4;

/// Indices of the feature slots OverwriteFromSums owns, resolved from
/// FeatureNames() once so a reordering of the batch extractor cannot
/// silently desynchronize the streaming path.
struct Slots {
  size_t mean, stddev, skew, kurt, abs_energy, mean_abs_change, mean_change;
  size_t autocorr[kNumLags];
  size_t cid, c3, var_diff, tra, abs_sum, last_minus_first, rms;
};

const Slots& GetSlots() {
  static const Slots slots = [] {
    auto idx = [](const char* name) {
      const auto& names = features::FeatureNames();
      for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) return i;
      }
      KDSEL_CHECK(false && "unknown feature name");
      return size_t{0};
    };
    Slots s;
    s.mean = idx("mean");
    s.stddev = idx("std");
    s.skew = idx("skewness");
    s.kurt = idx("kurtosis");
    s.abs_energy = idx("abs_energy");
    s.mean_abs_change = idx("mean_abs_change");
    s.mean_change = idx("mean_change");
    s.autocorr[0] = idx("autocorr_lag1");
    s.autocorr[1] = idx("autocorr_lag2");
    s.autocorr[2] = idx("autocorr_lag4");
    s.autocorr[3] = idx("autocorr_lag8");
    s.cid = idx("cid_ce");
    s.c3 = idx("c3");
    s.var_diff = idx("var_of_diff");
    s.tra = idx("time_reversal_asymmetry");
    s.abs_sum = idx("abs_sum_of_changes");
    s.last_minus_first = idx("last_minus_first");
    s.rms = idx("rms");
    return s;
  }();
  return slots;
}

obs::Counter& RecomputeCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.stream.recomputes");
  return counter;
}

}  // namespace

void MomentSummary::ToArray(double out[kDims]) const {
  out[0] = mean;
  out[1] = stddev;
  out[2] = skewness;
  out[3] = autocorr1;
  out[4] = mean_abs_change;
  out[5] = rms;
}

IncrementalFeatures::IncrementalFeatures(IncrementalOptions options)
    : options_(options), buffer_(options.window) {
  KDSEL_CHECK(options_.window >= 16);
  if (options_.recompute_interval == 0) {
    options_.recompute_interval = options_.window;
  }
  window_.reserve(options_.window);
  scratch_.Reserve(options_.window);
}

void IncrementalFeatures::Push(float x) {
  const StreamBuffer& b = buffer_;
  const size_t m = b.size();
  const bool evict = b.full();

  if (evict) {
    // Remove every sum term that references the outgoing oldest point.
    // All reads happen before the ring mutates.
    const double e0 = b[0];
    const double d0 = e0 - anchor_;
    s1_ -= d0;
    s2_ -= d0 * d0;
    s3_ -= d0 * d0 * d0;
    s4_ -= d0 * d0 * d0 * d0;
    energy_ -= e0 * e0;
    for (size_t li = 0; li < kNumLags; ++li) {
      const size_t lag = kLags[li];
      if (m > lag) lag_[li] -= (b[lag] - anchor_) * d0;
    }
    {
      const double diff = static_cast<double>(b[1]) - e0;
      abs_change_ -= std::abs(diff);
      sq_change_ -= diff * diff;
    }
    {
      const double w1 = b[1], w2 = b[2];
      c3_ -= w2 * w1 * e0;
      tra_ -= w2 * w2 * w1 - w1 * e0 * e0;
    }
  }

  // Partners of x in the post-push window, read before the ring mutates:
  // post-push logical index j maps to pre-push index j+1 when evicting,
  // j otherwise.
  const size_t new_size = evict ? m : m + 1;
  double partner[kNumLags];
  bool has_partner[kNumLags];
  for (size_t li = 0; li < kNumLags; ++li) {
    const size_t lag = kLags[li];
    has_partner[li] = new_size > lag;
    partner[li] =
        has_partner[li]
            ? b[evict ? new_size - lag : new_size - 1 - lag]
            : 0.0;
  }
  const double prev1 =
      new_size >= 2 ? b[evict ? new_size - 1 : new_size - 2] : 0.0;
  const double prev2 =
      new_size >= 3 ? b[evict ? new_size - 2 : new_size - 3] : 0.0;

  buffer_.Push(x);

  const double xv = x;
  const double d = xv - anchor_;
  s1_ += d;
  s2_ += d * d;
  s3_ += d * d * d;
  s4_ += d * d * d * d;
  energy_ += xv * xv;
  for (size_t li = 0; li < kNumLags; ++li) {
    if (has_partner[li]) lag_[li] += (partner[li] - anchor_) * d;
  }
  if (new_size >= 2) {
    const double diff = xv - prev1;
    abs_change_ += std::abs(diff);
    sq_change_ += diff * diff;
  }
  if (new_size >= 3) {
    c3_ += xv * prev1 * prev2;
    tra_ += xv * xv * prev1 - prev1 * prev2 * prev2;
  }

  if (++pushes_since_recompute_ >= options_.recompute_interval) {
    RecomputeExact();
  }
}

void IncrementalFeatures::RecomputeExact() {
  pushes_since_recompute_ = 0;
  ++recomputes_;
  RecomputeCounter().Increment();

  const size_t n = buffer_.size();
  s1_ = s2_ = s3_ = s4_ = 0.0;
  energy_ = 0.0;
  for (size_t li = 0; li < kNumLags; ++li) lag_[li] = 0.0;
  abs_change_ = sq_change_ = 0.0;
  c3_ = tra_ = 0.0;
  if (n == 0) {
    anchor_ = 0.0;
    return;
  }

  window_.resize(n);
  buffer_.CopyTo(window_.data());
  const float* w = window_.data();

  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += w[i];
  anchor_ = sum / static_cast<double>(n);

  for (size_t i = 0; i < n; ++i) {
    const double xv = w[i];
    const double d = xv - anchor_;
    s1_ += d;
    s2_ += d * d;
    s3_ += d * d * d;
    s4_ += d * d * d * d;
    energy_ += xv * xv;
    for (size_t li = 0; li < kNumLags; ++li) {
      const size_t lag = kLags[li];
      if (i >= lag) lag_[li] += d * (w[i - lag] - anchor_);
    }
    if (i >= 1) {
      const double diff = xv - static_cast<double>(w[i - 1]);
      abs_change_ += std::abs(diff);
      sq_change_ += diff * diff;
    }
    if (i >= 2) {
      const double p1 = w[i - 1], p2 = w[i - 2];
      c3_ += xv * p1 * p2;
      tra_ += xv * xv * p1 - p1 * p2 * p2;
    }
  }
}

double IncrementalFeatures::AutocorrFromSums(size_t lag_index,
                                             double shifted_mean, double var,
                                             size_t n) const {
  const size_t lag = kLags[lag_index];
  if (n <= lag) return 0.0;
  // Boundary corrections: the lag sum pairs each point with its
  // predecessor, so the first `lag` points never appear as d_i and the
  // last `lag` never as d_{i-lag}.
  double head = 0.0, tail = 0.0;
  for (size_t i = 0; i < lag; ++i) {
    head += static_cast<double>(buffer_[i]) - anchor_;
    tail += static_cast<double>(buffer_[n - 1 - i]) - anchor_;
  }
  const double pairs = static_cast<double>(n - lag);
  const double sum_recent = s1_ - head;  // sum of d_i over i >= lag
  const double sum_old = s1_ - tail;     // sum of d_{i-lag} over i >= lag
  const double acc = lag_[lag_index] - shifted_mean * (sum_recent + sum_old) +
                     pairs * shifted_mean * shifted_mean;
  return acc / (var * pairs);
}

void IncrementalFeatures::OverwriteFromSums(float* out, size_t n) const {
  const Slots& slot = GetSlots();
  const double dn = static_cast<double>(n);
  const double ms = s1_ / dn;
  const double mean = anchor_ + ms;
  const double var = std::max(0.0, s2_ / dn - ms * ms);
  const double stddev = std::sqrt(var);
  const double m3 = s3_ / dn - 3.0 * ms * (s2_ / dn) + 2.0 * ms * ms * ms;
  const double m4 = s4_ / dn - 4.0 * ms * (s3_ / dn) +
                    6.0 * ms * ms * (s2_ / dn) - 3.0 * ms * ms * ms * ms;
  const bool degenerate = features::DegenerateVariance(var, mean);

  out[slot.mean] = static_cast<float>(mean);
  out[slot.stddev] = static_cast<float>(stddev);
  out[slot.skew] =
      static_cast<float>(degenerate ? 0.0 : m3 / (var * stddev));
  out[slot.kurt] =
      static_cast<float>(degenerate ? 0.0 : m4 / (var * var) - 3.0);
  out[slot.abs_energy] = static_cast<float>(energy_ / dn);
  out[slot.mean_abs_change] =
      static_cast<float>(abs_change_ / static_cast<double>(n - 1));
  const double first = buffer_.front();
  const double last = buffer_.back();
  // The diff sum telescopes to last - first; same value, O(1) state.
  const double mean_diff = (last - first) / static_cast<double>(n - 1);
  out[slot.mean_change] = static_cast<float>(mean_diff);
  for (size_t li = 0; li < kNumLags; ++li) {
    out[slot.autocorr[li]] = static_cast<float>(
        degenerate ? 0.0 : AutocorrFromSums(li, ms, var, n));
  }
  out[slot.cid] = static_cast<float>(std::sqrt(std::max(0.0, sq_change_)));
  out[slot.c3] =
      static_cast<float>(n > 2 ? c3_ / static_cast<double>(n - 2) : 0.0);
  out[slot.var_diff] = static_cast<float>(std::max(
      0.0, sq_change_ / static_cast<double>(n - 1) - mean_diff * mean_diff));
  out[slot.tra] =
      static_cast<float>(n > 2 ? tra_ / static_cast<double>(n - 2) : 0.0);
  out[slot.abs_sum] = static_cast<float>(abs_change_);
  out[slot.last_minus_first] = static_cast<float>(last - first);
  out[slot.rms] = static_cast<float>(std::sqrt(std::max(0.0, energy_ / dn)));

  // Same finite-value contract as the batch extractor.
  const size_t count = features::FeatureCount();
  for (size_t i = 0; i < count; ++i) {
    if (!std::isfinite(out[i])) out[i] = 0.0f;
  }
}

void IncrementalFeatures::Features(float* out) {
  const size_t n = buffer_.size();
  KDSEL_CHECK(n >= 4);
  window_.resize(n);
  buffer_.CopyTo(window_.data());
  features::ExtractFeaturesInto(window_.data(), n, scratch_, out);
  OverwriteFromSums(out, n);
}

MomentSummary IncrementalFeatures::Moments() const {
  MomentSummary s;
  const size_t n = buffer_.size();
  KDSEL_CHECK(n >= 2);
  const double dn = static_cast<double>(n);
  const double ms = s1_ / dn;
  s.mean = anchor_ + ms;
  const double var = std::max(0.0, s2_ / dn - ms * ms);
  s.stddev = std::sqrt(var);
  if (!features::DegenerateVariance(var, s.mean)) {
    const double m3 = s3_ / dn - 3.0 * ms * (s2_ / dn) + 2.0 * ms * ms * ms;
    s.skewness = m3 / (var * s.stddev);
    s.autocorr1 = AutocorrFromSums(0, ms, var, n);
  }
  s.mean_abs_change = abs_change_ / static_cast<double>(n - 1);
  s.rms = std::sqrt(std::max(0.0, energy_ / dn));
  return s;
}

}  // namespace kdsel::stream
