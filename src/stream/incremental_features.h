#ifndef KDSEL_STREAM_INCREMENTAL_FEATURES_H_
#define KDSEL_STREAM_INCREMENTAL_FEATURES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/features.h"
#include "stream/stream_buffer.h"

namespace kdsel::stream {

/// O(1) moment summary derived purely from the running sums — cheap
/// enough for the drift monitor to consume every few points without
/// touching the full feature extraction.
struct MomentSummary {
  static constexpr size_t kDims = 6;

  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  double autocorr1 = 0.0;
  double mean_abs_change = 0.0;
  double rms = 0.0;

  void ToArray(double out[kDims]) const;
};

struct IncrementalOptions {
  size_t window = 256;            ///< Ring capacity per series (>= 16).
  size_t recompute_interval = 0;  ///< Exact-recompute cadence; 0 = window.
};

/// Maintains the features::ExtractFeatures vector over a sliding window
/// with O(1) amortized work per point and zero steady-state allocation.
///
/// Push updates running sums in O(1): power sums of (x - K) shifted by an
/// anchor K (the window mean at the last exact recompute, which keeps the
/// high-order sums well conditioned), lag-product sums for the four
/// autocorrelation lags, first-difference sums, and the lag-1 triple
/// products behind c3 / time-reversal asymmetry. Every
/// recompute_interval pushes the sums are rebuilt exactly from the ring
/// in one pass and the anchor re-set, bounding floating-point drift to
/// what at most one window of O(1) updates can accumulate.
///
/// Features() fills the full vector: order statistics and scan features
/// (quantiles, strikes, argmax/argmin, entropy, MAD, ...) are inherently
/// O(window) and come from the batch extractor run over the ring copy —
/// bit-identical to ExtractFeatures by construction — while every
/// moment / autocorrelation / difference slot is overwritten with the
/// value derived from the incremental sums, which the stream_test parity
/// suite pins against the batch extractor.
class IncrementalFeatures {
 public:
  explicit IncrementalFeatures(IncrementalOptions options);

  /// Ingests one point. O(1) amortized; never allocates.
  void Push(float x);

  /// True once the window holds enough points to extract (>= 4).
  bool ready() const { return buffer_.size() >= 4; }

  /// Fills out[0..features::FeatureCount()) for the current window.
  /// Allocation-free once the internal scratch is warm. Requires ready().
  void Features(float* out);

  /// O(1) summary for drift checks. Requires buffer().size() >= 2.
  MomentSummary Moments() const;

  const StreamBuffer& buffer() const { return buffer_; }
  uint64_t recomputes() const { return recomputes_; }
  const IncrementalOptions& options() const { return options_; }

 private:
  /// Shifted-sum autocorrelation at kLags[lag_index]; exact in real
  /// arithmetic w.r.t. the batch formula (boundary sums read <= lag
  /// values from the ring, so it stays O(1)).
  double AutocorrFromSums(size_t lag_index, double shifted_mean, double var,
                          size_t n) const;
  /// Overwrites the incrementally-maintained slots of `out`.
  void OverwriteFromSums(float* out, size_t n) const;
  /// One exact pass over the ring: rebuilds every sum, re-anchors.
  void RecomputeExact();

  IncrementalOptions options_;
  StreamBuffer buffer_;
  features::FeatureScratch scratch_;
  std::vector<float> window_;  ///< Linearized ring for exact passes.

  double anchor_ = 0.0;  ///< Shift K for the power/lag sums.
  double s1_ = 0.0, s2_ = 0.0, s3_ = 0.0, s4_ = 0.0;  ///< Sum (x-K)^p.
  double energy_ = 0.0;                               ///< Sum x^2 (raw).
  double lag_[4] = {0.0, 0.0, 0.0, 0.0};  ///< Sum d_i * d_{i-L}, L=1,2,4,8.
  double abs_change_ = 0.0;               ///< Sum |x_i - x_{i-1}|.
  double sq_change_ = 0.0;                ///< Sum (x_i - x_{i-1})^2.
  double c3_ = 0.0;                       ///< Sum x_i x_{i-1} x_{i-2}.
  double tra_ = 0.0;  ///< Sum x_i^2 x_{i-1} - x_{i-1} x_{i-2}^2.
  size_t pushes_since_recompute_ = 0;
  uint64_t recomputes_ = 0;
};

}  // namespace kdsel::stream

#endif  // KDSEL_STREAM_INCREMENTAL_FEATURES_H_
