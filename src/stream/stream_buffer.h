#ifndef KDSEL_STREAM_STREAM_BUFFER_H_
#define KDSEL_STREAM_STREAM_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace kdsel::stream {

/// Fixed-capacity ring buffer over an unbounded point stream: the active
/// window of one streamed series. Push is O(1) and allocation-free after
/// construction; once full, each push evicts the oldest point. Logical
/// index 0 is always the oldest retained point.
class StreamBuffer {
 public:
  explicit StreamBuffer(size_t capacity) : data_(capacity, 0.0f) {
    KDSEL_CHECK(capacity > 0);
  }

  /// Appends x, evicting the oldest point once the buffer is full.
  void Push(float x) {
    data_[head_] = x;
    head_ = head_ + 1 == data_.size() ? 0 : head_ + 1;
    if (size_ < data_.size()) ++size_;
    ++total_;
  }

  /// Value at logical position i (0 = oldest retained point).
  float operator[](size_t i) const {
    KDSEL_DCHECK(i < size_);
    // Until the buffer wraps, head_ trails the contiguous prefix and the
    // oldest point sits at physical 0; afterwards head_ IS the oldest.
    size_t p = (size_ == data_.size() ? head_ : 0) + i;
    if (p >= data_.size()) p -= data_.size();
    return data_[p];
  }

  /// Copies the window, oldest point first, into out[0..size()).
  void CopyTo(float* out) const {
    for (size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
  }

  float front() const { return (*this)[0]; }
  float back() const { return (*this)[size_ - 1]; }

  size_t size() const { return size_; }
  size_t capacity() const { return data_.size(); }
  bool full() const { return size_ == data_.size(); }

  /// Points ever pushed, including evicted ones.
  uint64_t total() const { return total_; }

 private:
  std::vector<float> data_;
  size_t head_ = 0;  // next physical write slot
  size_t size_ = 0;
  uint64_t total_ = 0;
};

}  // namespace kdsel::stream

#endif  // KDSEL_STREAM_STREAM_BUFFER_H_
