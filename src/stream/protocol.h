#ifndef KDSEL_STREAM_PROTOCOL_H_
#define KDSEL_STREAM_PROTOCOL_H_

#include <iosfwd>
#include <string>

#include "stream/scorer.h"

namespace kdsel::stream {

/// One parsed line of the streaming NDJSON wire protocol.
///
/// Point events (one JSON object per line):
///   {"series":"s1","value":0.42}
///   {"series":"s1","values":[0.42,0.43,0.44]}   -- burst form
/// Control ops:
///   {"op":"reload"}  -- hot-reload every resident selector from disk
///   {"op":"stats"}   -- emit a stats event with the metrics snapshot
///   {"op":"quit"}    -- flush and exit (EOF works too)
///
/// Emitted events:
///   {"event":"selection","series":"s1","point":256,"model":"IForest",
///    "model_id":4,"votes":[...],"num_windows":4,"reason":"initial",
///    "changed":false,"selector_version":1}
///   {"event":"drift","series":"s1","point":1024,"statistic":31.7}
///   {"event":"error","error":"InvalidArgument: ..."}
struct StreamRequest {
  enum class Op { kPoints, kReload, kStats, kQuit };

  Op op = Op::kPoints;
  std::string series;
  std::vector<float> values;
};

/// Parses one input line via the serve json layer (strict parsers only —
/// the raw-parse lint rule bans hand-rolled NDJSON scanning).
StatusOr<StreamRequest> ParseStreamLine(const std::string& line);

/// Event formatting (each returns a complete line WITHOUT the '\n').
std::string FormatStreamEvent(const StreamEvent& event);
std::string FormatStreamError(const Status& status);

struct StreamLoopOptions {
  size_t max_batch = 256;  ///< Points buffered before a forced flush.
};

/// Runs the NDJSON streaming session: reads point events from `in`,
/// feeds them to `scorer` in batches (a control op or max_batch forces a
/// flush), and writes emitted events to `out`. Malformed lines produce
/// an error event and the session continues; a failed batch ends it.
/// Returns when "quit" or EOF is seen and the final batch is flushed.
Status RunStreamLoop(std::istream& in, std::ostream& out, StreamScorer& scorer,
                     serve::SelectorRegistry& registry,
                     const StreamLoopOptions& options = {});

}  // namespace kdsel::stream

#endif  // KDSEL_STREAM_PROTOCOL_H_
