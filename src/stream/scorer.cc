#include "stream/scorer.h"

#include <algorithm>
#include <utility>

#include "common/annotations.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stringutil.h"
#include "core/selection.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ts/time_series.h"
#include "ts/window.h"

namespace kdsel::stream {

namespace {

struct StreamMetrics {
  obs::Counter& points;
  obs::Counter& rescores;
  obs::Counter& drift_events;
  obs::Counter& selection_changes;
  obs::Gauge& series;
  obs::Histogram& rescore_us;
};

StreamMetrics& Metrics() {
  static StreamMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return StreamMetrics{
        registry.GetCounter("kdsel.stream.points"),
        registry.GetCounter("kdsel.stream.rescores"),
        registry.GetCounter("kdsel.stream.drift_events"),
        registry.GetCounter("kdsel.stream.selection_changes"),
        registry.GetGauge("kdsel.stream.series"),
        registry.GetHistogram("kdsel.stream.rescore_us"),
    };
  }();
  return metrics;
}

}  // namespace

struct StreamScorer::SeriesState {
  SeriesState(std::string series_name, const StreamOptions& options)
      : name(std::move(series_name)),
        features(IncrementalOptions{options.window,
                                    options.recompute_interval}),
        drift(options.drift) {
    window_values.reserve(options.window);
  }

  std::string name;
  IncrementalFeatures features;
  DriftMonitor drift;
  std::vector<float> pending;  ///< Values routed to this series this batch.
  std::vector<StreamEvent> drift_events;
  std::vector<float> window_values;  ///< Re-score scratch.
  uint64_t last_rescore_point = 0;
  int last_model = -1;
  bool rescore_pending = false;
  bool drift_pending = false;
  const char* pending_reason = "initial";
};

struct StreamScorer::WorkerClone {
  std::unique_ptr<core::TrainedSelector> selector;
  uint64_t version = 0;
};

StreamScorer::StreamScorer(serve::SelectorRegistry* registry,
                           StreamOptions options)
    : registry_(registry), options_(std::move(options)) {
  KDSEL_CHECK(registry_ != nullptr);
  if (options_.rescore_grain == 0) options_.rescore_grain = 1;
  if (options_.rescore_interval == 0) options_.rescore_interval = 1;
}

StreamScorer::~StreamScorer() = default;

StreamScorer::SeriesState* StreamScorer::FindOrCreate(
    const std::string& name) {
  auto it = series_.find(name);
  if (it != series_.end()) return it->second.get();
  auto state = std::make_unique<SeriesState>(name, options_);
  SeriesState* raw = state.get();
  series_.emplace(name, std::move(state));
  Metrics().series.Set(static_cast<double>(series_.size()));
  return raw;
}

std::string StreamScorer::ModelName(int model) const {
  if (model >= 0 && static_cast<size_t>(model) < options_.model_names.size()) {
    return options_.model_names[static_cast<size_t>(model)];
  }
  return StrFormat("model_%d", model);
}

KDSEL_ALLOC_OK("drift events are rare; steady-state points never allocate")
void StreamScorer::NoteDrift(SeriesState& state, uint64_t total) {
  StreamEvent event;
  event.kind = StreamEvent::Kind::kDrift;
  event.series = state.name;
  event.point = total;
  event.statistic = state.drift.statistic();
  state.drift_events.push_back(std::move(event));
  state.drift.Rebase();
  state.drift_pending = true;
  state.rescore_pending = true;
  state.pending_reason = "drift";
}

KDSEL_HOT void StreamScorer::IngestPending(SeriesState& state,
                                           size_t min_points) {
  for (float value : state.pending) {
    state.features.Push(value);
    const uint64_t total = state.features.buffer().total();

    if (options_.drift_check_interval > 0 &&
        total % options_.drift_check_interval == 0 &&
        state.features.buffer().size() >= 2) {
      const MomentSummary summary = state.features.Moments();
      if (state.drift.Observe(summary)) {
        NoteDrift(state, total);
      }
    }

    if (!state.rescore_pending &&
        state.features.buffer().size() >= min_points) {
      const bool due =
          state.last_model < 0 ||
          total - state.last_rescore_point >= options_.rescore_interval;
      if (due) {
        state.rescore_pending = true;
        state.pending_reason = state.last_model < 0 ? "initial" : "periodic";
      }
    }
  }
  state.pending.clear();
}

Status StreamScorer::RescoreSeries(SeriesState& state,
                                   const core::TrainedSelector& selector,
                                   StreamEvent* out) {
  KDSEL_SPAN("stream.Rescore");
  const uint64_t start_ns = obs::NowNs();

  const size_t n = state.features.buffer().size();
  state.window_values.resize(n);
  state.features.buffer().CopyTo(state.window_values.data());
  ts::TimeSeries series(state.name, state.window_values);

  ts::WindowOptions window_options;
  window_options.length = selector.input_length();
  KDSEL_ASSIGN_OR_RETURN(
      core::SeriesSelection selection,
      core::SelectSeriesModel(selector, series, window_options,
                              selector.num_classes()));

  out->kind = StreamEvent::Kind::kSelection;
  out->series = state.name;
  out->point = state.features.buffer().total();
  out->model = selection.model;
  out->model_name = ModelName(selection.model);
  out->votes = std::move(selection.votes);
  out->num_windows = selection.num_windows;

  Metrics().rescore_us.Record(
      static_cast<double>(obs::NowNs() - start_ns) / 1000.0);
  return Status::OK();
}

StatusOr<std::vector<StreamEvent>> StreamScorer::ProcessBatch(
    const std::vector<PointEvent>& events) {
  KDSEL_SPAN("stream.ProcessBatch");
  KDSEL_ASSIGN_OR_RETURN(serve::SelectorRegistry::Snapshot snapshot,
                         registry_->GetOrLoad(options_.selector));
  // First score once a full model window (or the whole ring, if smaller)
  // is available; ExtractWindows pads shorter series by edge replication
  // but scoring mostly-padding windows is noise.
  const size_t min_points = std::max<size_t>(
      4, std::min(snapshot.selector->input_length(), options_.window));

  // Route points to their series; a series' points stay in arrival order.
  touched_.clear();
  for (const PointEvent& event : events) {
    if (event.series.empty()) {
      return Status::InvalidArgument("point event needs a series name");
    }
    SeriesState* state = FindOrCreate(event.series);
    if (state->pending.empty()) touched_.push_back(state);
    state->pending.push_back(event.value);
  }
  Metrics().points.Increment(events.size());
  points_ingested_ += events.size();

  // Phase A: per-series ingest. One series per chunk: per-series state
  // is disjoint, so this is deterministic for any thread count.
  ParallelFor(touched_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      IngestPending(*touched_[i], min_points);
    }
  });

  // Phase B: re-score due series on per-chunk selector clones. The
  // chunk->clone assignment depends only on (list size, grain), and all
  // clones of one snapshot version share identical weights, so output is
  // independent of the executing thread.
  rescore_.clear();
  for (SeriesState* state : touched_) {
    if (state->rescore_pending) rescore_.push_back(state);
  }
  if (!rescore_.empty()) {
    const size_t grain = options_.rescore_grain;
    const size_t chunks = ParallelChunkCount(rescore_.size(), grain);
    if (clones_.size() < chunks) clones_.resize(chunks);
    results_.assign(rescore_.size(), StreamEvent{});
    statuses_.assign(rescore_.size(), Status::OK());
    ParallelFor(rescore_.size(), grain, [&](size_t begin, size_t end) {
      const size_t chunk = begin / grain;
      WorkerClone& worker = clones_[chunk];
      if (worker.selector == nullptr || worker.version != snapshot.version) {
        auto cloned = snapshot.selector->Clone();
        if (!cloned.ok()) {
          for (size_t i = begin; i < end; ++i) statuses_[i] = cloned.status();
          return;
        }
        worker.selector = std::move(cloned).value();
        worker.version = snapshot.version;
      }
      for (size_t i = begin; i < end; ++i) {
        statuses_[i] =
            RescoreSeries(*rescore_[i], *worker.selector, &results_[i]);
        results_[i].selector_version = snapshot.version;
      }
    });
  }

  // Assembly: serial, in first-touch order; per series drift events
  // precede the selection they triggered.
  std::vector<StreamEvent> out;
  size_t result_index = 0;
  for (SeriesState* state : touched_) {
    for (StreamEvent& event : state->drift_events) {
      Metrics().drift_events.Increment();
      out.push_back(std::move(event));
    }
    state->drift_events.clear();
    if (!state->rescore_pending) continue;
    const size_t i = result_index++;
    KDSEL_RETURN_NOT_OK(statuses_[i]);
    StreamEvent& event = results_[i];
    event.reason = state->pending_reason;
    event.changed = state->last_model >= 0 && event.model != state->last_model;
    Metrics().rescores.Increment();
    if (event.changed) Metrics().selection_changes.Increment();
    state->last_model = event.model;
    state->last_rescore_point = state->features.buffer().total();
    state->rescore_pending = false;
    state->drift_pending = false;
    out.push_back(std::move(event));
  }
  return out;
}

}  // namespace kdsel::stream
