#ifndef KDSEL_STREAM_DRIFT_H_
#define KDSEL_STREAM_DRIFT_H_

#include <cstddef>
#include <cstdint>

#include "stream/incremental_features.h"

namespace kdsel::stream {

struct DriftOptions {
  size_t calibration = 64;  ///< Observations that learn the baseline.
  double threshold = 16.0;  ///< Mean squared z-score that counts as shift.
  size_t patience = 3;      ///< Consecutive hot checks before firing.
  double sigma_floor = 0.05;  ///< Relative floor on per-dimension sigma.
};

/// Detects distribution shift in the streamed feature summaries.
///
/// The first `calibration` observations build a per-dimension baseline
/// (Welford mean/variance over the MomentSummary dimensions); after
/// calibration the baseline is frozen and each observation scores as the
/// mean squared z-score against it. Sigmas are floored at
/// sigma_floor * (1 + |mu|) so a dimension that happened to be stable
/// during calibration cannot alone inflate the statistic. The monitor
/// fires after `patience` consecutive above-threshold checks — a single
/// outlier window is an anomaly, a sustained shift is drift.
class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftOptions& options) : options_(options) {}

  /// Feeds one summary; true when drift fires. Callers should Rebase()
  /// once they have reacted (re-scored), or the next sustained run of
  /// hot checks fires again against the stale baseline.
  bool Observe(const MomentSummary& summary);

  /// Drops the baseline and recalibrates on the points that follow.
  void Rebase();

  bool calibrated() const { return count_ >= options_.calibration; }
  double statistic() const { return statistic_; }
  uint64_t observations() const { return count_; }
  const DriftOptions& options() const { return options_; }

 private:
  DriftOptions options_;
  uint64_t count_ = 0;
  size_t hot_ = 0;
  double statistic_ = 0.0;
  double mean_[MomentSummary::kDims] = {};
  double m2_[MomentSummary::kDims] = {};
};

}  // namespace kdsel::stream

#endif  // KDSEL_STREAM_DRIFT_H_
