#include "stream/drift.h"

#include <algorithm>
#include <cmath>

namespace kdsel::stream {

bool DriftMonitor::Observe(const MomentSummary& summary) {
  double x[MomentSummary::kDims];
  summary.ToArray(x);

  if (count_ < options_.calibration) {
    ++count_;
    for (size_t j = 0; j < MomentSummary::kDims; ++j) {
      const double delta = x[j] - mean_[j];
      mean_[j] += delta / static_cast<double>(count_);
      m2_[j] += delta * (x[j] - mean_[j]);
    }
    statistic_ = 0.0;
    return false;
  }

  ++count_;
  double acc = 0.0;
  for (size_t j = 0; j < MomentSummary::kDims; ++j) {
    const double sigma =
        std::sqrt(m2_[j] / static_cast<double>(options_.calibration));
    const double floor = options_.sigma_floor * (1.0 + std::abs(mean_[j]));
    const double z = (x[j] - mean_[j]) / std::max(sigma, floor);
    acc += z * z;
  }
  statistic_ = acc / static_cast<double>(MomentSummary::kDims);

  if (statistic_ > options_.threshold) {
    ++hot_;
  } else {
    hot_ = 0;
  }
  if (hot_ >= options_.patience) {
    hot_ = 0;
    return true;
  }
  return false;
}

void DriftMonitor::Rebase() {
  count_ = 0;
  hot_ = 0;
  statistic_ = 0.0;
  for (size_t j = 0; j < MomentSummary::kDims; ++j) {
    mean_[j] = 0.0;
    m2_[j] = 0.0;
  }
}

}  // namespace kdsel::stream
