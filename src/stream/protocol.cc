#include "stream/protocol.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/json.h"

namespace kdsel::stream {

namespace {

std::string FormatIntArray(const std::vector<int>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  out.push_back(']');
  return out;
}

std::string FormatStatistic(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace

StatusOr<StreamRequest> ParseStreamLine(const std::string& line) {
  KDSEL_ASSIGN_OR_RETURN(serve::Json doc, serve::Json::Parse(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("stream input must be a JSON object");
  }
  StreamRequest request;

  // "op" may be omitted for point events; "points" is accepted as an
  // explicit alias so every line can carry a uniform "op" key.
  const std::string op = doc.GetString("op", "");
  if (!op.empty() && op != "points") {
    if (op == "reload") {
      request.op = StreamRequest::Op::kReload;
    } else if (op == "stats") {
      request.op = StreamRequest::Op::kStats;
    } else if (op == "quit") {
      request.op = StreamRequest::Op::kQuit;
    } else {
      return Status::InvalidArgument("unknown op '" + op + "'");
    }
    return request;
  }

  request.op = StreamRequest::Op::kPoints;
  request.series = doc.GetString("series", "");
  if (request.series.empty()) {
    return Status::InvalidArgument("point event needs \"series\"");
  }
  const serve::Json* values = doc.Find("values");
  if (values != nullptr) {
    if (!values->is_array() || values->items().empty()) {
      return Status::InvalidArgument("\"values\" must be a non-empty array");
    }
    request.values.reserve(values->items().size());
    for (const serve::Json& item : values->items()) {
      if (!item.is_number()) {
        return Status::InvalidArgument("\"values\" must hold numbers");
      }
      request.values.push_back(static_cast<float>(item.as_number()));
    }
    return request;
  }
  const serve::Json* value = doc.Find("value");
  if (value == nullptr || !value->is_number()) {
    return Status::InvalidArgument(
        "point event needs a numeric \"value\" or \"values\" array");
  }
  request.values.push_back(static_cast<float>(value->as_number()));
  return request;
}

std::string FormatStreamEvent(const StreamEvent& event) {
  std::string line = "{\"event\":";
  if (event.kind == StreamEvent::Kind::kDrift) {
    line += "\"drift\",\"series\":";
    serve::AppendJsonString(line, event.series);
    line += ",\"point\":" + std::to_string(event.point);
    line += ",\"statistic\":" + FormatStatistic(event.statistic);
    line.push_back('}');
    return line;
  }
  line += "\"selection\",\"series\":";
  serve::AppendJsonString(line, event.series);
  line += ",\"point\":" + std::to_string(event.point);
  line += ",\"model\":";
  serve::AppendJsonString(line, event.model_name);
  line += ",\"model_id\":" + std::to_string(event.model);
  line += ",\"votes\":" + FormatIntArray(event.votes);
  line += ",\"num_windows\":" + std::to_string(event.num_windows);
  line += ",\"reason\":";
  serve::AppendJsonString(line, event.reason);
  line += ",\"changed\":";
  line += event.changed ? "true" : "false";
  line += ",\"selector_version\":" + std::to_string(event.selector_version);
  line.push_back('}');
  return line;
}

std::string FormatStreamError(const Status& status) {
  std::string line = "{\"event\":\"error\",\"error\":";
  serve::AppendJsonString(line, status.ToString());
  line.push_back('}');
  return line;
}

Status RunStreamLoop(std::istream& in, std::ostream& out, StreamScorer& scorer,
                     serve::SelectorRegistry& registry,
                     const StreamLoopOptions& options) {
  std::vector<PointEvent> batch;
  batch.reserve(options.max_batch);

  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    auto events = scorer.ProcessBatch(batch);
    batch.clear();
    KDSEL_RETURN_NOT_OK(events.status());
    for (const StreamEvent& event : events.value()) {
      out << FormatStreamEvent(event) << '\n';
    }
    out.flush();
    return Status::OK();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = ParseStreamLine(line);
    if (!parsed.ok()) {
      out << FormatStreamError(parsed.status()) << '\n';
      out.flush();
      continue;
    }
    StreamRequest& request = parsed.value();
    switch (request.op) {
      case StreamRequest::Op::kPoints:
        for (float value : request.values) {
          batch.push_back(PointEvent{request.series, value});
        }
        if (batch.size() >= options.max_batch) KDSEL_RETURN_NOT_OK(flush());
        break;
      case StreamRequest::Op::kReload: {
        KDSEL_RETURN_NOT_OK(flush());
        const Status status = registry.ReloadAll();
        if (status.ok()) {
          out << "{\"event\":\"reload\",\"ok\":true}" << '\n';
        } else {
          out << FormatStreamError(status) << '\n';
        }
        out.flush();
        break;
      }
      case StreamRequest::Op::kStats: {
        KDSEL_RETURN_NOT_OK(flush());
        // SnapshotJson() is already valid JSON text, spliced verbatim.
        out << "{\"event\":\"stats\",\"series\":"
            << std::to_string(scorer.series_count()) << ",\"points\":"
            << std::to_string(scorer.points_ingested()) << ",\"metrics\":"
            << obs::MetricsRegistry::Global().SnapshotJson() << "}" << '\n';
        out.flush();
        break;
      }
      case StreamRequest::Op::kQuit:
        return flush();
    }
  }
  return flush();
}

}  // namespace kdsel::stream
