#include "text/text_encoder.h"

#include <cctype>
#include <cmath>
#include <unordered_map>

#include "common/parallel.h"
#include "common/rng.h"

namespace kdsel::text {

namespace {

/// FNV-1a 64-bit hash.
uint64_t Fnv1a(const std::string& s, uint64_t seed) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

HashedTextEncoder::HashedTextEncoder(const Options& options)
    : options_(options) {
  KDSEL_CHECK(options_.vocab_dim > 0 && options_.output_dim > 0);
  Rng rng(options_.seed);
  projection_.resize(options_.vocab_dim * options_.output_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(options_.output_dim));
  for (float& v : projection_) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }
}

std::vector<std::pair<uint32_t, float>> HashedTextEncoder::HashFeatures(
    const std::string& text) const {
  std::unordered_map<uint32_t, float> bag;
  auto add = [&](const std::string& feature, uint64_t salt, float weight) {
    uint64_t h = Fnv1a(feature, salt);
    uint32_t slot = static_cast<uint32_t>(h % options_.vocab_dim);
    // Sign hashing reduces collision bias.
    float sign = ((h >> 32) & 1) ? 1.0f : -1.0f;
    bag[slot] += sign * weight;
  };
  auto tokens = Tokenize(text);
  for (const std::string& tok : tokens) {
    add(tok, /*salt=*/0x517cc1b727220a95ull, 1.0f);
    // Character trigrams make the embedding robust to inflection
    // ("anomaly"/"anomalies" share mass), loosely mirroring subword
    // tokenization in BERT.
    if (tok.size() >= 3) {
      for (size_t i = 0; i + 3 <= tok.size(); ++i) {
        add(tok.substr(i, 3), /*salt=*/0x2545f4914f6cdd1dull, 0.4f);
      }
    }
  }
  std::vector<std::pair<uint32_t, float>> features(bag.begin(), bag.end());
  // L1 scale so embedding magnitude is independent of text length.
  double total = 0.0;
  for (auto& [slot, w] : features) total += std::abs(w);
  if (total > 0) {
    for (auto& [slot, w] : features) w = static_cast<float>(w / total);
  }
  return features;
}

std::vector<float> HashedTextEncoder::Encode(const std::string& text) const {
  std::vector<float> out(options_.output_dim, 0.0f);
  for (auto [slot, weight] : HashFeatures(text)) {
    const float* row = projection_.data() + size_t{slot} * options_.output_dim;
    for (size_t j = 0; j < options_.output_dim; ++j) {
      out[j] += weight * row[j];
    }
  }
  double norm = 0.0;
  for (float v : out) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (float& v : out) v = static_cast<float>(v / norm);
  }
  return out;
}

nn::Tensor HashedTextEncoder::EncodeBatch(
    const std::vector<std::string>& texts) const {
  nn::Tensor out({texts.size(), options_.output_dim});
  // Each text fills a disjoint tensor row; Encode is const and pure.
  ParallelFor(texts.size(), 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      auto vec = Encode(texts[i]);
      std::copy(vec.begin(), vec.end(), out.raw() + i * options_.output_dim);
    }
  });
  return out;
}

}  // namespace kdsel::text
