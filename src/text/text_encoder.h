#ifndef KDSEL_TEXT_TEXT_ENCODER_H_
#define KDSEL_TEXT_TEXT_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace kdsel::text {

/// Splits text into lower-cased word tokens (alphanumeric runs).
std::vector<std::string> Tokenize(const std::string& text);

/// A frozen, deterministic text encoder standing in for the paper's
/// frozen BERT-base (see DESIGN.md substitutions).
///
/// Pipeline: word tokens and character trigrams are hashed into a
/// `vocab_dim`-sized sparse bag (feature hashing with sign hashing, a la
/// Weinberger et al.), which is projected to `output_dim` with a fixed
/// seeded random Gaussian matrix, then L2-normalized. The two properties
/// MKI needs — (i) frozen, (ii) texts with shared vocabulary map to
/// nearby vectors — both hold by construction.
class HashedTextEncoder {
 public:
  struct Options {
    size_t vocab_dim = 4096;   ///< Hashed bag-of-features width.
    size_t output_dim = 768;   ///< Matches BERT-base hidden size.
    uint64_t seed = 1234;      ///< Fixes the random projection.
  };

  explicit HashedTextEncoder(const Options& options);
  HashedTextEncoder() : HashedTextEncoder(Options{}) {}

  /// Embeds one text into a unit-norm vector of `output_dim()` floats.
  std::vector<float> Encode(const std::string& text) const;

  /// Embeds a batch into a [batch, output_dim] tensor.
  nn::Tensor EncodeBatch(const std::vector<std::string>& texts) const;

  size_t output_dim() const { return options_.output_dim; }
  const Options& options() const { return options_; }

 private:
  /// Sparse hashed bag of word + character-trigram features, L1-scaled.
  std::vector<std::pair<uint32_t, float>> HashFeatures(
      const std::string& text) const;

  Options options_;
  // Projection stored column-major by vocab slot: row `v` holds the
  // output_dim-vector added for each occurrence of hashed feature v.
  std::vector<float> projection_;  // [vocab_dim * output_dim]
};

}  // namespace kdsel::text

#endif  // KDSEL_TEXT_TEXT_ENCODER_H_
