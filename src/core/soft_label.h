#ifndef KDSEL_CORE_SOFT_LABEL_H_
#define KDSEL_CORE_SOFT_LABEL_H_

#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace kdsel::core {

/// PISL (performance-informed selector learning), paper Sect. 3.
///
/// Transforms each sample's vector of detector performance scores
/// P(M_j(T_i)) into a soft label p_i = Softmax(P / t_soft): better
/// detectors get proportionally higher selection probability, and the
/// temperature t_soft controls how peaked the distribution is.
/// The result is used as the target of a soft cross-entropy term mixed
/// into the training loss with weight alpha.
StatusOr<nn::Tensor> BuildSoftLabels(
    const std::vector<std::vector<float>>& performance, double t_soft);

/// Hard labels from a performance matrix: argmax per row (ties broken
/// toward the lower index, deterministically).
std::vector<int> HardLabelsFromPerformance(
    const std::vector<std::vector<float>>& performance);

}  // namespace kdsel::core

#endif  // KDSEL_CORE_SOFT_LABEL_H_
