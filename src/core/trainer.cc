#include "core/trainer.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <numeric>

#include "common/annotations.h"
#include "common/stringutil.h"
#include "core/soft_label.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/quantize.h"
#include "nn/serialize.h"

namespace kdsel::core {

namespace {

/// Gathers window rows into a preallocated [batch, L] tensor, reusing
/// `out`'s buffer so the batch loop stays allocation-free.
void GatherWindows(const std::vector<std::vector<float>>& windows,
                   const std::vector<size_t>& idx, nn::Tensor* out) {
  KDSEL_CHECK(!idx.empty());
  const size_t dim = windows[idx[0]].size();
  out->Resize({idx.size(), dim});
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy(windows[idx[i]].begin(), windows[idx[i]].end(),
              out->raw() + i * dim);
  }
}

/// Gathers rows of a 2-D tensor into a preallocated tensor.
void GatherRows(const nn::Tensor& src, const std::vector<size_t>& idx,
                nn::Tensor* out) {
  const size_t dim = src.dim(1);
  out->Resize({idx.size(), dim});
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy(src.raw() + idx[i] * dim, src.raw() + (idx[i] + 1) * dim,
              out->raw() + i * dim);
  }
}

Status ValidateSelectorTrainingData(const SelectorTrainingData& data,
                                    const TrainerOptions& options) {
  if (data.windows.empty()) return Status::InvalidArgument("no windows");
  if (data.labels.size() != data.windows.size()) {
    return Status::InvalidArgument("labels/windows size mismatch");
  }
  if (data.num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  const size_t dim = data.windows[0].size();
  for (const auto& w : data.windows) {
    if (w.size() != dim) return Status::InvalidArgument("ragged windows");
  }
  for (int y : data.labels) {
    if (y < 0 || static_cast<size_t>(y) >= data.num_classes) {
      return Status::InvalidArgument("label out of range");
    }
  }
  if (options.use_pisl) {
    if (data.performance_index.empty()) {
      if (data.performance.size() != data.windows.size()) {
        return Status::InvalidArgument(
            "PISL requires a performance row per sample");
      }
    } else {
      if (data.performance_index.size() != data.windows.size()) {
        return Status::InvalidArgument(
            "performance_index must map every sample");
      }
      for (size_t row : data.performance_index) {
        if (row >= data.performance.size()) {
          return Status::InvalidArgument("performance_index out of range");
        }
      }
    }
    for (const auto& p : data.performance) {
      if (p.size() != data.num_classes) {
        return Status::InvalidArgument(
            "performance row width must equal num_classes");
      }
    }
  }
  if (options.use_mki) {
    if (data.text_index.empty()) {
      if (data.texts.size() != data.windows.size()) {
        return Status::InvalidArgument("MKI requires a text per sample");
      }
    } else {
      if (data.text_index.size() != data.windows.size()) {
        return Status::InvalidArgument("text_index must map every sample");
      }
      for (size_t row : data.text_index) {
        if (row >= data.texts.size()) {
          return Status::InvalidArgument("text_index out of range");
        }
      }
    }
  }
  if (options.epochs == 0 || options.batch_size == 0) {
    return Status::InvalidArgument("epochs/batch_size must be positive");
  }
  return Status::OK();
}

// Handles into the immortal metrics registry, resolved on first use so
// the epoch loop's updates stay allocation-free at steady state.
struct TrainerMetrics {
  obs::Counter& epochs;
  obs::Counter& batches;
  obs::Counter& samples_visited;
  obs::Gauge& loss_total;
  obs::Gauge& loss_hard;
  obs::Gauge& loss_pisl;
  obs::Gauge& loss_mki;
  obs::Gauge& samples_per_sec;
  obs::Gauge& keep_rate;
  obs::Gauge& rescale_mass;
  obs::Histogram& epoch_us;
};

TrainerMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static TrainerMetrics metrics{
      registry.GetCounter("kdsel.trainer.epochs"),
      registry.GetCounter("kdsel.trainer.batches"),
      registry.GetCounter("kdsel.trainer.samples_visited"),
      registry.GetGauge("kdsel.trainer.loss_total"),
      registry.GetGauge("kdsel.trainer.loss_hard"),
      registry.GetGauge("kdsel.trainer.loss_pisl"),
      registry.GetGauge("kdsel.trainer.loss_mki"),
      registry.GetGauge("kdsel.trainer.samples_per_sec"),
      registry.GetGauge("kdsel.pruning.keep_rate"),
      registry.GetGauge("kdsel.pruning.rescale_mass"),
      registry.GetHistogram("kdsel.trainer.epoch_us"),
  };
  return metrics;
}

/// Everything one epoch touches, bundled behind typed references so the
/// KDSEL_HOT epoch body is a standalone function the static allocation
/// walk (and a human reader) can audit in isolation. The scratch
/// members at the bottom persist across epochs, so their capacity is
/// paid once.
struct EpochContext {
  const TrainerOptions& options;
  const SelectorTrainingData& data;
  const nn::Tensor& soft_labels;
  MkiHead* mki;
  const nn::Tensor& text_embeddings;
  const std::vector<size_t>& text_index;
  std::vector<nn::Parameter*>& params;
  nn::Adam& optimizer;
  Pruner& pruner;
  Rng& rng;
  double alpha;
  size_t n;
  TrainStats* stats;
  TrainerMetrics& metrics;
  selectors::Backbone& backbone;
  nn::Linear& classifier;
  EpochPlan& plan;
  std::vector<size_t>& perm;
  std::vector<size_t>& idx;
  std::vector<float>& weights;
  std::vector<int>& batch_labels;
  std::vector<size_t>& soft_rows;
  std::vector<size_t>& text_rows;
  nn::Tensor& x;
  nn::Tensor& soft_batch;
  nn::Tensor& z_k;
  nn::LossResult& hard;
  nn::LossResult& soft;
  MkiHead::Result& mki_out;
};

/// One training epoch: prune-plan, shuffle, batched forward/backward,
/// optimizer step, metrics. KDSEL_HOT -- kdsel_lint walks everything
/// reachable from here and proves the steady-state loop allocates only
/// through audited boundaries (capacities are warmed by the setup code
/// in TrainSelector; train_alloc_test asserts the same at runtime).
KDSEL_HOT void RunEpoch(EpochContext& ctx, size_t epoch) {
  const TrainerOptions& options = ctx.options;
  const SelectorTrainingData& data = ctx.data;
  const nn::Tensor& soft_labels = ctx.soft_labels;
  MkiHead* mki = ctx.mki;
  const nn::Tensor& text_embeddings = ctx.text_embeddings;
  const std::vector<size_t>& text_index = ctx.text_index;
  std::vector<nn::Parameter*>& params = ctx.params;
  nn::Adam& optimizer = ctx.optimizer;
  Pruner& pruner = ctx.pruner;
  Rng& rng = ctx.rng;
  const double alpha = ctx.alpha;
  const size_t n = ctx.n;
  TrainStats* stats = ctx.stats;
  TrainerMetrics& metrics = ctx.metrics;
  selectors::Backbone& backbone = ctx.backbone;
  nn::Linear& classifier = ctx.classifier;
  EpochPlan& plan = ctx.plan;
  std::vector<size_t>& perm = ctx.perm;
  std::vector<size_t>& idx = ctx.idx;
  std::vector<float>& weights = ctx.weights;
  std::vector<int>& batch_labels = ctx.batch_labels;
  std::vector<size_t>& soft_rows = ctx.soft_rows;
  std::vector<size_t>& text_rows = ctx.text_rows;
  nn::Tensor& x = ctx.x;
  nn::Tensor& soft_batch = ctx.soft_batch;
  nn::Tensor& z_k = ctx.z_k;
  nn::LossResult& hard = ctx.hard;
  nn::LossResult& soft = ctx.soft;
  MkiHead::Result& mki_out = ctx.mki_out;

    KDSEL_SPAN("trainer.epoch");
    const uint64_t epoch_begin_ns = obs::NowNs();
    pruner.PlanEpoch(epoch, options.epochs, &plan);
    // Shuffle kept samples and their weights together.
    perm.resize(plan.kept.size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(perm);

    double epoch_loss = 0.0;
    double epoch_hard = 0.0;
    double epoch_pisl = 0.0;
    double epoch_mki = 0.0;
    size_t epoch_samples = 0;
    size_t epoch_batches = 0;
    for (size_t off = 0; off < perm.size(); off += options.batch_size) {
      const size_t end = std::min(perm.size(), off + options.batch_size);
      idx.clear();
      weights.clear();
      for (size_t i = off; i < end; ++i) {
        idx.push_back(plan.kept[perm[i]]);
        weights.push_back(plan.weights[perm[i]]);
      }
      // MKI's InfoNCE contrasts each sample against the rest of the
      // batch; a 1-sample batch has no negatives, so skip the remainder
      // batch in that degenerate case.
      if (idx.size() < 2 && options.use_mki) continue;

      GatherWindows(data.windows, idx, &x);
      nn::Tensor z = backbone.Forward(x, /*training=*/true);
      nn::Tensor logits = classifier.Forward(z, /*training=*/true);

      batch_labels.resize(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        batch_labels[i] = data.labels[idx[i]];
      }
      nn::SoftmaxCrossEntropyHard(logits, batch_labels, weights, &hard);
      // The blended gradient and per-sample losses are built in place on
      // the hard-CE result; it is not needed in pristine form afterward.
      nn::Tensor& grad_logits = hard.grad;
      std::vector<float>& per_sample = hard.per_sample;
      double batch_loss = hard.mean_loss;
      epoch_hard += hard.mean_loss;
      if (alpha > 0) {
        // Soft labels live one row per performance entry; resolve each
        // sample's (possibly shared) row before gathering.
        soft_rows.resize(idx.size());
        for (size_t i = 0; i < idx.size(); ++i) {
          soft_rows[i] = data.PerformanceRow(idx[i]);
        }
        GatherRows(soft_labels, soft_rows, &soft_batch);
        nn::SoftmaxCrossEntropySoft(logits, soft_batch, weights, &soft);
        // (1 - alpha) * L_CE + alpha * L_PISL.
        grad_logits.ScaleInPlace(static_cast<float>(1.0 - alpha));
        grad_logits.AxpyInPlace(static_cast<float>(alpha), soft.grad);
        batch_loss = (1.0 - alpha) * hard.mean_loss + alpha * soft.mean_loss;
        epoch_pisl += soft.mean_loss;
        for (size_t i = 0; i < per_sample.size(); ++i) {
          per_sample[i] = static_cast<float>((1.0 - alpha) * per_sample[i] +
                                             alpha * soft.per_sample[i]);
        }
      }

      nn::Tensor grad_z = classifier.Backward(grad_logits);
      if (mki) {
        text_rows.resize(idx.size());
        for (size_t i = 0; i < idx.size(); ++i) {
          text_rows[i] = text_index[idx[i]];
        }
        GatherRows(text_embeddings, text_rows, &z_k);
        // Text row ids double as group ids: windows sharing a metadata
        // text must not serve as each other's InfoNCE negatives.
        mki->ComputeLoss(z, z_k, weights, text_rows, &mki_out);
        grad_z.AddInPlace(mki_out.grad_z_t);
        batch_loss += mki_out.loss;
        epoch_mki += mki_out.loss;
        for (size_t i = 0; i < per_sample.size(); ++i) {
          per_sample[i] += static_cast<float>(options.lambda) *
                           mki_out.per_sample[i];
        }
      }
      backbone.Backward(grad_z);
      nn::ClipGradNorm(params, options.clip_norm);
      optimizer.Step();
      optimizer.ZeroGrad();

      for (size_t i = 0; i < idx.size(); ++i) {
        pruner.RecordLoss(idx[i], per_sample[i]);
      }
      epoch_loss += batch_loss;
      ++epoch_batches;
      epoch_samples += idx.size();
      if (stats) stats->samples_visited += idx.size();
    }
    const double inv_batches =
        epoch_batches ? 1.0 / static_cast<double>(epoch_batches) : 0.0;
    const double epoch_seconds =
        static_cast<double>(obs::NowNs() - epoch_begin_ns) / 1e9;
    const double samples_per_sec =
        epoch_seconds > 0.0 ? static_cast<double>(epoch_samples) / epoch_seconds
                            : 0.0;
    const double keep_rate =
        static_cast<double>(plan.kept.size()) / static_cast<double>(n);
    double rescale_mass = 0.0;
    for (float w : plan.weights) rescale_mass += w;
    metrics.epochs.Increment();
    metrics.batches.Increment(epoch_batches);
    metrics.samples_visited.Increment(epoch_samples);
    metrics.loss_total.Set(epoch_loss * inv_batches);
    metrics.loss_hard.Set(epoch_hard * inv_batches);
    metrics.loss_pisl.Set(epoch_pisl * inv_batches);
    metrics.loss_mki.Set(epoch_mki * inv_batches);
    metrics.samples_per_sec.Set(samples_per_sec);
    metrics.keep_rate.Set(keep_rate);
    metrics.rescale_mass.Set(rescale_mass);
    metrics.epoch_us.Record(epoch_seconds * 1e6);
    if (stats) {
      stats->epoch_loss.push_back(
          epoch_batches ? epoch_loss / static_cast<double>(epoch_batches)
                        : 0.0);
    }
    if (options.verbose) {
      std::fprintf(stderr,
                   "[trainer] epoch %zu/%zu: loss=%.4f (hard=%.4f pisl=%.4f "
                   "mki=%.4f) kept=%zu/%zu (%.1f%%) %.0f samples/s\n",
                   epoch + 1, options.epochs, epoch_loss * inv_batches,
                   epoch_hard * inv_batches, epoch_pisl * inv_batches,
                   epoch_mki * inv_batches, plan.kept.size(), n,
                   100.0 * keep_rate, samples_per_sec);
    }
    if (options.on_epoch_end) options.on_epoch_end(epoch);}

}  // namespace

TrainedSelector::TrainedSelector(
    std::unique_ptr<selectors::Backbone> backbone,
    std::unique_ptr<nn::Linear> classifier, size_t num_classes,
    std::string display_name)
    : backbone_(std::move(backbone)),
      classifier_(std::move(classifier)),
      num_classes_(num_classes),
      display_name_(std::move(display_name)) {}

Status TrainedSelector::Fit(const selectors::TrainingData& /*data*/) {
  return Status::FailedPrecondition(
      "TrainedSelector is produced by core::TrainSelector; call that instead");
}

StatusOr<nn::Tensor> TrainedSelector::Encode(
    const std::vector<std::vector<float>>& windows) const {
  if (windows.empty()) return Status::InvalidArgument("no windows");
  const size_t L = backbone_->input_length();
  for (const auto& w : windows) {
    if (w.size() != L) {
      return Status::InvalidArgument("window length mismatch with selector");
    }
  }
  nn::Tensor features({windows.size(), backbone_->feature_dim()});
  const size_t kBatch = 256;
  nn::Tensor x;
  for (size_t off = 0; off < windows.size(); off += kBatch) {
    // Batches are consecutive windows: copy the rows directly instead of
    // materializing an index vector of consecutive integers.
    const size_t bs = std::min(windows.size(), off + kBatch) - off;
    x.Resize({bs, L});
    for (size_t i = 0; i < bs; ++i) {
      std::copy(windows[off + i].begin(), windows[off + i].end(),
                x.raw() + i * L);
    }
    nn::Tensor z = backbone_->Forward(x, /*training=*/false);
    std::copy(z.raw(), z.raw() + z.size(),
              features.raw() + off * backbone_->feature_dim());
  }
  return features;
}

StatusOr<nn::Tensor> TrainedSelector::Logits(
    const std::vector<std::vector<float>>& windows) const {
  KDSEL_ASSIGN_OR_RETURN(nn::Tensor features, Encode(windows));
  return classifier_->Forward(features, /*training=*/false);
}

StatusOr<std::vector<int>> TrainedSelector::Predict(
    const std::vector<std::vector<float>>& windows) const {
  KDSEL_ASSIGN_OR_RETURN(nn::Tensor logits, Logits(windows));
  std::vector<int> out(windows.size());
  const size_t m = logits.dim(1);
  for (size_t i = 0; i < windows.size(); ++i) {
    const float* row = logits.raw() + i * m;
    size_t best = 0;
    for (size_t j = 1; j < m; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

std::vector<nn::Quantizable*> TrainedSelector::QuantizableLayers() const {
  auto* self = const_cast<TrainedSelector*>(this);
  std::vector<nn::Quantizable*> layers =
      nn::CollectQuantizableLayers(*self->backbone_);
  self->classifier_->CollectQuantizable(&layers);
  return layers;
}

bool TrainedSelector::IsInt8() const {
  for (nn::Quantizable* q : QuantizableLayers()) {
    if (q->IsQuantized()) return true;
  }
  return false;
}

StatusOr<std::unique_ptr<TrainedSelector>> TrainedSelector::QuantizeInt8(
    const std::vector<std::vector<float>>& calibration_windows) const {
  if (calibration_windows.empty()) {
    return Status::InvalidArgument("int8 calibration needs at least 1 window");
  }
  KDSEL_ASSIGN_OR_RETURN(auto quantized, Clone());
  std::vector<nn::Quantizable*> layers = quantized->QuantizableLayers();
  if (layers.empty()) {
    return Status::FailedPrecondition("architecture has no quantizable layer");
  }
  for (nn::Quantizable* q : layers) q->BeginQuantCalibration();
  // The calibration sweep is a plain inference pass: each layer records
  // the absmax of the activations it will later quantize.
  KDSEL_RETURN_NOT_OK(quantized->Logits(calibration_windows).status());
  for (nn::Quantizable* q : layers) q->EndQuantCalibration();
  return quantized;
}

StatusOr<std::unique_ptr<TrainedSelector>> TrainedSelector::Clone() const {
  Rng rng(0);  // Initialization is overwritten by the weight copy below.
  KDSEL_ASSIGN_OR_RETURN(
      auto backbone, selectors::BuildBackbone(backbone_->name(),
                                              backbone_->input_length(), rng));
  auto classifier =
      std::make_unique<nn::Linear>(backbone->feature_dim(), num_classes_, rng);

  auto collect = [](selectors::Backbone& b, nn::Linear& c) {
    std::vector<nn::Tensor*> tensors;
    for (nn::Parameter* p : b.Parameters()) tensors.push_back(&p->value);
    for (nn::Tensor* t : b.StateTensors()) tensors.push_back(t);
    for (nn::Parameter* p : c.Parameters()) tensors.push_back(&p->value);
    return tensors;
  };
  std::vector<nn::Tensor*> src = collect(*backbone_, *classifier_);
  std::vector<nn::Tensor*> dst = collect(*backbone, *classifier);
  if (src.size() != dst.size()) {
    return Status::Internal("clone rebuilt a different architecture");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i]->shape() != dst[i]->shape()) {
      return Status::Internal("clone tensor shape mismatch");
    }
    *dst[i] = *src[i];
  }
  auto clone = std::make_unique<TrainedSelector>(std::move(backbone),
                                                 std::move(classifier),
                                                 num_classes_, display_name_);
  if (IsInt8()) {
    // Re-quantize the clone from its (just copied) fp32 weights and the
    // source's activation scales; weight quantization is deterministic,
    // so the clone serves bit-identical int8 results.
    KDSEL_RETURN_NOT_OK(nn::ApplyActivationScales(
        clone->QuantizableLayers(),
        nn::CollectActivationScales(QuantizableLayers())));
  }
  return clone;
}

Status TrainedSelector::Save(const std::string& prefix) const {
  const bool int8 = IsInt8();
  std::ofstream meta(prefix + ".meta");
  if (!meta) return Status::IoError("cannot write " + prefix + ".meta");
  meta << "backbone=" << backbone_->name() << "\n";
  meta << "input_length=" << backbone_->input_length() << "\n";
  meta << "num_classes=" << num_classes_ << "\n";
  meta << "display_name=" << display_name_ << "\n";
  if (int8) meta << "quant=int8\n";
  if (!meta) return Status::IoError("write failed: " + prefix + ".meta");
  meta.close();

  std::vector<const nn::Tensor*> tensors;
  for (nn::Parameter* p : backbone_->Parameters()) tensors.push_back(&p->value);
  for (nn::Tensor* t : backbone_->StateTensors()) tensors.push_back(t);
  for (nn::Parameter* p : classifier_->Parameters()) tensors.push_back(&p->value);
  // Int8 checkpoints persist fp32 weights + the activation scales as one
  // trailing tensor: weight quantization is deterministic, so the scales
  // alone reproduce the quantized model bit-for-bit on load.
  nn::Tensor scales;
  if (int8) {
    const std::vector<float> flat =
        nn::CollectActivationScales(QuantizableLayers());
    scales.Resize({flat.size()});
    std::copy(flat.begin(), flat.end(), scales.raw());
    tensors.push_back(&scales);
  }
  return nn::WriteTensors(tensors, prefix + ".weights");
}

StatusOr<std::unique_ptr<TrainedSelector>> TrainedSelector::Load(
    const std::string& prefix) {
  std::ifstream meta(prefix + ".meta");
  if (!meta) return Status::IoError("cannot read " + prefix + ".meta");
  std::string backbone_name, display_name = "NN-selector";
  size_t input_length = 0, num_classes = 0;
  bool int8 = false;
  // Strict digit parsing: corrupt metadata must surface as a Status, not
  // as a std::stoul exception escaping the library.
  auto parse_size = [](const std::string& value, size_t& out) {
    auto parsed = ParseSize(value);
    if (!parsed.ok()) return false;
    out = *parsed;
    return true;
  };
  std::string line;
  while (std::getline(meta, line)) {
    auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(0, eq), value = line.substr(eq + 1);
    if (key == "backbone") backbone_name = value;
    if (key == "input_length" && !parse_size(value, input_length)) {
      return Status::IoError("invalid input_length in selector meta file");
    }
    if (key == "num_classes" && !parse_size(value, num_classes)) {
      return Status::IoError("invalid num_classes in selector meta file");
    }
    if (key == "display_name") display_name = value;
    if (key == "quant") {
      if (value != "int8") {
        return Status::IoError("unsupported quant mode in selector meta file");
      }
      int8 = true;
    }
  }
  if (backbone_name.empty() || input_length == 0 || num_classes == 0) {
    return Status::IoError("incomplete selector meta file");
  }
  Rng rng(0);  // Initialization is overwritten by the checkpoint load.
  KDSEL_ASSIGN_OR_RETURN(auto backbone,
                         selectors::BuildBackbone(backbone_name, input_length,
                                                  rng));
  auto classifier =
      std::make_unique<nn::Linear>(backbone->feature_dim(), num_classes, rng);

  KDSEL_ASSIGN_OR_RETURN(auto tensors, nn::ReadTensors(prefix + ".weights"));
  std::vector<nn::Tensor*> targets;
  for (nn::Parameter* p : backbone->Parameters()) targets.push_back(&p->value);
  for (nn::Tensor* t : backbone->StateTensors()) targets.push_back(t);
  for (nn::Parameter* p : classifier->Parameters()) targets.push_back(&p->value);
  // Int8 checkpoints carry one trailing activation-scales tensor past the
  // fp32 weights (see Save).
  const size_t expected = targets.size() + (int8 ? 1 : 0);
  if (expected != tensors.size()) {
    return Status::FailedPrecondition("checkpoint/architecture mismatch");
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i]->shape() != tensors[i].shape()) {
      return Status::FailedPrecondition("checkpoint tensor shape mismatch");
    }
    *targets[i] = std::move(tensors[i]);
  }
  auto selector = std::make_unique<TrainedSelector>(std::move(backbone),
                                                    std::move(classifier),
                                                    num_classes, display_name);
  if (int8) {
    const nn::Tensor& scales = tensors.back();
    KDSEL_RETURN_NOT_OK(nn::ApplyActivationScales(
        selector->QuantizableLayers(),
        std::vector<float>(scales.raw(), scales.raw() + scales.size())));
  }
  return selector;
}

StatusOr<std::unique_ptr<TrainedSelector>> TrainSelector(
    const SelectorTrainingData& data, const TrainerOptions& options,
    TrainStats* stats) {
  KDSEL_RETURN_NOT_OK(ValidateSelectorTrainingData(data, options));
  KDSEL_SPAN("trainer.train");
  const double t_begin = obs::NowSeconds();

  const size_t n = data.size();
  const size_t input_length = data.windows[0].size();
  const size_t m = data.num_classes;

  Rng rng(options.seed);
  KDSEL_ASSIGN_OR_RETURN(
      auto backbone,
      selectors::BuildBackbone(options.backbone, input_length, rng));
  auto classifier =
      std::make_unique<nn::Linear>(backbone->feature_dim(), m, rng);

  // PISL: precompute soft labels from the performance matrix.
  nn::Tensor soft_labels;
  if (options.use_pisl) {
    KDSEL_ASSIGN_OR_RETURN(soft_labels,
                           BuildSoftLabels(data.performance, options.t_soft));
  }

  // MKI: embed the metadata texts once with the frozen encoder. Texts
  // repeat heavily (every window of a series shares one text), so only
  // unique texts are encoded and samples index into them.
  std::unique_ptr<MkiHead> mki;
  nn::Tensor text_embeddings;
  std::vector<size_t> text_index;
  if (options.use_mki) {
    std::vector<std::string> unique_texts;
    std::map<std::string, size_t> text_ids;
    text_index.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const std::string& t = data.texts[data.TextRow(i)];
      auto [it, inserted] = text_ids.try_emplace(t, unique_texts.size());
      if (inserted) unique_texts.push_back(t);
      text_index.push_back(it->second);
    }
    text::HashedTextEncoder encoder;
    text_embeddings = encoder.EncodeBatch(unique_texts);
    MkiHead::Options mo;
    mo.ts_feature_dim = backbone->feature_dim();
    mo.text_feature_dim = encoder.output_dim();
    mo.hidden = options.mki_hidden;
    mo.shared_dim = options.mki_shared_dim;
    mo.temperature = options.infonce_temperature;
    mo.lambda = options.lambda;
    mki = std::make_unique<MkiHead>(mo, rng);
  }

  std::vector<nn::Parameter*> params = backbone->Parameters();
  for (auto* p : classifier->Parameters()) params.push_back(p);
  if (mki) {
    for (auto* p : mki->Parameters()) params.push_back(p);
  }
  nn::Adam optimizer(params, options.learning_rate, 0.9, 0.999, 1e-8,
                     options.weight_decay);

  Pruner pruner(options.pruning, n, data.windows);

  const double alpha = options.use_pisl ? options.alpha : 0.0;
  if (stats) {
    stats->samples_visited = 0;
    stats->full_dataset_visits = options.epochs * n;
    stats->epoch_loss.clear();
    stats->epoch_loss.reserve(options.epochs);
  }

  // Per-batch state hoisted out of the loops: vectors keep their
  // capacity and tensors their pooled buffers across batches, so after
  // the first epoch warms everything up the hot loop performs no heap
  // allocations (asserted by train_alloc_test).
  EpochPlan plan;
  std::vector<size_t> perm;
  std::vector<size_t> idx;
  std::vector<float> weights;
  std::vector<int> batch_labels;
  std::vector<size_t> soft_rows;
  std::vector<size_t> text_rows;
  nn::Tensor x, soft_batch, z_k;
  nn::LossResult hard, soft;
  MkiHead::Result mki_out;

  // Batch scratch capacity up front: the epoch loop must not grow them.
  idx.reserve(options.batch_size);
  weights.reserve(options.batch_size);

  TrainerMetrics& metrics = Metrics();
  EpochContext ctx{options,      data,     soft_labels, mki.get(),
                   text_embeddings,        text_index,  params,
                   optimizer,    pruner,   rng,         alpha,
                   n,            stats,    metrics,     *backbone,
                   *classifier,  plan,     perm,        idx,
                   weights,      batch_labels,          soft_rows,
                   text_rows,    x,        soft_batch,  z_k,
                   hard,         soft,     mki_out};
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    RunEpoch(ctx, epoch);
  }

  if (stats) {
    stats->train_seconds = obs::NowSeconds() - t_begin;
  }
  std::string display_name = options.backbone;
  if (options.use_pisl || options.use_mki ||
      options.pruning.mode != PruningMode::kNone) {
    display_name += "+KDSelector";
  }
  return std::make_unique<TrainedSelector>(std::move(backbone),
                                           std::move(classifier), m,
                                           display_name);
}

}  // namespace kdsel::core
