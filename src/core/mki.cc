#include "core/mki.h"

#include "obs/trace.h"

namespace kdsel::core {

MkiHead::MkiHead(const Options& options, Rng& rng) : options_(options) {
  KDSEL_CHECK(options_.ts_feature_dim > 0);
  h_t_.Add(std::make_unique<nn::Linear>(options_.ts_feature_dim,
                                        options_.hidden, rng));
  h_t_.Add(std::make_unique<nn::ReLU>());
  h_t_.Add(std::make_unique<nn::Linear>(options_.hidden, options_.shared_dim,
                                        rng));
  h_k_.Add(std::make_unique<nn::Linear>(options_.text_feature_dim,
                                        options_.hidden, rng));
  h_k_.Add(std::make_unique<nn::ReLU>());
  h_k_.Add(std::make_unique<nn::Linear>(options_.hidden, options_.shared_dim,
                                        rng));
}

std::vector<nn::Parameter*> MkiHead::Parameters() {
  std::vector<nn::Parameter*> params = h_t_.Parameters();
  for (auto* p : h_k_.Parameters()) params.push_back(p);
  return params;
}

MkiHead::Result MkiHead::ComputeLoss(const nn::Tensor& z_t,
                                     const nn::Tensor& z_k,
                                     const std::vector<float>& weights,
                                     const std::vector<size_t>& group_ids) {
  Result result;
  ComputeLoss(z_t, z_k, weights, group_ids, &result);
  return result;
}

void MkiHead::ComputeLoss(const nn::Tensor& z_t, const nn::Tensor& z_k,
                          const std::vector<float>& weights,
                          const std::vector<size_t>& group_ids,
                          Result* result) {
  KDSEL_CHECK(z_t.rank() == 2 && z_t.dim(1) == options_.ts_feature_dim);
  KDSEL_CHECK(z_k.rank() == 2 && z_k.dim(1) == options_.text_feature_dim);
  KDSEL_CHECK(z_t.dim(0) == z_k.dim(0));

  KDSEL_SPAN("mki.infonce");
  nn::Tensor proj_t = h_t_.Forward(z_t, /*training=*/true);
  nn::Tensor proj_k = h_k_.Forward(z_k, /*training=*/true);
  nn::InfoNce(proj_t, proj_k, options_.temperature, weights, group_ids,
              &nce_scratch_);

  // Scale by lambda and backpropagate through both projections. The
  // text encoder itself is frozen, so grad wrt z_k stops at h_k.
  const float lambda = static_cast<float>(options_.lambda);
  nce_scratch_.grad_a.ScaleInPlace(lambda);
  nce_scratch_.grad_b.ScaleInPlace(lambda);
  result->grad_z_t = h_t_.Backward(nce_scratch_.grad_a);
  (void)h_k_.Backward(nce_scratch_.grad_b);
  result->loss = options_.lambda * nce_scratch_.mean_loss;
  result->per_sample.assign(nce_scratch_.per_sample.begin(),
                            nce_scratch_.per_sample.end());
}

}  // namespace kdsel::core
