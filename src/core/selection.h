#ifndef KDSEL_CORE_SELECTION_H_
#define KDSEL_CORE_SELECTION_H_

#include <vector>

#include "common/status.h"
#include "selectors/selector.h"
#include "ts/window.h"

namespace kdsel::core {

/// Outcome of selecting a TSAD model for one series.
struct SeriesSelection {
  int model = 0;               ///< Winning model id.
  std::vector<int> votes;      ///< Vote count per model id.
  size_t num_windows = 0;
};

/// Majority-votes one model id from per-window predictions. Ties break
/// toward the lower model id, deterministically. Shared by the offline
/// protocol below and by the serving layer, which batches the selector
/// forward pass across concurrent requests and votes per request.
StatusOr<SeriesSelection> VoteSeriesSelection(const std::vector<int>& predictions,
                                              size_t num_classes);

/// Applies the paper's series-level protocol: extract fixed-length
/// windows from `series`, let the (window-level) selector predict a
/// model per window, and majority-vote one model for the series.
/// Ties break toward the lower model id, deterministically.
StatusOr<SeriesSelection> SelectSeriesModel(
    const selectors::Selector& selector, const ts::TimeSeries& series,
    const ts::WindowOptions& window_options, size_t num_classes);

/// Batch version over several series.
StatusOr<std::vector<SeriesSelection>> SelectSeriesModels(
    const selectors::Selector& selector,
    const std::vector<ts::TimeSeries>& series,
    const ts::WindowOptions& window_options, size_t num_classes);

}  // namespace kdsel::core

#endif  // KDSEL_CORE_SELECTION_H_
