#ifndef KDSEL_CORE_PIPELINE_H_
#define KDSEL_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/selection.h"
#include "core/trainer.h"
#include "metrics/range_metrics.h"
#include "ts/window.h"
#include "tsad/detector.h"

namespace kdsel::core {

/// Per-series label-generation result: the detector performance vector
/// P(M_j(T)) plus windows and metadata text derived from the series.
struct LabeledSeries {
  std::vector<float> performance;  ///< AUC-PR of each model on the series.
  int best_model = 0;
  std::string metadata_text;
  std::vector<std::vector<float>> windows;
};

/// Evaluates every detector on every series, fanning the (series,
/// detector) pairs across the shared thread pool; each pair writes a
/// disjoint slot so the matrix is identical at any KDSEL_THREADS
/// setting. Returns one performance row per series (row s = metric of
/// each model on *series[s]).
///
/// Failure semantics: a detector returning InvalidArgument for a series
/// (e.g. too short for its window) contributes the worst-case 0.0 and
/// bumps that detector's slot in `failure_counts` (sized to
/// models.size() when non-null). Any other error — IoError, Internal —
/// is a real fault and propagates, failing the whole build.
StatusOr<std::vector<std::vector<float>>> EvaluatePerformanceMatrix(
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const std::vector<const ts::TimeSeries*>& series,
    metrics::Metric metric = metrics::Metric::kAucPr,
    std::vector<size_t>* failure_counts = nullptr);

/// Runs every detector in `models` on `series` and scores it with the
/// chosen metric (Definition 2.1's P; defaults to the paper's AUC-PR)
/// against the series' ground-truth labels — the benchmark's
/// label-generation step. Requires a labeled series. Single-series
/// wrapper around EvaluatePerformanceMatrix with the same failure
/// semantics.
StatusOr<std::vector<float>> EvaluateDetectorsOnSeries(
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series,
    metrics::Metric metric = metrics::Metric::kAucPr,
    std::vector<size_t>* failure_counts = nullptr);

/// Builds window-level selector training data from labeled historical
/// series: every window of a series inherits the series' best model
/// (hard label), performance vector (PISL) and metadata text (MKI).
/// Performance rows and metadata texts are stored once per series and
/// referenced per window through `performance_index`/`text_index` —
/// windows of the same series share the row instead of copying it.
StatusOr<SelectorTrainingData> BuildSelectorTrainingData(
    const std::vector<ts::TimeSeries>& series,
    const std::vector<std::vector<float>>& performance,
    const ts::WindowOptions& window_options);

/// End-to-end TSAD-with-model-selection (the demo system's three-step
/// pipeline): given a trained selector and the model set, selects a
/// model per series, runs only that model, and reports its scores.
struct DetectionResult {
  int selected_model = 0;
  std::string model_name;
  std::vector<int> votes;
  std::vector<float> anomaly_scores;
  double auc_pr = 0.0;  ///< Only meaningful when the series has labels.
};

StatusOr<DetectionResult> DetectWithSelection(
    const selectors::Selector& selector,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series, const ts::WindowOptions& window_options);

/// The detection half of DetectWithSelection: runs the already-selected
/// model on the series and scores it against ground truth when labels
/// are present. Split out so the serving layer can batch the selection
/// step across concurrent requests and run detection per request.
StatusOr<DetectionResult> RunSelectedDetection(
    const SeriesSelection& selection,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series);

/// Saves/loads/lists named TrainedSelectors under a directory (the demo
/// system's Selector Management module).
class SelectorManager {
 public:
  explicit SelectorManager(std::string directory);

  Status Save(const TrainedSelector& selector, const std::string& name) const;
  StatusOr<std::unique_ptr<TrainedSelector>> Load(
      const std::string& name) const;
  StatusOr<std::vector<std::string>> List() const;
  Status Remove(const std::string& name) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string PathFor(const std::string& name) const;

  std::string directory_;
};

}  // namespace kdsel::core

#endif  // KDSEL_CORE_PIPELINE_H_
