#include "core/pipeline.h"

#include <algorithm>
#include <filesystem>

#include "common/parallel.h"
#include "datagen/benchmark.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kdsel::core {

namespace fs = std::filesystem;

namespace {

/// Outcome of one (series, detector) pair. Each parallel task owns
/// exactly one slot, so the matrix build needs no locks — in particular
/// none held across Detector::Score (the lock-across-score lint rule).
struct PairResult {
  float value = 0.0f;
  StatusCode code = StatusCode::kOk;
  bool score_failed = false;  ///< Error came from Score(), not the metric.
  std::string message;
};

}  // namespace

StatusOr<std::vector<std::vector<float>>> EvaluatePerformanceMatrix(
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const std::vector<const ts::TimeSeries*>& series, metrics::Metric metric,
    std::vector<size_t>* failure_counts) {
  KDSEL_SPAN("core.evaluate_performance_matrix");
  const size_t num_series = series.size();
  const size_t num_models = models.size();
  for (const ts::TimeSeries* s : series) {
    if (s == nullptr) return Status::InvalidArgument("null series pointer");
    if (!s->has_labels()) {
      return Status::InvalidArgument(
          "label generation requires ground-truth anomaly labels");
    }
  }
  if (failure_counts != nullptr) failure_counts->assign(num_models, 0);

  // Detector::Score is const and every pair touches a distinct slot, so
  // the fan-out is race-free and the matrix is order-independent.
  std::vector<PairResult> slots(num_series * num_models);
  obs::MetricsRegistry::Global()
      .GetCounter("kdsel.core.perf_matrix_pairs")
      .Increment(slots.size());
  ParallelFor(slots.size(), 1, [&](size_t begin, size_t end) {
    for (size_t pair = begin; pair < end; ++pair) {
      const size_t si = pair / num_models;
      const size_t mi = pair % num_models;
      PairResult& slot = slots[pair];
      auto scores = models[mi]->Score(*series[si]);
      if (!scores.ok()) {
        slot.code = scores.status().code();
        slot.score_failed = true;
        slot.message = scores.status().message();
        continue;
      }
      auto value = metrics::EvaluateMetric(metric, *scores, series[si]->labels());
      if (!value.ok()) {
        slot.code = value.status().code();
        slot.message = value.status().message();
        continue;
      }
      slot.value = static_cast<float>(*value);
    }
  });

  // Deterministic serial pass: classify failures in pair order. Only an
  // InvalidArgument from Score() (detector cannot handle the series,
  // e.g. too short) maps to worst-case performance; anything else is a
  // genuine fault and fails the build.
  std::vector<std::vector<float>> matrix(num_series,
                                         std::vector<float>(num_models, 0.0f));
  for (size_t pair = 0; pair < slots.size(); ++pair) {
    const PairResult& slot = slots[pair];
    const size_t si = pair / num_models;
    const size_t mi = pair % num_models;
    if (slot.code == StatusCode::kOk) {
      matrix[si][mi] = slot.value;
      continue;
    }
    if (slot.score_failed && slot.code == StatusCode::kInvalidArgument) {
      if (failure_counts != nullptr) ++(*failure_counts)[mi];
      continue;  // Worst-case 0.0 already in place.
    }
    return Status(slot.code, models[mi]->name() + " on series '" +
                                 series[si]->name() + "': " + slot.message);
  }
  return matrix;
}

StatusOr<std::vector<float>> EvaluateDetectorsOnSeries(
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series, metrics::Metric metric,
    std::vector<size_t>* failure_counts) {
  KDSEL_ASSIGN_OR_RETURN(
      auto matrix,
      EvaluatePerformanceMatrix(models, {&series}, metric, failure_counts));
  return std::move(matrix[0]);
}

StatusOr<SelectorTrainingData> BuildSelectorTrainingData(
    const std::vector<ts::TimeSeries>& series,
    const std::vector<std::vector<float>>& performance,
    const ts::WindowOptions& window_options) {
  if (series.size() != performance.size()) {
    return Status::InvalidArgument("series/performance size mismatch");
  }
  if (series.empty()) return Status::InvalidArgument("no series");
  SelectorTrainingData data;
  data.num_classes = performance[0].size();
  // One performance row / metadata text per series, shared by all of its
  // windows through the index vectors — windows used to copy both, which
  // blew memory up by the window count.
  for (size_t s = 0; s < series.size(); ++s) {
    if (performance[s].size() != data.num_classes) {
      return Status::InvalidArgument("ragged performance matrix");
    }
    const int best = static_cast<int>(
        std::max_element(performance[s].begin(), performance[s].end()) -
        performance[s].begin());
    KDSEL_ASSIGN_OR_RETURN(auto windows,
                           ts::ExtractWindows(series[s], s, window_options));
    if (windows.empty()) continue;
    const size_t row = data.performance.size();
    data.performance.push_back(performance[s]);
    data.texts.push_back(datagen::BuildMetadataText(series[s]));
    for (auto& w : windows) {
      data.windows.push_back(std::move(w.values));
      data.labels.push_back(best);
      data.performance_index.push_back(row);
      data.text_index.push_back(row);
    }
  }
  return data;
}

StatusOr<DetectionResult> DetectWithSelection(
    const selectors::Selector& selector,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series, const ts::WindowOptions& window_options) {
  KDSEL_ASSIGN_OR_RETURN(
      SeriesSelection sel,
      SelectSeriesModel(selector, series, window_options, models.size()));
  return RunSelectedDetection(sel, models, series);
}

StatusOr<DetectionResult> RunSelectedDetection(
    const SeriesSelection& selection,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series) {
  if (selection.model < 0 ||
      static_cast<size_t>(selection.model) >= models.size()) {
    return Status::InvalidArgument("selected model id out of range");
  }
  DetectionResult result;
  result.selected_model = selection.model;
  result.votes = selection.votes;
  result.model_name = models[static_cast<size_t>(selection.model)]->name();
  KDSEL_ASSIGN_OR_RETURN(
      result.anomaly_scores,
      models[static_cast<size_t>(selection.model)]->Score(series));
  if (series.has_labels()) {
    KDSEL_ASSIGN_OR_RETURN(
        result.auc_pr,
        metrics::AucPr(result.anomaly_scores, series.labels()));
  }
  return result;
}

SelectorManager::SelectorManager(std::string directory)
    : directory_(std::move(directory)) {}

std::string SelectorManager::PathFor(const std::string& name) const {
  return (fs::path(directory_) / name).string();
}

Status SelectorManager::Save(const TrainedSelector& selector,
                             const std::string& name) const {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("invalid selector name: " + name);
  }
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) return Status::IoError("cannot create directory: " + directory_);
  return selector.Save(PathFor(name));
}

StatusOr<std::unique_ptr<TrainedSelector>> SelectorManager::Load(
    const std::string& name) const {
  return TrainedSelector::Load(PathFor(name));
}

StatusOr<std::vector<std::string>> SelectorManager::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  if (!fs::exists(directory_, ec)) return names;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".meta") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) return Status::IoError("cannot list " + directory_);
  std::sort(names.begin(), names.end());
  return names;
}

Status SelectorManager::Remove(const std::string& name) const {
  std::error_code ec;
  bool removed_meta = fs::remove(PathFor(name) + ".meta", ec);
  bool removed_weights = fs::remove(PathFor(name) + ".weights", ec);
  if (!removed_meta && !removed_weights) {
    return Status::NotFound("no saved selector named " + name);
  }
  return Status::OK();
}

}  // namespace kdsel::core
