#include "core/pipeline.h"

#include <algorithm>
#include <filesystem>

#include "datagen/benchmark.h"
#include "metrics/metrics.h"

namespace kdsel::core {

namespace fs = std::filesystem;

StatusOr<std::vector<float>> EvaluateDetectorsOnSeries(
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series, metrics::Metric metric) {
  if (!series.has_labels()) {
    return Status::InvalidArgument(
        "label generation requires ground-truth anomaly labels");
  }
  std::vector<float> performance;
  performance.reserve(models.size());
  for (const auto& model : models) {
    auto scores = model->Score(series);
    if (!scores.ok()) {
      // A detector that cannot handle this series (e.g. too short)
      // contributes the worst possible performance instead of failing
      // the whole pipeline.
      performance.push_back(0.0f);
      continue;
    }
    KDSEL_ASSIGN_OR_RETURN(
        double value,
        metrics::EvaluateMetric(metric, *scores, series.labels()));
    performance.push_back(static_cast<float>(value));
  }
  return performance;
}

StatusOr<SelectorTrainingData> BuildSelectorTrainingData(
    const std::vector<ts::TimeSeries>& series,
    const std::vector<std::vector<float>>& performance,
    const ts::WindowOptions& window_options) {
  if (series.size() != performance.size()) {
    return Status::InvalidArgument("series/performance size mismatch");
  }
  if (series.empty()) return Status::InvalidArgument("no series");
  SelectorTrainingData data;
  data.num_classes = performance[0].size();
  for (size_t s = 0; s < series.size(); ++s) {
    if (performance[s].size() != data.num_classes) {
      return Status::InvalidArgument("ragged performance matrix");
    }
    const int best = static_cast<int>(
        std::max_element(performance[s].begin(), performance[s].end()) -
        performance[s].begin());
    const std::string text = datagen::BuildMetadataText(series[s]);
    KDSEL_ASSIGN_OR_RETURN(auto windows,
                           ts::ExtractWindows(series[s], s, window_options));
    for (auto& w : windows) {
      data.windows.push_back(std::move(w.values));
      data.labels.push_back(best);
      data.performance.push_back(performance[s]);
      data.texts.push_back(text);
    }
  }
  return data;
}

StatusOr<DetectionResult> DetectWithSelection(
    const selectors::Selector& selector,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series, const ts::WindowOptions& window_options) {
  KDSEL_ASSIGN_OR_RETURN(
      SeriesSelection sel,
      SelectSeriesModel(selector, series, window_options, models.size()));
  return RunSelectedDetection(sel, models, series);
}

StatusOr<DetectionResult> RunSelectedDetection(
    const SeriesSelection& selection,
    const std::vector<std::unique_ptr<tsad::Detector>>& models,
    const ts::TimeSeries& series) {
  if (selection.model < 0 ||
      static_cast<size_t>(selection.model) >= models.size()) {
    return Status::InvalidArgument("selected model id out of range");
  }
  DetectionResult result;
  result.selected_model = selection.model;
  result.votes = selection.votes;
  result.model_name = models[static_cast<size_t>(selection.model)]->name();
  KDSEL_ASSIGN_OR_RETURN(
      result.anomaly_scores,
      models[static_cast<size_t>(selection.model)]->Score(series));
  if (series.has_labels()) {
    KDSEL_ASSIGN_OR_RETURN(
        result.auc_pr,
        metrics::AucPr(result.anomaly_scores, series.labels()));
  }
  return result;
}

SelectorManager::SelectorManager(std::string directory)
    : directory_(std::move(directory)) {}

std::string SelectorManager::PathFor(const std::string& name) const {
  return (fs::path(directory_) / name).string();
}

Status SelectorManager::Save(const TrainedSelector& selector,
                             const std::string& name) const {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("invalid selector name: " + name);
  }
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) return Status::IoError("cannot create directory: " + directory_);
  return selector.Save(PathFor(name));
}

StatusOr<std::unique_ptr<TrainedSelector>> SelectorManager::Load(
    const std::string& name) const {
  return TrainedSelector::Load(PathFor(name));
}

StatusOr<std::vector<std::string>> SelectorManager::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  if (!fs::exists(directory_, ec)) return names;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".meta") {
      names.push_back(entry.path().stem().string());
    }
  }
  if (ec) return Status::IoError("cannot list " + directory_);
  std::sort(names.begin(), names.end());
  return names;
}

Status SelectorManager::Remove(const std::string& name) const {
  std::error_code ec;
  bool removed_meta = fs::remove(PathFor(name) + ".meta", ec);
  bool removed_weights = fs::remove(PathFor(name) + ".weights", ec);
  if (!removed_meta && !removed_weights) {
    return Status::NotFound("no saved selector named " + name);
  }
  return Status::OK();
}

}  // namespace kdsel::core
