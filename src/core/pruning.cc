#include "core/pruning.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/parallel.h"
#include "lsh/simhash.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kdsel::core {

namespace {

// Handles into the immortal metrics registry, resolved on first use.
struct PruningMetrics {
  obs::Counter& pruned_low;
  obs::Counter& pruned_redundant;
  obs::Gauge& multi_buckets;
  obs::Gauge& singleton_buckets;
  obs::Histogram& plan_us;
};

PruningMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static PruningMetrics metrics{
      registry.GetCounter("kdsel.pruning.pruned_low"),
      registry.GetCounter("kdsel.pruning.pruned_redundant"),
      registry.GetGauge("kdsel.pruning.multi_buckets"),
      registry.GetGauge("kdsel.pruning.singleton_buckets"),
      registry.GetHistogram("kdsel.pruning.plan_us"),
  };
  return metrics;
}

}  // namespace

const char* PruningModeToString(PruningMode mode) {
  switch (mode) {
    case PruningMode::kNone:
      return "none";
    case PruningMode::kInfoBatch:
      return "infobatch";
    case PruningMode::kPa:
      return "pa";
  }
  return "unknown";
}

Pruner::Pruner(const PrunerOptions& options, size_t num_samples,
               const std::vector<std::vector<float>>& samples)
    : options_(options),
      num_samples_(num_samples),
      rng_(options.seed),
      avg_loss_(num_samples, 0.0),
      seen_(num_samples, 0) {
  KDSEL_CHECK(options_.prune_ratio >= 0.0 && options_.prune_ratio < 1.0);
  if (options_.mode == PruningMode::kPa) {
    KDSEL_CHECK(samples.size() == num_samples);
    KDSEL_CHECK(!samples.empty());
    lsh::SimHash hasher(samples[0].size(), options_.lsh_bits,
                        options_.seed ^ 0xabcdef12345ull);
    signatures_.resize(num_samples);
    // Signature is a pure dot-product hash; each sample owns one slot.
    ParallelFor(num_samples, 32, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        signatures_[i] = hasher.Signature(samples[i]);
      }
    });
  }
}

void Pruner::RecordLoss(size_t sample, double loss) {
  KDSEL_DCHECK(sample < num_samples_);
  // Running mean over all epochs the sample participated in (the
  // paper's average loss over past epochs).
  const double n = static_cast<double>(++seen_[sample]);
  avg_loss_[sample] += (loss - avg_loss_[sample]) / n;
}

double Pruner::MeanLoss() const {
  // Mean over samples with at least one observation.
  double total = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < num_samples_; ++i) {
    if (seen_[i]) {
      total += avg_loss_[i];
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

EpochPlan Pruner::PlanEpoch(size_t epoch, size_t total_epochs) {
  EpochPlan plan;
  PlanEpoch(epoch, total_epochs, &plan);
  return plan;
}

void Pruner::PlanEpoch(size_t epoch, size_t total_epochs, EpochPlan* plan) {
  KDSEL_SPAN("pruning.plan_epoch");
  const uint64_t begin_ns = obs::NowNs();
  plan->full_pass = false;
  plan->pruned_low = 0;
  plan->pruned_redundant = 0;
  plan->pa_buckets = 0;
  plan->pa_singletons = 0;
  const bool anneal =
      total_epochs > 0 &&
      static_cast<double>(epoch) >=
          (1.0 - options_.anneal_fraction) * static_cast<double>(total_epochs);
  const bool first_epoch = epoch == 0;
  if (options_.mode == PruningMode::kNone || anneal || first_epoch) {
    plan->full_pass = true;
    plan->kept.resize(num_samples_);
    std::iota(plan->kept.begin(), plan->kept.end(), size_t{0});
    plan->weights.assign(num_samples_, 1.0f);
    return;
  }
  plan->kept.clear();
  plan->weights.clear();
  if (options_.mode == PruningMode::kInfoBatch) {
    PlanInfoBatch(plan);
  } else {
    PlanPa(plan);
  }
  PruningMetrics& metrics = Metrics();
  metrics.pruned_low.Increment(plan->pruned_low);
  metrics.pruned_redundant.Increment(plan->pruned_redundant);
  metrics.multi_buckets.Set(static_cast<double>(plan->pa_buckets));
  metrics.singleton_buckets.Set(static_cast<double>(plan->pa_singletons));
  metrics.plan_us.Record(static_cast<double>(obs::NowNs() - begin_ns) / 1e3);
}

void Pruner::PlanInfoBatch(EpochPlan* plan) {
  const double mean = MeanLoss();
  const double r = options_.prune_ratio;
  const float rescale = static_cast<float>(1.0 / (1.0 - r));
  for (size_t i = 0; i < num_samples_; ++i) {
    const bool low = seen_[i] && avg_loss_[i] < mean;
    if (low) {
      if (rng_.Bernoulli(r)) {  // pruned this epoch
        ++plan->pruned_low;
        continue;
      }
      plan->kept.push_back(i);
      plan->weights.push_back(rescale);
    } else {
      plan->kept.push_back(i);
      plan->weights.push_back(1.0f);
    }
  }
}

void Pruner::PlanPa(EpochPlan* plan) {
  const double mean = MeanLoss();
  const double r = options_.prune_ratio;
  const float rescale = static_cast<float>(1.0 / (1.0 - r));

  // Low-loss samples: pruned exactly as InfoBatch, no bucketing.
  std::vector<size_t> high;
  for (size_t i = 0; i < num_samples_; ++i) {
    const bool low = seen_[i] && avg_loss_[i] < mean;
    if (low) {
      if (rng_.Bernoulli(r)) {
        ++plan->pruned_low;
        continue;
      }
      plan->kept.push_back(i);
      plan->weights.push_back(rescale);
    } else {
      high.push_back(i);
    }
  }

  if (high.empty()) return;

  // Equi-depth binning of high-loss samples by current average loss:
  // sort by loss, then cut into `num_bins` equal-count bins.
  std::vector<size_t> order = high;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (avg_loss_[a] != avg_loss_[b]) return avg_loss_[a] < avg_loss_[b];
    return a < b;  // deterministic tie-break
  });
  const size_t bins = std::max<size_t>(1, options_.num_bins);
  std::vector<size_t> bin_of(num_samples_, 0);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    bin_of[order[pos]] = pos * bins / order.size();
  }

  // Buckets = (LSH signature, loss bin). Samples in a multi-sample
  // bucket are similar in value (same signature) and in loss (same
  // equi-depth bin) => redundant per Sect. A.1 => prunable.
  std::map<std::pair<uint64_t, size_t>, std::vector<size_t>> buckets;
  for (size_t i : high) {
    buckets[{signatures_[i], bin_of[i]}].push_back(i);
  }
  for (auto& [key, members] : buckets) {
    if (members.size() <= 1) {
      // Singleton buckets carry non-redundant information: keep as-is.
      ++plan->pa_singletons;
      plan->kept.push_back(members[0]);
      plan->weights.push_back(1.0f);
      continue;
    }
    ++plan->pa_buckets;
    for (size_t i : members) {
      if (rng_.Bernoulli(r)) {
        ++plan->pruned_redundant;
        continue;
      }
      plan->kept.push_back(i);
      plan->weights.push_back(rescale);
    }
  }
}

}  // namespace kdsel::core
