#ifndef KDSEL_CORE_TRAINER_H_
#define KDSEL_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/mki.h"
#include "core/pruning.h"
#include "nn/layers.h"
#include "selectors/backbone.h"
#include "selectors/selector.h"
#include "text/text_encoder.h"

namespace kdsel::core {

/// Training set for an NN selector, carrying the knowledge sources the
/// KDSelector modules consume beyond windows + hard labels:
/// `performance` (detector scores) feeds PISL and `texts`
/// (natural-language metadata) feeds MKI. Both are optional; the
/// trainer degrades to the standard framework without them.
///
/// Two layouts are supported. Per-sample (legacy): `performance`/`texts`
/// hold one entry per window and the index vectors stay empty. Shared
/// (what BuildSelectorTrainingData emits): one entry per *series*, with
/// `performance_index`/`text_index` mapping each window to its series'
/// row — all windows of a series share storage instead of copying it.
struct SelectorTrainingData {
  std::vector<std::vector<float>> windows;        ///< [N][L].
  std::vector<int> labels;                        ///< [N] hard labels.
  std::vector<std::vector<float>> performance;    ///< [N][m], [P][m] or empty.
  std::vector<size_t> performance_index;  ///< [N] row per window, or empty.
  std::vector<std::string> texts;                 ///< [N], [P] or empty.
  std::vector<size_t> text_index;         ///< [N] text per window, or empty.
  size_t num_classes = 0;

  size_t size() const { return windows.size(); }

  /// Performance row feeding sample i (resolves the optional indirection).
  size_t PerformanceRow(size_t i) const {
    return performance_index.empty() ? i : performance_index[i];
  }
  /// Text entry feeding sample i.
  size_t TextRow(size_t i) const {
    return text_index.empty() ? i : text_index[i];
  }
};

/// All knobs of the KDSelector learning framework. The three paper
/// modules are independently switchable (plug-and-play):
/// PISL via `use_pisl`, MKI via `use_mki`, PA/InfoBatch via `pruning`.
struct TrainerOptions {
  std::string backbone = "ResNet";
  size_t epochs = 15;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;
  double clip_norm = 5.0;  ///< Gradient bound (Sect. A.1 assumption).

  // PISL.
  bool use_pisl = false;
  double t_soft = 0.2;  ///< Paper selects from {0.2, 0.22, 0.25}.
  double alpha = 0.4;    ///< Paper selects from {0.2, 0.4, 1.0}.

  // MKI.
  bool use_mki = false;
  double lambda = 1.0;          ///< Paper selects from {0.78, 1.0}.
  size_t mki_shared_dim = 64;   ///< H, from {64, 256}.
  size_t mki_hidden = 256;
  double infonce_temperature = 0.1;

  // PA / InfoBatch.
  PrunerOptions pruning;

  uint64_t seed = 1;
  bool verbose = false;

  /// Test/diagnostic hook invoked after each completed epoch (0-based).
  /// The allocation-regression test uses it to snapshot heap counters at
  /// epoch boundaries; leave empty in production use.
  std::function<void(size_t)> on_epoch_end;
};

/// Statistics of one training run, used by the benches to report the
/// paper's time/AUC trade-offs.
struct TrainStats {
  double train_seconds = 0.0;
  size_t samples_visited = 0;  ///< Total window visits across epochs.
  size_t full_dataset_visits = 0;  ///< epochs * N, for savings ratios.
  std::vector<double> epoch_loss;
};

/// An NN selector after training: encoder backbone + linear classifier.
/// Implements the generic window-level Selector interface and exposes
/// features/logits for analysis and the MKI/PISL internals for tests.
class TrainedSelector : public selectors::Selector {
 public:
  TrainedSelector(std::unique_ptr<selectors::Backbone> backbone,
                  std::unique_ptr<nn::Linear> classifier, size_t num_classes,
                  std::string display_name);

  std::string name() const override { return display_name_; }
  /// TrainedSelector is produced by TrainSelector; Fit is not supported.
  Status Fit(const selectors::TrainingData& data) override;
  StatusOr<std::vector<int>> Predict(
      const std::vector<std::vector<float>>& windows) const override;

  /// Encoder features z_T for a window batch (inference mode).
  StatusOr<nn::Tensor> Encode(
      const std::vector<std::vector<float>>& windows) const;
  /// Classifier logits for a window batch (inference mode).
  StatusOr<nn::Tensor> Logits(
      const std::vector<std::vector<float>>& windows) const;

  selectors::Backbone& backbone() { return *backbone_; }
  nn::Linear& classifier() { return *classifier_; }
  size_t num_classes() const { return num_classes_; }
  size_t input_length() const { return backbone_->input_length(); }

  /// Deep copy: rebuilds the architecture and copies every parameter and
  /// state tensor. Forward passes cache activations inside the modules,
  /// so a single TrainedSelector must not run Predict from two threads;
  /// concurrent servers give each worker its own clone instead.
  /// Int8 quantization carries over: a clone of a quantized selector
  /// serves int8 (serve workers run on clones).
  StatusOr<std::unique_ptr<TrainedSelector>> Clone() const;

  /// Post-training int8 quantization: clones this selector, runs an
  /// inference calibration sweep over `calibration_windows` to record
  /// per-tensor activation ranges, then quantizes every Linear/Conv1d/
  /// attention projection to int8 with per-output-channel weight scales.
  /// The original selector is untouched; training state does not carry
  /// over (the quantized copy is inference-only in practice, though its
  /// fp32 master weights remain intact).
  StatusOr<std::unique_ptr<TrainedSelector>> QuantizeInt8(
      const std::vector<std::vector<float>>& calibration_windows) const;

  /// True when the selector runs int8 inference (any layer quantized).
  bool IsInt8() const;

  /// Persists architecture info + weights as `<prefix>.meta` and
  /// `<prefix>.weights`.
  Status Save(const std::string& prefix) const;
  /// Restores a selector saved with Save.
  static StatusOr<std::unique_ptr<TrainedSelector>> Load(
      const std::string& prefix);

 private:
  /// Quantizable layers in serialization order (backbone depth-first,
  /// then classifier). Collection mutates nothing, hence the const_cast.
  std::vector<nn::Quantizable*> QuantizableLayers() const;

  std::unique_ptr<selectors::Backbone> backbone_;
  std::unique_ptr<nn::Linear> classifier_;
  size_t num_classes_;
  std::string display_name_;
};

/// Trains an NN selector with the KDSelector framework (paper Fig. 2):
/// standard hard-label cross-entropy, optionally blended with the PISL
/// soft-label term, optionally joined by the MKI InfoNCE term, iterating
/// only over the samples chosen per epoch by the configured pruner.
StatusOr<std::unique_ptr<TrainedSelector>> TrainSelector(
    const SelectorTrainingData& data, const TrainerOptions& options,
    TrainStats* stats);

}  // namespace kdsel::core

#endif  // KDSEL_CORE_TRAINER_H_
