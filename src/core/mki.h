#ifndef KDSEL_CORE_MKI_H_
#define KDSEL_CORE_MKI_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/module.h"

namespace kdsel::core {

/// MKI (meta-knowledge integration), paper Sect. 3.
///
/// Holds the two trainable projections h_T (time-series features -> H)
/// and h_K (frozen text embeddings -> H) and computes the InfoNCE loss
/// between the projected views, which lower-bounds the mutual
/// information between time-series features and metadata text.
///
/// Usage per training step:
///   auto out = head.ComputeLoss(z_t, z_k, weights);   // accumulates
///   encoder_grad += out.grad_z_t * lambda (already scaled);
/// The projections' parameter gradients are accumulated internally, so
/// include head.Parameters() in the optimizer's parameter list.
class MkiHead {
 public:
  struct Options {
    size_t ts_feature_dim = 0;    ///< D of the backbone (required).
    size_t text_feature_dim = 768;
    size_t hidden = 256;          ///< MLP hidden width (paper: 256).
    size_t shared_dim = 64;       ///< H (paper selects from {64, 256}).
    double temperature = 0.1;     ///< InfoNCE temperature (paper: 0.1).
    double lambda = 1.0;          ///< Loss weight (paper sweeps {0.78, 1}).
  };

  MkiHead(const Options& options, Rng& rng);

  struct Result {
    double loss = 0.0;                  ///< lambda * mean InfoNCE.
    std::vector<float> per_sample;      ///< Unweighted per-sample InfoNCE.
    nn::Tensor grad_z_t;                ///< d(lambda*loss)/d z_T, [B, D].
  };

  /// Computes the weighted MKI loss for a batch, accumulating gradients
  /// into the projection parameters and returning the gradient w.r.t.
  /// the time-series features so the caller can continue backprop into
  /// the encoder. `group_ids` (empty or size B) marks samples sharing
  /// one metadata text; same-group pairs are excluded as InfoNCE
  /// negatives (they are false negatives).
  Result ComputeLoss(const nn::Tensor& z_t, const nn::Tensor& z_k,
                     const std::vector<float>& weights,
                     const std::vector<size_t>& group_ids = {});
  /// Out-param form: reuses `result`'s buffers (and an internal InfoNCE
  /// scratch) so the trainer's batch loop stays allocation-free at
  /// steady state. `group_ids` is required here to keep the overload
  /// set unambiguous.
  void ComputeLoss(const nn::Tensor& z_t, const nn::Tensor& z_k,
                   const std::vector<float>& weights,
                   const std::vector<size_t>& group_ids, Result* result);

  std::vector<nn::Parameter*> Parameters();

  const Options& options() const { return options_; }

 private:
  Options options_;
  nn::Sequential h_t_;
  nn::Sequential h_k_;
  nn::InfoNceResult nce_scratch_;
};

}  // namespace kdsel::core

#endif  // KDSEL_CORE_MKI_H_
