#ifndef KDSEL_CORE_PRUNING_H_
#define KDSEL_CORE_PRUNING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace kdsel::core {

/// Which dynamic data-pruning strategy the trainer applies per epoch.
enum class PruningMode {
  kNone,       ///< Iterate all samples every epoch (standard SGD).
  kInfoBatch,  ///< Qin et al. ICLR'24: prune low-loss samples, rescale.
  kPa,         ///< The paper's PA: InfoBatch + LSH/loss-bin bucketing of
               ///< high-loss samples to also prune redundant ones.
};

const char* PruningModeToString(PruningMode mode);

/// The samples an epoch will visit plus each sample's gradient-rescale
/// weight (1 for untouched samples, 1/(1-r) for survivors of a pruned
/// group — the unbiasedness correction of paper Sect. A.2).
struct EpochPlan {
  std::vector<size_t> kept;
  std::vector<float> weights;  ///< Parallel to `kept`.

  // Planner statistics for the epoch, reset by every PlanEpoch call.
  // Surfaced as kdsel.pruning.* metrics and in the trainer's verbose
  // per-epoch log.
  bool full_pass = false;        ///< No pruning (mode none/anneal/epoch 0).
  size_t pruned_low = 0;         ///< Low-loss samples pruned (InfoBatch rule).
  size_t pruned_redundant = 0;   ///< High-loss samples pruned from buckets.
  size_t pa_buckets = 0;         ///< Multi-member (signature, bin) buckets.
  size_t pa_singletons = 0;      ///< Singleton buckets (kept unconditionally).
};

/// Options shared by the pruning strategies.
struct PrunerOptions {
  PruningMode mode = PruningMode::kNone;
  double prune_ratio = 0.8;      ///< r (paper: 0.8).
  size_t lsh_bits = 14;          ///< PA: SimHash signature width.
  size_t num_bins = 8;           ///< PA: equi-depth loss bins p.
  /// Final fraction of epochs trained on full data (InfoBatch's
  /// annealing; prevents end-of-training bias).
  double anneal_fraction = 0.125;
  uint64_t seed = 97;
};

/// Per-epoch sample pruning with persistent loss statistics.
///
/// The trainer feeds back observed per-sample losses after each epoch
/// via RecordLosses; PlanEpoch consumes the running mean losses to pick
/// the next epoch's samples. Samples never observed yet are treated as
/// high-loss (never pruned as "easy").
class Pruner {
 public:
  /// `samples` are the raw sample vectors used only when mode == kPa to
  /// build LSH signatures (values are training-invariant, so this
  /// happens once, before training — paper Sect. 3).
  Pruner(const PrunerOptions& options, size_t num_samples,
         const std::vector<std::vector<float>>& samples);

  /// Chooses the samples for `epoch` (0-based) of `total_epochs`.
  EpochPlan PlanEpoch(size_t epoch, size_t total_epochs);
  /// Out-param form: reuses `plan`'s vector capacity so the trainer's
  /// epoch loop stays allocation-free at steady state.
  void PlanEpoch(size_t epoch, size_t total_epochs, EpochPlan* plan);

  /// Updates the running average loss of `sample` with an observation.
  void RecordLoss(size_t sample, double loss);

  /// Mean of current average losses over all samples (the paper's L-bar).
  double MeanLoss() const;

  /// Average loss of one sample (0 until first observation).
  double SampleLoss(size_t i) const { return avg_loss_[i]; }
  bool SampleSeen(size_t i) const { return seen_[i] != 0; }

  const PrunerOptions& options() const { return options_; }

 private:
  void PlanInfoBatch(EpochPlan* plan);
  void PlanPa(EpochPlan* plan);

  PrunerOptions options_;
  size_t num_samples_;
  Rng rng_;
  std::vector<double> avg_loss_;
  std::vector<uint32_t> seen_;     ///< Observation counts.
  std::vector<uint64_t> signatures_;  ///< LSH signature per sample (PA).
};

}  // namespace kdsel::core

#endif  // KDSEL_CORE_PRUNING_H_
