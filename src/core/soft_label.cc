#include "core/soft_label.h"

#include <algorithm>
#include <cmath>

namespace kdsel::core {

StatusOr<nn::Tensor> BuildSoftLabels(
    const std::vector<std::vector<float>>& performance, double t_soft) {
  if (performance.empty()) {
    return Status::InvalidArgument("empty performance matrix");
  }
  if (t_soft <= 0) {
    return Status::InvalidArgument("t_soft must be positive");
  }
  const size_t n = performance.size();
  const size_t m = performance[0].size();
  nn::Tensor out({n, m});
  for (size_t i = 0; i < n; ++i) {
    if (performance[i].size() != m) {
      return Status::InvalidArgument("ragged performance matrix");
    }
    float mx = performance[i][0];
    for (float p : performance[i]) mx = std::max(mx, p);
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      const double e = std::exp((performance[i][j] - mx) / t_soft);
      out.At(i, j) = static_cast<float>(e);
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < m; ++j) out.At(i, j) *= inv;
  }
  return out;
}

std::vector<int> HardLabelsFromPerformance(
    const std::vector<std::vector<float>>& performance) {
  std::vector<int> labels;
  labels.reserve(performance.size());
  for (const auto& row : performance) {
    labels.push_back(static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin()));
  }
  return labels;
}

}  // namespace kdsel::core
