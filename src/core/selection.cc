#include "core/selection.h"

#include <algorithm>

namespace kdsel::core {

StatusOr<SeriesSelection> VoteSeriesSelection(
    const std::vector<int>& predictions, size_t num_classes) {
  if (num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (predictions.empty()) {
    return Status::InvalidArgument("no window predictions to vote over");
  }
  SeriesSelection out;
  out.votes.assign(num_classes, 0);
  out.num_windows = predictions.size();
  for (int p : predictions) {
    if (p < 0 || static_cast<size_t>(p) >= num_classes) {
      return Status::Internal("selector predicted out-of-range model id");
    }
    ++out.votes[static_cast<size_t>(p)];
  }
  out.model = static_cast<int>(
      std::max_element(out.votes.begin(), out.votes.end()) -
      out.votes.begin());
  return out;
}

StatusOr<SeriesSelection> SelectSeriesModel(
    const selectors::Selector& selector, const ts::TimeSeries& series,
    const ts::WindowOptions& window_options, size_t num_classes) {
  if (num_classes == 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  KDSEL_ASSIGN_OR_RETURN(auto windows,
                         ts::ExtractWindows(series, 0, window_options));
  if (windows.empty()) {
    return Status::InvalidArgument("series produced no windows");
  }
  std::vector<std::vector<float>> rows;
  rows.reserve(windows.size());
  for (auto& w : windows) rows.push_back(std::move(w.values));
  KDSEL_ASSIGN_OR_RETURN(auto pred, selector.Predict(rows));
  return VoteSeriesSelection(pred, num_classes);
}

StatusOr<std::vector<SeriesSelection>> SelectSeriesModels(
    const selectors::Selector& selector,
    const std::vector<ts::TimeSeries>& series,
    const ts::WindowOptions& window_options, size_t num_classes) {
  std::vector<SeriesSelection> out;
  out.reserve(series.size());
  for (const auto& s : series) {
    KDSEL_ASSIGN_OR_RETURN(
        auto sel, SelectSeriesModel(selector, s, window_options, num_classes));
    out.push_back(std::move(sel));
  }
  return out;
}

}  // namespace kdsel::core
