#ifndef KDSEL_METRICS_METRICS_H_
#define KDSEL_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace kdsel::metrics {

/// One point on a precision-recall curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;
};

/// Computes the precision-recall curve for real-valued `scores` against
/// binary `labels` (1 = positive). Points are ordered by decreasing
/// threshold; ties in score are collapsed into a single point (standard
/// sklearn-style handling).
StatusOr<std::vector<PrPoint>> PrecisionRecallCurve(
    const std::vector<float>& scores, const std::vector<uint8_t>& labels);

/// Area under the precision-recall curve via average precision
/// (AP = sum (R_k - R_{k-1}) * P_k). This is the paper's headline metric.
/// Returns 0 when there are no positive labels.
StatusOr<double> AucPr(const std::vector<float>& scores,
                       const std::vector<uint8_t>& labels);

/// Area under the ROC curve (probability a random positive outranks a
/// random negative; ties count 1/2). Returns 0.5 when degenerate.
StatusOr<double> AucRoc(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels);

/// Best F1 over all score thresholds.
StatusOr<double> BestF1(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels);

/// Accuracy of hard predictions against hard labels.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected);

}  // namespace kdsel::metrics

#endif  // KDSEL_METRICS_METRICS_H_
