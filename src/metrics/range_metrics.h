#ifndef KDSEL_METRICS_RANGE_METRICS_H_
#define KDSEL_METRICS_RANGE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace kdsel::metrics {

/// Range-aware TSAD metrics in the style of Paparrizos et al.'s
/// R-AUC / VUS family: point labels are softened with a buffer ramp
/// around each anomaly region so that near-misses (detections slightly
/// before/after the labeled range) receive partial credit, then
/// label-weighted ROC / PR areas are computed. VUS averages the
/// range-AUC over buffer lengths, removing the buffer hyper-parameter.
///
/// The KDSelector paper evaluates with plain AUC-PR, but defines the
/// selection target as "any interested metric P" — these metrics plug
/// into the same pipeline (see core::EvaluateDetectorsOnSeries).

/// Soft labels: 1 inside anomaly regions, sqrt-ramp decay over `buffer`
/// points on each side, 0 elsewhere. buffer == 0 reproduces the binary
/// labels.
std::vector<float> BufferedLabels(const std::vector<uint8_t>& labels,
                                  size_t buffer);

/// ROC AUC where each point i contributes positive weight w_i and
/// negative weight 1 - w_i (w in [0,1]). Ties count half. Returns 0.5
/// when either class has zero total weight.
StatusOr<double> WeightedAucRoc(const std::vector<float>& scores,
                                const std::vector<float>& pos_weight);

/// Average precision with the same weighting scheme.
StatusOr<double> WeightedAucPr(const std::vector<float>& scores,
                               const std::vector<float>& pos_weight);

/// Range-AUC: WeightedAucRoc/Pr over BufferedLabels(labels, buffer).
StatusOr<double> RangeAucRoc(const std::vector<float>& scores,
                             const std::vector<uint8_t>& labels,
                             size_t buffer);
StatusOr<double> RangeAucPr(const std::vector<float>& scores,
                            const std::vector<uint8_t>& labels,
                            size_t buffer);

/// VUS: mean Range-AUC over buffer lengths {0, step, 2*step, ...,
/// max_buffer}. step defaults to max_buffer/4 (>=1).
StatusOr<double> VusRoc(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels,
                        size_t max_buffer, size_t step = 0);
StatusOr<double> VusPr(const std::vector<float>& scores,
                       const std::vector<uint8_t>& labels, size_t max_buffer,
                       size_t step = 0);

/// The metric used to score detectors (Definition 2.1's P).
enum class Metric {
  kAucPr,
  kAucRoc,
  kBestF1,
  kRangeAucPr,
  kRangeAucRoc,
  kVusPr,
  kVusRoc,
};

const char* MetricToString(Metric metric);
StatusOr<Metric> MetricFromName(const std::string& name);

/// Evaluates `metric` for the given scores/labels. Range metrics use
/// buffer = min(32, series length / 10); VUS uses the same cap.
StatusOr<double> EvaluateMetric(Metric metric,
                                const std::vector<float>& scores,
                                const std::vector<uint8_t>& labels);

}  // namespace kdsel::metrics

#endif  // KDSEL_METRICS_RANGE_METRICS_H_
