#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kdsel::metrics {

namespace {

Status ValidateInputs(const std::vector<float>& scores,
                      const std::vector<uint8_t>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels length mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty input");
  }
  for (float s : scores) {
    if (std::isnan(s)) return Status::InvalidArgument("NaN score");
  }
  return Status::OK();
}

/// Indices sorted by decreasing score (stable for determinism).
std::vector<size_t> SortByScoreDesc(const std::vector<float>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

StatusOr<std::vector<PrPoint>> PrecisionRecallCurve(
    const std::vector<float>& scores, const std::vector<uint8_t>& labels) {
  KDSEL_RETURN_NOT_OK(ValidateInputs(scores, labels));
  size_t total_pos = 0;
  for (uint8_t l : labels) total_pos += (l != 0);
  std::vector<PrPoint> curve;
  if (total_pos == 0) return curve;

  auto order = SortByScoreDesc(scores);
  size_t tp = 0, fp = 0;
  size_t i = 0;
  while (i < order.size()) {
    // Consume a tie group: all items sharing this score move together.
    float score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      if (labels[order[i]]) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    PrPoint p;
    p.threshold = score;
    p.recall = static_cast<double>(tp) / static_cast<double>(total_pos);
    p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    curve.push_back(p);
  }
  return curve;
}

StatusOr<double> AucPr(const std::vector<float>& scores,
                       const std::vector<uint8_t>& labels) {
  KDSEL_ASSIGN_OR_RETURN(auto curve, PrecisionRecallCurve(scores, labels));
  if (curve.empty()) return 0.0;
  // Average precision: sum over curve points of (ΔR) * P.
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const PrPoint& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

StatusOr<double> AucRoc(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels) {
  KDSEL_RETURN_NOT_OK(ValidateInputs(scores, labels));
  // Rank-based (Mann-Whitney U) formulation with midranks for ties.
  size_t n = scores.size();
  auto order = SortByScoreDesc(scores);
  std::vector<double> rank(n, 0.0);  // 1-based midranks, descending order
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    double mid = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (size_t k = i; k < j; ++k) rank[order[k]] = mid;
    i = j;
  }
  double pos = 0, neg = 0, rank_sum_pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k]) {
      pos += 1;
      rank_sum_pos += rank[k];
    } else {
      neg += 1;
    }
  }
  if (pos == 0 || neg == 0) return 0.5;
  // rank is descending, so convert: ascending rank = n + 1 - desc rank.
  double asc_rank_sum = pos * (static_cast<double>(n) + 1) - rank_sum_pos;
  double u = asc_rank_sum - pos * (pos + 1) / 2.0;
  return u / (pos * neg);
}

StatusOr<double> BestF1(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels) {
  KDSEL_ASSIGN_OR_RETURN(auto curve, PrecisionRecallCurve(scores, labels));
  double best = 0.0;
  for (const PrPoint& p : curve) {
    if (p.precision + p.recall > 0) {
      best = std::max(best, 2 * p.precision * p.recall /
                                (p.precision + p.recall));
    }
  }
  return best;
}

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected) {
  if (predicted.empty() || predicted.size() != expected.size()) return 0.0;
  size_t hit = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    hit += (predicted[i] == expected[i]);
  }
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

}  // namespace kdsel::metrics
