#include "metrics/range_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stringutil.h"
#include "metrics/metrics.h"

namespace kdsel::metrics {

namespace {

Status ValidateWeighted(const std::vector<float>& scores,
                        const std::vector<float>& pos_weight) {
  if (scores.size() != pos_weight.size()) {
    return Status::InvalidArgument("scores/weights length mismatch");
  }
  if (scores.empty()) return Status::InvalidArgument("empty input");
  for (float s : scores) {
    if (std::isnan(s)) return Status::InvalidArgument("NaN score");
  }
  for (float w : pos_weight) {
    if (!(w >= 0.0f && w <= 1.0f)) {
      return Status::InvalidArgument("positive weight outside [0,1]");
    }
  }
  return Status::OK();
}

std::vector<size_t> OrderByScoreDesc(const std::vector<float>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

std::vector<float> BufferedLabels(const std::vector<uint8_t>& labels,
                                  size_t buffer) {
  const size_t n = labels.size();
  std::vector<float> soft(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    if (labels[i]) soft[i] = 1.0f;
  }
  if (buffer == 0) return soft;

  // Distance to the nearest anomalous point, in two sweeps.
  constexpr size_t kFar = static_cast<size_t>(-1);
  std::vector<size_t> dist(n, kFar);
  size_t last = kFar;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i]) last = i;
    if (last != kFar) dist[i] = i - last;
  }
  last = kFar;
  for (size_t i = n; i-- > 0;) {
    if (labels[i]) last = i;
    if (last != kFar) dist[i] = std::min(dist[i], last - i);
  }
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] || dist[i] == kFar || dist[i] > buffer) continue;
    // sqrt ramp: partial credit decaying from the region border.
    const double frac = static_cast<double>(dist[i]) /
                        static_cast<double>(buffer + 1);
    soft[i] = static_cast<float>(std::sqrt(std::max(0.0, 1.0 - frac)));
  }
  return soft;
}

StatusOr<double> WeightedAucRoc(const std::vector<float>& scores,
                                const std::vector<float>& pos_weight) {
  KDSEL_RETURN_NOT_OK(ValidateWeighted(scores, pos_weight));
  double total_pos = 0.0, total_neg = 0.0;
  for (float w : pos_weight) {
    total_pos += w;
    total_neg += 1.0 - w;
  }
  if (total_pos <= 0.0 || total_neg <= 0.0) return 0.5;

  // Descending sweep: P(random positive ranked above random negative).
  auto order = OrderByScoreDesc(scores);
  double auc_mass = 0.0;     // sum over positives of neg-weight ranked below
  double neg_above = 0.0;    // cumulative negative weight seen so far
  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    size_t j = i;
    double tie_pos = 0.0, tie_neg = 0.0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      tie_pos += pos_weight[order[j]];
      tie_neg += 1.0 - pos_weight[order[j]];
      ++j;
    }
    // Positives in this tie group beat all negatives *below* the group
    // fully and split the group's own negatives half-half.
    const double neg_below = total_neg - neg_above - tie_neg;
    auc_mass += tie_pos * (neg_below + 0.5 * tie_neg);
    neg_above += tie_neg;
    i = j;
  }
  return auc_mass / (total_pos * total_neg);
}

StatusOr<double> WeightedAucPr(const std::vector<float>& scores,
                               const std::vector<float>& pos_weight) {
  KDSEL_RETURN_NOT_OK(ValidateWeighted(scores, pos_weight));
  double total_pos = 0.0;
  for (float w : pos_weight) total_pos += w;
  if (total_pos <= 0.0) return 0.0;

  auto order = OrderByScoreDesc(scores);
  double tp = 0.0, fp = 0.0;
  double ap = 0.0, prev_recall = 0.0;
  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      tp += pos_weight[order[j]];
      fp += 1.0 - pos_weight[order[j]];
      ++j;
    }
    const double recall = tp / total_pos;
    const double precision = tp / std::max(tp + fp, 1e-12);
    ap += (recall - prev_recall) * precision;
    prev_recall = recall;
    i = j;
  }
  return ap;
}

StatusOr<double> RangeAucRoc(const std::vector<float>& scores,
                             const std::vector<uint8_t>& labels,
                             size_t buffer) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels length mismatch");
  }
  return WeightedAucRoc(scores, BufferedLabels(labels, buffer));
}

StatusOr<double> RangeAucPr(const std::vector<float>& scores,
                            const std::vector<uint8_t>& labels,
                            size_t buffer) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels length mismatch");
  }
  return WeightedAucPr(scores, BufferedLabels(labels, buffer));
}

namespace {

template <typename Fn>
StatusOr<double> VusImpl(Fn range_auc, size_t max_buffer, size_t step) {
  if (step == 0) step = std::max<size_t>(1, max_buffer / 4);
  double total = 0.0;
  size_t count = 0;
  for (size_t buffer = 0; buffer <= max_buffer; buffer += step) {
    KDSEL_ASSIGN_OR_RETURN(double auc, range_auc(buffer));
    total += auc;
    ++count;
  }
  return total / static_cast<double>(count);
}

}  // namespace

StatusOr<double> VusRoc(const std::vector<float>& scores,
                        const std::vector<uint8_t>& labels,
                        size_t max_buffer, size_t step) {
  return VusImpl(
      [&](size_t buffer) { return RangeAucRoc(scores, labels, buffer); },
      max_buffer, step);
}

StatusOr<double> VusPr(const std::vector<float>& scores,
                       const std::vector<uint8_t>& labels, size_t max_buffer,
                       size_t step) {
  return VusImpl(
      [&](size_t buffer) { return RangeAucPr(scores, labels, buffer); },
      max_buffer, step);
}

const char* MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kAucPr:
      return "AUC-PR";
    case Metric::kAucRoc:
      return "AUC-ROC";
    case Metric::kBestF1:
      return "Best-F1";
    case Metric::kRangeAucPr:
      return "R-AUC-PR";
    case Metric::kRangeAucRoc:
      return "R-AUC-ROC";
    case Metric::kVusPr:
      return "VUS-PR";
    case Metric::kVusRoc:
      return "VUS-ROC";
  }
  return "unknown";
}

StatusOr<Metric> MetricFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "auc-pr" || lower == "aucpr") return Metric::kAucPr;
  if (lower == "auc-roc" || lower == "aucroc") return Metric::kAucRoc;
  if (lower == "best-f1" || lower == "f1") return Metric::kBestF1;
  if (lower == "r-auc-pr") return Metric::kRangeAucPr;
  if (lower == "r-auc-roc") return Metric::kRangeAucRoc;
  if (lower == "vus-pr") return Metric::kVusPr;
  if (lower == "vus-roc") return Metric::kVusRoc;
  return Status::NotFound("unknown metric: " + name);
}

StatusOr<double> EvaluateMetric(Metric metric,
                                const std::vector<float>& scores,
                                const std::vector<uint8_t>& labels) {
  const size_t buffer =
      std::min<size_t>(32, std::max<size_t>(1, labels.size() / 10));
  switch (metric) {
    case Metric::kAucPr:
      return AucPr(scores, labels);
    case Metric::kAucRoc:
      return AucRoc(scores, labels);
    case Metric::kBestF1:
      return BestF1(scores, labels);
    case Metric::kRangeAucPr:
      return RangeAucPr(scores, labels, buffer);
    case Metric::kRangeAucRoc:
      return RangeAucRoc(scores, labels, buffer);
    case Metric::kVusPr:
      return VusPr(scores, labels, buffer);
    case Metric::kVusRoc:
      return VusRoc(scores, labels, buffer);
  }
  return Status::InvalidArgument("unhandled metric");
}

}  // namespace kdsel::metrics
