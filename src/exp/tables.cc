#include "exp/tables.h"

#include <cstdio>

#include "common/check.h"
#include "common/stringutil.h"

namespace kdsel::exp {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  KDSEL_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size(), "-");
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells{label};
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < columns_.size(); ++c) {
      line += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string out = render_row(columns_);
  std::string rule = "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatPerDatasetTable(
    const std::vector<std::string>& datasets,
    const std::vector<std::string>& methods,
    const std::vector<std::map<std::string, double>>& results) {
  KDSEL_CHECK(methods.size() == results.size());
  std::vector<std::string> columns{"Dataset"};
  for (const auto& m : methods) columns.push_back(m);
  Table table(columns);
  auto add = [&](const std::string& name) {
    std::vector<std::string> cells{name};
    for (const auto& r : results) {
      auto it = r.find(name);
      cells.push_back(it == r.end() ? std::string("-")
                                    : StrFormat("%.4f", it->second));
    }
    table.AddRow(std::move(cells));
  };
  for (const auto& d : datasets) add(d);
  add("Average");
  return table.ToString();
}

}  // namespace kdsel::exp
