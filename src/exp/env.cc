#include "exp/env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/csv.h"
#include "common/parallel.h"
#include "common/stringutil.h"

namespace kdsel::exp {

namespace fs = std::filesystem;

ExperimentConfig ExperimentConfig::FromEnv() {
  ExperimentConfig config;
  const char* scale = std::getenv("KDSEL_BENCH_SCALE");
  if (scale && std::string(scale) == "paper") {
    config.series_per_family = 12;
    config.min_length = 800;
    config.max_length = 1600;
    config.epochs = 20;
  }
  const char* cache = std::getenv("KDSEL_CACHE_DIR");
  if (cache && *cache) config.cache_dir = cache;
  return config;
}

std::string ExperimentConfig::CacheKey() const {
  return StrFormat("perf_s%llu_n%zu_l%zu-%zu",
                   static_cast<unsigned long long>(seed), series_per_family,
                   min_length, max_length);
}

ts::WindowOptions BenchmarkEnvironment::window_options() const {
  ts::WindowOptions wo;
  wo.length = config_.window_length;
  wo.stride = config_.window_length;
  wo.z_normalize = true;
  return wo;
}

StatusOr<std::unique_ptr<BenchmarkEnvironment>> BenchmarkEnvironment::Create(
    const ExperimentConfig& config) {
  // Private constructor (factory-only type): make_unique cannot reach it.
  // kdsel-lint: allow(naked-new)
  std::unique_ptr<BenchmarkEnvironment> env(new BenchmarkEnvironment());
  KDSEL_RETURN_NOT_OK(env->Build(config));
  return env;
}

Status BenchmarkEnvironment::Build(const ExperimentConfig& config) {
  config_ = config;
  models_ = tsad::BuildDefaultModelSet(config.seed);

  datagen::BenchmarkOptions bo;
  bo.series_per_family = config.series_per_family;
  bo.min_length = config.min_length;
  bo.max_length = config.max_length;
  bo.seed = config.seed;
  KDSEL_ASSIGN_OR_RETURN(auto datasets, datagen::GenerateBenchmark(bo));

  std::map<std::string, std::vector<float>> perf_by_name;
  KDSEL_ASSIGN_OR_RETURN(bool cached, LoadCache(perf_by_name));
  if (!cached) {
    KDSEL_RETURN_NOT_OK(ComputePerformance(datasets, perf_by_name));
    KDSEL_RETURN_NOT_OK(StoreCache(perf_by_name));
  }

  // Split each dataset and pool the training halves (the benchmark's
  // recommended protocol: train on a combination of all datasets).
  for (const auto& ds : datasets) {
    auto split =
        ts::SplitSeries(ds, config.train_fraction, config.seed ^ 0x5eed);
    for (const auto& s : split.train) {
      auto it = perf_by_name.find(s.name());
      if (it == perf_by_name.end()) {
        return Status::Internal("missing performance row for " + s.name());
      }
      train_series_.push_back(s);
      train_performance_.push_back(it->second);
    }
    if (ds.name == "Dodgers" || ds.name == "Occupancy") continue;
    test_dataset_names_.push_back(ds.name);
    auto& test_vec = test_series_[ds.name];
    auto& perf_vec = test_performance_[ds.name];
    for (const auto& s : split.test) {
      auto it = perf_by_name.find(s.name());
      if (it == perf_by_name.end()) {
        return Status::Internal("missing performance row for " + s.name());
      }
      test_vec.push_back(s);
      perf_vec.push_back(it->second);
    }
  }
  return Status::OK();
}

Status BenchmarkEnvironment::ComputePerformance(
    const std::vector<ts::Dataset>& datasets,
    std::map<std::string, std::vector<float>>& by_name) {
  // Flatten every series and fan the whole (series, detector) grid
  // across the shared thread pool in one matrix build.
  std::vector<const ts::TimeSeries*> series;
  for (const auto& ds : datasets) {
    for (const auto& s : ds.series) series.push_back(&s);
  }
  std::fprintf(stderr,
               "[env] detector performance matrix: %zu series x %zu "
               "detectors on %zu threads...\n",
               series.size(), models_.size(), ParallelThreads());
  KDSEL_ASSIGN_OR_RETURN(auto matrix,
                         core::EvaluatePerformanceMatrix(
                             models_, series, metrics::Metric::kAucPr,
                             &detector_failures_));
  for (size_t i = 0; i < series.size(); ++i) {
    by_name[series[i]->name()] = std::move(matrix[i]);
  }
  size_t failures = 0;
  for (size_t f : detector_failures_) failures += f;
  if (failures > 0) {
    std::fprintf(stderr,
                 "[env] %zu (series, detector) pairs hit InvalidArgument and "
                 "scored worst-case 0.0\n",
                 failures);
  }
  return Status::OK();
}

StatusOr<bool> BenchmarkEnvironment::LoadCache(
    std::map<std::string, std::vector<float>>& by_name) {
  const std::string path =
      (fs::path(config_.cache_dir) / (config_.CacheKey() + ".csv")).string();
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  KDSEL_ASSIGN_OR_RETURN(auto table, ReadCsv(path, /*has_header=*/true));
  const size_t m = models_.size();
  for (const auto& row : table.rows) {
    if (row.size() != m + 1) return Status::IoError("bad cache row width");
    std::vector<float> perf(m);
    for (size_t j = 0; j < m; ++j) {
      auto value = ParseFloat(row[j + 1]);
      if (!value.ok()) {
        return Status::IoError("bad cache cell: " + value.status().message());
      }
      perf[j] = *value;
    }
    by_name[row[0]] = std::move(perf);
  }
  return true;
}

Status BenchmarkEnvironment::StoreCache(
    const std::map<std::string, std::vector<float>>& by_name) {
  std::error_code ec;
  fs::create_directories(config_.cache_dir, ec);
  if (ec) {
    return Status::IoError("cannot create cache dir: " + config_.cache_dir);
  }
  CsvTable table;
  table.header.push_back("series");
  for (const auto& model : models_) table.header.push_back(model->name());
  for (const auto& [name, perf] : by_name) {
    std::vector<std::string> row{name};
    for (float p : perf) row.push_back(StrFormat("%.6f", p));
    table.rows.push_back(std::move(row));
  }
  const std::string path =
      (fs::path(config_.cache_dir) / (config_.CacheKey() + ".csv")).string();
  return WriteCsv(path, table);
}

const std::vector<ts::TimeSeries>& BenchmarkEnvironment::test_series(
    const std::string& dataset) const {
  auto it = test_series_.find(dataset);
  KDSEL_CHECK(it != test_series_.end());
  return it->second;
}

const std::vector<std::vector<float>>& BenchmarkEnvironment::test_performance(
    const std::string& dataset) const {
  auto it = test_performance_.find(dataset);
  KDSEL_CHECK(it != test_performance_.end());
  return it->second;
}

StatusOr<core::SelectorTrainingData> BenchmarkEnvironment::BuildTrainingData()
    const {
  return core::BuildSelectorTrainingData(train_series_, train_performance_,
                                         window_options());
}

StatusOr<std::map<std::string, double>> BenchmarkEnvironment::EvaluateSelector(
    const selectors::Selector& selector) const {
  std::map<std::string, double> result;
  double sum = 0.0;
  for (const std::string& name : test_dataset_names_) {
    const auto& series = test_series(name);
    const auto& perf = test_performance(name);
    double dataset_sum = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
      KDSEL_ASSIGN_OR_RETURN(
          auto sel, core::SelectSeriesModel(selector, series[i],
                                            window_options(), num_models()));
      dataset_sum += perf[i][static_cast<size_t>(sel.model)];
    }
    const double mean =
        series.empty() ? 0.0 : dataset_sum / static_cast<double>(series.size());
    result[name] = mean;
    sum += mean;
  }
  result["Average"] =
      test_dataset_names_.empty()
          ? 0.0
          : sum / static_cast<double>(test_dataset_names_.size());
  return result;
}

StatusOr<std::map<std::string, double>> BenchmarkEnvironment::EvaluateFixedModel(
    int model) const {
  std::map<std::string, double> result;
  double sum = 0.0;
  for (const std::string& name : test_dataset_names_) {
    const auto& perf = test_performance(name);
    double dataset_sum = 0.0;
    for (const auto& row : perf) {
      if (model < 0) {
        dataset_sum += *std::max_element(row.begin(), row.end());
      } else {
        dataset_sum += row[static_cast<size_t>(model)];
      }
    }
    const double mean =
        perf.empty() ? 0.0 : dataset_sum / static_cast<double>(perf.size());
    result[name] = mean;
    sum += mean;
  }
  result["Average"] =
      test_dataset_names_.empty()
          ? 0.0
          : sum / static_cast<double>(test_dataset_names_.size());
  return result;
}

}  // namespace kdsel::exp
