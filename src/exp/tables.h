#ifndef KDSEL_EXP_TABLES_H_
#define KDSEL_EXP_TABLES_H_

#include <map>
#include <string>
#include <vector>

namespace kdsel::exp {

/// Minimal fixed-width table printer used by the bench binaries to emit
/// paper-style result tables to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; missing cells print as "-".
  void AddRow(std::vector<std::string> cells);

  /// Convenience: a row of (label, doubles...) with fixed precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 4);

  /// Renders with column separators and a header rule.
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats per-dataset results (dataset -> value maps keyed identically
/// across methods) as a paper-style table: one row per dataset plus an
/// Average row, one column per method.
std::string FormatPerDatasetTable(
    const std::vector<std::string>& datasets,
    const std::vector<std::string>& methods,
    const std::vector<std::map<std::string, double>>& results);

}  // namespace kdsel::exp

#endif  // KDSEL_EXP_TABLES_H_
