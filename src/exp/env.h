#ifndef KDSEL_EXP_ENV_H_
#define KDSEL_EXP_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/trainer.h"
#include "datagen/benchmark.h"
#include "ts/dataset.h"
#include "tsad/detector.h"

namespace kdsel::exp {

/// Scale and reproducibility knobs for the experiment environment.
///
/// The defaults are sized for a single-core container so the complete
/// bench suite reproduces every table in minutes; KDSEL_BENCH_SCALE=paper
/// enlarges the benchmark toward the paper's scale.
struct ExperimentConfig {
  size_t series_per_family = 6;
  size_t min_length = 512;
  size_t max_length = 1024;
  double train_fraction = 0.5;
  size_t window_length = 64;
  size_t epochs = 12;
  size_t batch_size = 64;
  uint64_t seed = 42;
  std::string cache_dir = ".kdsel_cache";

  /// Reads KDSEL_BENCH_SCALE ("quick" default / "paper") and
  /// KDSEL_CACHE_DIR overrides from the environment.
  static ExperimentConfig FromEnv();

  /// A short key identifying every input of the performance matrix.
  std::string CacheKey() const;
};

/// The shared substrate of all experiments: the 16-family benchmark,
/// per-dataset train/test splits, the 12-model TSAD set, and the full
/// (series x model) AUC-PR performance matrix.
///
/// The performance matrix is the expensive part (it runs every detector
/// on every series); it is computed once and cached on disk so each
/// bench binary pays only a file read.
class BenchmarkEnvironment {
 public:
  /// Builds (or loads from cache) the whole environment.
  static StatusOr<std::unique_ptr<BenchmarkEnvironment>> Create(
      const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const std::vector<std::unique_ptr<tsad::Detector>>& models() const {
    return models_;
  }
  size_t num_models() const { return models_.size(); }

  /// Training series pooled over all 16 datasets, with matching rows of
  /// the performance matrix.
  const std::vector<ts::TimeSeries>& train_series() const {
    return train_series_;
  }
  const std::vector<std::vector<float>>& train_performance() const {
    return train_performance_;
  }

  /// The 14 test datasets (all families except Dodgers and Occupancy,
  /// mirroring the paper's Fig. 4 test set).
  const std::vector<std::string>& test_dataset_names() const {
    return test_dataset_names_;
  }
  const std::vector<ts::TimeSeries>& test_series(
      const std::string& dataset) const;
  const std::vector<std::vector<float>>& test_performance(
      const std::string& dataset) const;

  /// Window-level training data (hard labels + PISL performance rows +
  /// MKI texts) for the configured window length.
  StatusOr<core::SelectorTrainingData> BuildTrainingData() const;

  /// Evaluates a window-level selector with the paper's protocol: per
  /// test series, majority-vote a model, look up that model's AUC-PR,
  /// average per dataset. Returns dataset name -> mean AUC-PR plus the
  /// cross-dataset average under key "Average".
  StatusOr<std::map<std::string, double>> EvaluateSelector(
      const selectors::Selector& selector) const;

  /// The window options used throughout (stride = length, z-normalized).
  ts::WindowOptions window_options() const;

  /// AUC-PR of always picking `model` (used by ablations), or of the
  /// per-series oracle when `model` < 0.
  StatusOr<std::map<std::string, double>> EvaluateFixedModel(int model) const;

  /// Per-detector count of (series, detector) pairs that scored
  /// worst-case 0.0 because the detector returned InvalidArgument during
  /// the matrix build. Empty when the matrix was loaded from cache (the
  /// cache stores only the values).
  const std::vector<size_t>& detector_failures() const {
    return detector_failures_;
  }

 private:
  BenchmarkEnvironment() = default;

  Status Build(const ExperimentConfig& config);
  Status ComputePerformance(
      const std::vector<ts::Dataset>& datasets,
      std::map<std::string, std::vector<float>>& by_name);
  StatusOr<bool> LoadCache(std::map<std::string, std::vector<float>>& by_name);
  Status StoreCache(const std::map<std::string, std::vector<float>>& by_name);

  ExperimentConfig config_;
  std::vector<std::unique_ptr<tsad::Detector>> models_;
  std::vector<ts::TimeSeries> train_series_;
  std::vector<std::vector<float>> train_performance_;
  std::vector<std::string> test_dataset_names_;
  std::map<std::string, std::vector<ts::TimeSeries>> test_series_;
  std::map<std::string, std::vector<std::vector<float>>> test_performance_;
  std::vector<size_t> detector_failures_;
};

}  // namespace kdsel::exp

#endif  // KDSEL_EXP_ENV_H_
