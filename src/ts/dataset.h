#ifndef KDSEL_TS_DATASET_H_
#define KDSEL_TS_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace kdsel::ts {

/// A named collection of labeled time series from one source/domain
/// (mirrors one TSB-UAD subset, e.g. "ECG" or "YAHOO").
struct Dataset {
  std::string name;
  std::string domain_description;  ///< Natural-language domain knowledge.
  std::vector<TimeSeries> series;

  size_t size() const { return series.size(); }
};

/// Saves/loads a Dataset as a directory of CSV files (one per series,
/// columns value,label) plus a manifest. Used by the selector-management
/// examples; experiments generate data in memory.
Status SaveDataset(const Dataset& dataset, const std::string& dir);
StatusOr<Dataset> LoadDataset(const std::string& dir);

/// Deterministic train/test split at series granularity.
///
/// `train_fraction` of each dataset's series (rounded up, at least one if
/// the dataset is non-empty) go to train, the rest to test; mirrors the
/// benchmark's recommended split where training data combines samples
/// from all datasets.
struct TrainTestSplit {
  std::vector<TimeSeries> train;
  std::vector<TimeSeries> test;
};
TrainTestSplit SplitSeries(const Dataset& dataset, double train_fraction,
                           uint64_t seed);

}  // namespace kdsel::ts

#endif  // KDSEL_TS_DATASET_H_
