#include "ts/dataset.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/csv.h"
#include "common/rng.h"
#include "common/stringutil.h"

namespace kdsel::ts {

namespace fs = std::filesystem;

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create directory: " + dir);

  CsvTable manifest;
  manifest.header = {"file", "name", "domain"};
  for (size_t i = 0; i < dataset.series.size(); ++i) {
    const TimeSeries& s = dataset.series[i];
    std::string file = StrFormat("series_%04zu.csv", i);
    CsvTable t;
    t.header = {"value", "label"};
    const bool labeled = s.has_labels();
    for (size_t j = 0; j < s.length(); ++j) {
      t.rows.push_back({StrFormat("%.9g", s.value(j)),
                        labeled ? std::to_string(int(s.labels()[j])) : "0"});
    }
    KDSEL_RETURN_NOT_OK(WriteCsv((fs::path(dir) / file).string(), t));
    manifest.rows.push_back({file, s.name(), dataset.domain_description});
  }
  return WriteCsv((fs::path(dir) / "manifest.csv").string(), manifest);
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  KDSEL_ASSIGN_OR_RETURN(
      auto manifest, ReadCsv((fs::path(dir) / "manifest.csv").string(), true));
  Dataset ds;
  ds.name = fs::path(dir).filename().string();
  for (const auto& row : manifest.rows) {
    if (row.size() < 3) return Status::IoError("malformed manifest row");
    KDSEL_ASSIGN_OR_RETURN(auto t,
                           ReadCsv((fs::path(dir) / row[0]).string(), true));
    TimeSeries s;
    s.set_name(row[1]);
    ds.domain_description = row[2];
    std::vector<float> values;
    std::vector<uint8_t> labels;
    values.reserve(t.rows.size());
    labels.reserve(t.rows.size());
    for (const auto& r : t.rows) {
      if (r.size() < 2) return Status::IoError("malformed series row");
      auto value = ParseFloat(r[0]);
      if (!value.ok()) {
        return Status::IoError("malformed series value: " +
                               value.status().message());
      }
      values.push_back(*value);
      labels.push_back(static_cast<uint8_t>(r[1] == "1"));
    }
    s.mutable_values() = std::move(values);
    KDSEL_RETURN_NOT_OK(s.SetLabels(std::move(labels)));
    ds.series.push_back(std::move(s));
  }
  return ds;
}

TrainTestSplit SplitSeries(const Dataset& dataset, double train_fraction,
                           uint64_t seed) {
  TrainTestSplit split;
  const size_t n = dataset.series.size();
  if (n == 0) return split;
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  Rng rng(seed);
  rng.Shuffle(idx);
  size_t n_train = static_cast<size_t>(
      std::ceil(train_fraction * static_cast<double>(n)));
  n_train = std::clamp<size_t>(n_train, 1, n);
  for (size_t i = 0; i < n; ++i) {
    const TimeSeries& s = dataset.series[idx[i]];
    if (i < n_train) {
      split.train.push_back(s);
    } else {
      split.test.push_back(s);
    }
  }
  return split;
}

}  // namespace kdsel::ts
