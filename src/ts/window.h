#ifndef KDSEL_TS_WINDOW_H_
#define KDSEL_TS_WINDOW_H_

#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace kdsel::ts {

/// Options for sliding-window subsequence extraction.
struct WindowOptions {
  size_t length = 64;   ///< Window size L (paper sweeps 16..1024).
  size_t stride = 0;    ///< 0 means stride == length (non-overlapping).
  bool z_normalize = true;  ///< Z-normalize each window independently.
};

/// A fixed-length view extracted from a series. `series_index` refers to
/// the position of the source series in the caller's collection so that
/// per-series majority voting can regroup window-level predictions.
struct Window {
  std::vector<float> values;
  size_t series_index = 0;
  size_t offset = 0;  ///< Start position within the source series.
};

/// Extracts fixed-length subsequences from `series`.
///
/// A series shorter than the window length yields a single window padded
/// by edge replication (so no series is silently dropped). Otherwise the
/// final partial window is aligned to end exactly at the series end.
StatusOr<std::vector<Window>> ExtractWindows(const TimeSeries& series,
                                             size_t series_index,
                                             const WindowOptions& options);

/// Convenience: windows from many series concatenated in order.
StatusOr<std::vector<Window>> ExtractWindows(
    const std::vector<TimeSeries>& series, const WindowOptions& options);

}  // namespace kdsel::ts

#endif  // KDSEL_TS_WINDOW_H_
