#include "ts/window.h"

namespace kdsel::ts {

StatusOr<std::vector<Window>> ExtractWindows(const TimeSeries& series,
                                             size_t series_index,
                                             const WindowOptions& options) {
  if (options.length == 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  const size_t L = options.length;
  const size_t stride = options.stride == 0 ? L : options.stride;
  const auto& v = series.values();
  std::vector<Window> windows;

  if (v.empty()) return windows;

  if (v.size() < L) {
    // Edge-replicate to a full window so short series still participate.
    Window w;
    w.series_index = series_index;
    w.offset = 0;
    w.values = v;
    w.values.resize(L, v.back());
    if (options.z_normalize) ZNormalize(w.values);
    windows.push_back(std::move(w));
    return windows;
  }

  size_t last_start = v.size() - L;
  for (size_t start = 0;; start += stride) {
    if (start > last_start) {
      // Add a final window flush against the end unless already covered.
      if (!windows.empty() && windows.back().offset == last_start) break;
      start = last_start;
    }
    Window w;
    w.series_index = series_index;
    w.offset = start;
    w.values.assign(v.begin() + static_cast<ptrdiff_t>(start),
                    v.begin() + static_cast<ptrdiff_t>(start + L));
    if (options.z_normalize) ZNormalize(w.values);
    windows.push_back(std::move(w));
    if (start == last_start) break;
  }
  return windows;
}

StatusOr<std::vector<Window>> ExtractWindows(
    const std::vector<TimeSeries>& series, const WindowOptions& options) {
  std::vector<Window> all;
  for (size_t i = 0; i < series.size(); ++i) {
    KDSEL_ASSIGN_OR_RETURN(auto windows,
                           ExtractWindows(series[i], i, options));
    for (auto& w : windows) all.push_back(std::move(w));
  }
  return all;
}

}  // namespace kdsel::ts
