#ifndef KDSEL_TS_TIME_SERIES_H_
#define KDSEL_TS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace kdsel::ts {

/// A labeled anomaly region [begin, end) within a series.
struct AnomalyRegion {
  size_t begin = 0;
  size_t end = 0;  // exclusive

  size_t length() const { return end - begin; }
};

/// A univariate time series with optional per-point anomaly labels and
/// free-form metadata.
///
/// This is the unit of work throughout the library: detectors score it,
/// the windowing code slices it into fixed-length subsequences, and the
/// selector predicts one TSAD model per series.
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::string name, std::vector<float> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t length() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }
  float value(size_t i) const { return values_[i]; }

  /// Per-point ground-truth labels (1 = anomalous). Empty when unlabeled.
  const std::vector<uint8_t>& labels() const { return labels_; }
  bool has_labels() const { return !labels_.empty(); }
  /// Sets labels; must match the series length.
  Status SetLabels(std::vector<uint8_t> labels);

  /// Marks [begin, end) anomalous, allocating labels on first use.
  Status MarkAnomaly(size_t begin, size_t end);

  /// Contiguous runs of label==1, in order.
  std::vector<AnomalyRegion> AnomalyRegions() const;
  size_t NumAnomalies() const { return AnomalyRegions().size(); }

  /// Arbitrary string metadata (e.g. "dataset", "domain"). Used by the
  /// MKI module to build natural-language knowledge descriptions.
  const std::map<std::string, std::string>& metadata() const {
    return metadata_;
  }
  void SetMeta(const std::string& key, std::string value) {
    metadata_[key] = std::move(value);
  }
  /// Returns the value for `key`, or "" when absent.
  std::string GetMeta(const std::string& key) const;

  /// Mean of the values (0 for an empty series).
  double Mean() const;
  /// Population standard deviation (0 for an empty series).
  double Stddev() const;

 private:
  std::string name_;
  std::vector<float> values_;
  std::vector<uint8_t> labels_;
  std::map<std::string, std::string> metadata_;
};

/// Z-normalizes `values` in place: (x - mean) / std. If the standard
/// deviation is ~0 the values are centered only.
void ZNormalize(std::vector<float>& values);

/// Returns a z-normalized copy of `in` (labels/metadata preserved).
TimeSeries ZNormalized(const TimeSeries& in);

}  // namespace kdsel::ts

#endif  // KDSEL_TS_TIME_SERIES_H_
