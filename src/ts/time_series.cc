#include "ts/time_series.h"

#include <cmath>

namespace kdsel::ts {

Status TimeSeries::SetLabels(std::vector<uint8_t> labels) {
  if (labels.size() != values_.size()) {
    return Status::InvalidArgument("label length does not match series length");
  }
  labels_ = std::move(labels);
  return Status::OK();
}

Status TimeSeries::MarkAnomaly(size_t begin, size_t end) {
  if (begin > end || end > values_.size()) {
    return Status::OutOfRange("anomaly region outside series");
  }
  if (labels_.empty()) labels_.assign(values_.size(), 0);
  for (size_t i = begin; i < end; ++i) labels_[i] = 1;
  return Status::OK();
}

std::vector<AnomalyRegion> TimeSeries::AnomalyRegions() const {
  std::vector<AnomalyRegion> regions;
  size_t i = 0;
  while (i < labels_.size()) {
    if (labels_[i]) {
      size_t begin = i;
      while (i < labels_.size() && labels_[i]) ++i;
      regions.push_back({begin, i});
    } else {
      ++i;
    }
  }
  return regions;
}

std::string TimeSeries::GetMeta(const std::string& key) const {
  auto it = metadata_.find(key);
  return it == metadata_.end() ? std::string() : it->second;
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::Stddev() const {
  if (values_.empty()) return 0.0;
  double mean = Mean();
  double ss = 0.0;
  for (float v : values_) {
    double d = v - mean;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(values_.size()));
}

void ZNormalize(std::vector<float>& values) {
  if (values.empty()) return;
  double sum = 0.0;
  for (float v : values) sum += v;
  double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (float v : values) {
    double d = v - mean;
    ss += d * d;
  }
  double stddev = std::sqrt(ss / static_cast<double>(values.size()));
  const double kEps = 1e-8;
  if (stddev < kEps) {
    for (float& v : values) v = static_cast<float>(v - mean);
    return;
  }
  for (float& v : values) v = static_cast<float>((v - mean) / stddev);
}

TimeSeries ZNormalized(const TimeSeries& in) {
  TimeSeries out = in;
  ZNormalize(out.mutable_values());
  return out;
}

}  // namespace kdsel::ts
