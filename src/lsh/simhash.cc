#include "lsh/simhash.h"

#include <bit>

#include "common/parallel.h"

namespace kdsel::lsh {

SimHash::SimHash(size_t dim, size_t num_bits, uint64_t seed)
    : dim_(dim), num_bits_(num_bits) {
  KDSEL_CHECK(dim > 0);
  KDSEL_CHECK(num_bits > 0 && num_bits <= 64);
  Rng rng(seed);
  hyperplanes_.resize(num_bits * dim);
  for (float& v : hyperplanes_) v = static_cast<float>(rng.Normal());
}

uint64_t SimHash::Signature(const float* x) const {
  uint64_t sig = 0;
  for (size_t b = 0; b < num_bits_; ++b) {
    const float* w = hyperplanes_.data() + b * dim_;
    double dot = 0.0;
    for (size_t j = 0; j < dim_; ++j) dot += static_cast<double>(w[j]) * x[j];
    if (dot >= 0) sig |= (uint64_t{1} << b);
  }
  return sig;
}

uint64_t SimHash::Signature(const std::vector<float>& x) const {
  KDSEL_CHECK(x.size() == dim_);
  return Signature(x.data());
}

int HammingDistance(uint64_t a, uint64_t b) {
  return std::popcount(a ^ b);
}

std::unordered_map<uint64_t, std::vector<size_t>> BuildBuckets(
    const SimHash& hasher, const std::vector<std::vector<float>>& rows) {
  // Signatures in parallel (disjoint slots), bucket inserts serial in
  // ascending row order so bucket contents stay deterministic.
  std::vector<uint64_t> signatures(rows.size());
  ParallelFor(rows.size(), 32, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      signatures[i] = hasher.Signature(rows[i]);
    }
  });
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < rows.size(); ++i) {
    buckets[signatures[i]].push_back(i);
  }
  return buckets;
}

}  // namespace kdsel::lsh
