#ifndef KDSEL_LSH_SIMHASH_H_
#define KDSEL_LSH_SIMHASH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace kdsel::lsh {

/// Charikar random-hyperplane LSH (SimHash).
///
/// Each of `num_bits` random Gaussian hyperplanes contributes one bit:
/// sign(<w_b, x>). Cosine-similar vectors agree on most bits, so equal
/// signatures group near-duplicate training samples — exactly what the
/// paper's PA module needs to find redundant samples cheaply, once,
/// before training starts (sample values never change).
class SimHash {
 public:
  /// `dim` is the input dimensionality; `num_bits` <= 64 (paper uses 14).
  SimHash(size_t dim, size_t num_bits, uint64_t seed);

  /// Signature of one vector (length must equal dim()).
  uint64_t Signature(const float* x) const;
  uint64_t Signature(const std::vector<float>& x) const;

  size_t dim() const { return dim_; }
  size_t num_bits() const { return num_bits_; }

 private:
  size_t dim_;
  size_t num_bits_;
  std::vector<float> hyperplanes_;  // [num_bits * dim]
};

/// Number of differing bits between two signatures.
int HammingDistance(uint64_t a, uint64_t b);

/// Groups item indices by SimHash signature. Returns a map from
/// signature to the indices of `rows` hashing to it.
std::unordered_map<uint64_t, std::vector<size_t>> BuildBuckets(
    const SimHash& hasher, const std::vector<std::vector<float>>& rows);

}  // namespace kdsel::lsh

#endif  // KDSEL_LSH_SIMHASH_H_
