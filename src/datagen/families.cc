#include "datagen/families.h"

#include <cmath>

#include "common/stringutil.h"

namespace kdsel::datagen {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Smooth daily-cycle signal with weekly modulation (traffic-like counts).
std::vector<float> TrafficSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  double day = 160 + rng.Uniform(-20, 20);    // points per "day"
  double phase = rng.Uniform(0, 2 * kPi);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    double daily = std::sin(2 * kPi * t / day + phase);
    double rush = std::sin(4 * kPi * t / day + phase) * 0.5;
    double base = 20 + 12 * daily + 6 * rush;
    v[i] = static_cast<float>(std::max(0.0, base + rng.Normal(0, 1.6)));
  }
  return v;
}

/// Spike-train ECG-like signal: periodic QRS-shaped pulses on a wandering
/// baseline. `rate` = points per beat, `sharp` = pulse width factor.
std::vector<float> EcgLikeSignal(size_t n, Rng& rng, double rate,
                                 double sharp, double wander) {
  std::vector<float> v(n, 0.0f);
  double period = rate * (1.0 + rng.Uniform(-0.08, 0.08));
  double next_beat = rng.Uniform(0, period);
  double width = sharp * period;
  // Baseline wander: slow sinusoid.
  double wf = rng.Uniform(0.5, 1.5) / (20.0 * period);
  double wp = rng.Uniform(0, 2 * kPi);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    v[i] = static_cast<float>(wander * std::sin(2 * kPi * wf * t + wp) +
                              rng.Normal(0, 0.03));
  }
  while (next_beat < static_cast<double>(n)) {
    // QRS complex: small dip, tall spike, small dip; then a T-wave bump.
    auto add_gauss = [&](double center, double amp, double sigma) {
      long lo = std::max<long>(0, static_cast<long>(center - 4 * sigma));
      long hi = std::min<long>(static_cast<long>(n) - 1,
                               static_cast<long>(center + 4 * sigma));
      for (long i = lo; i <= hi; ++i) {
        double d = (static_cast<double>(i) - center) / sigma;
        v[static_cast<size_t>(i)] +=
            static_cast<float>(amp * std::exp(-0.5 * d * d));
      }
    };
    add_gauss(next_beat - 0.06 * period, -0.22, width * 0.45);
    add_gauss(next_beat, 1.0, width * 0.35);
    add_gauss(next_beat + 0.06 * period, -0.28, width * 0.45);
    add_gauss(next_beat + 0.30 * period, 0.24, width * 1.6);
    next_beat += period * (1.0 + rng.Normal(0, 0.02));
  }
  return v;
}

/// Mean-reverting random walk (Ornstein-Uhlenbeck-ish), server KPI shape.
std::vector<float> KpiSignal(size_t n, Rng& rng, double theta, double sigma,
                             double seasonal_amp) {
  std::vector<float> v(n);
  double day = 200 + rng.Uniform(-40, 40);
  double phase = rng.Uniform(0, 2 * kPi);
  double x = rng.Normal(0, 1);
  for (size_t i = 0; i < n; ++i) {
    x += theta * (0.0 - x) + sigma * rng.Normal();
    double season =
        seasonal_amp * std::sin(2 * kPi * static_cast<double>(i) / day + phase);
    v[i] = static_cast<float>(x + season);
  }
  return v;
}

/// Mackey-Glass chaotic series: dx/dt = beta*x(t-tau)/(1+x(t-tau)^10) - gamma*x.
std::vector<float> MackeyGlassSignal(size_t n, Rng& rng) {
  const double beta = 0.2, gamma = 0.1, dt = 1.0;
  const size_t tau = 17 + static_cast<size_t>(rng.Index(4));
  const size_t warmup = 300;
  std::vector<double> x(n + warmup + tau, 1.2);
  for (size_t i = 0; i < tau; ++i) x[i] = 1.2 + 0.1 * rng.Normal();
  for (size_t i = tau; i + 1 < x.size(); ++i) {
    double xt = x[i - tau];
    double dx = beta * xt / (1.0 + std::pow(xt, 10.0)) - gamma * x[i];
    x[i + 1] = x[i] + dt * dx;
  }
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(x[warmup + tau + i]);
  }
  return v;
}

/// Step-function signal with occasional regime changes (NAB-style cloud
/// metrics / ad clicks).
std::vector<float> StepSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  double level = rng.Uniform(5, 15);
  size_t next_change = 100 + rng.Index(300);
  for (size_t i = 0; i < n; ++i) {
    if (i >= next_change) {
      level += rng.Normal(0, 2.2);
      next_change = i + 100 + rng.Index(400);
    }
    v[i] = static_cast<float>(level + rng.Normal(0, 0.7));
  }
  return v;
}

/// Slow smooth environmental signal (temperature/humidity) with diurnal
/// cycle and very low noise.
std::vector<float> EnvironmentalSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  double day = 260 + rng.Uniform(-40, 40);
  double phase = rng.Uniform(0, 2 * kPi);
  double trend = rng.Uniform(-0.002, 0.002);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    v[i] = static_cast<float>(18 + 6 * std::sin(2 * kPi * t / day + phase) +
                              trend * t + rng.Normal(0, 0.25));
  }
  return v;
}

/// Trend + seasonality + noise (Yahoo S5 style).
std::vector<float> TrendSeasonalSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  double period = 40 + rng.Uniform(0, 60);
  double phase = rng.Uniform(0, 2 * kPi);
  double trend = rng.Uniform(-0.01, 0.01);
  double amp = rng.Uniform(1.5, 4.0);
  double noise = rng.Uniform(0.2, 0.6);
  for (size_t i = 0; i < n; ++i) {
    double t = static_cast<double>(i);
    v[i] = static_cast<float>(trend * t +
                              amp * std::sin(2 * kPi * t / period + phase) +
                              rng.Normal(0, noise));
  }
  return v;
}

/// Bursty oscillation regimes (body-worn accelerometer during walking).
std::vector<float> AccelerometerSignal(size_t n, Rng& rng, double gait_freq) {
  std::vector<float> v(n);
  size_t i = 0;
  while (i < n) {
    bool active = rng.Bernoulli(0.7);
    size_t seg = 150 + rng.Index(250);
    double f = gait_freq * (1.0 + rng.Uniform(-0.2, 0.2));
    double phase = rng.Uniform(0, 2 * kPi);
    double amp = active ? rng.Uniform(1.5, 3.0) : rng.Uniform(0.05, 0.2);
    for (size_t j = 0; j < seg && i < n; ++j, ++i) {
      double t = static_cast<double>(i);
      v[i] = static_cast<float>(
          amp * std::sin(2 * kPi * f * t + phase) +
          0.4 * amp * std::sin(2 * kPi * 2.1 * f * t) + rng.Normal(0, 0.15));
    }
  }
  return v;
}

/// Slow industrial cycles: long ramps up/down between setpoints (GHL tank
/// temperature).
std::vector<float> IndustrialCycleSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  double value = rng.Uniform(40, 60);
  double target = rng.Uniform(40, 60);
  double ramp = rng.Uniform(0.02, 0.08);
  for (size_t i = 0; i < n; ++i) {
    if (std::abs(value - target) < ramp) {
      target = rng.Uniform(35, 65);
      ramp = rng.Uniform(0.02, 0.08);
    }
    value += (target > value ? ramp : -ramp);
    v[i] = static_cast<float>(value + rng.Normal(0, 0.12));
  }
  return v;
}

/// Square-wave actuation cycles with dwell times (pick-and-place machine).
std::vector<float> ActuationSignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  size_t i = 0;
  double levels[3] = {0.0, 1.0, 0.45};
  size_t phase_idx = 0;
  while (i < n) {
    size_t dwell = 25 + rng.Index(30);
    double level = levels[phase_idx % 3];
    for (size_t j = 0; j < dwell && i < n; ++j, ++i) {
      v[i] = static_cast<float>(level + rng.Normal(0, 0.02));
    }
    ++phase_idx;
  }
  return v;
}

/// Piecewise activity regimes with distinct spectral content (OPPORTUNITY
/// daily activities).
std::vector<float> ActivitySignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  size_t i = 0;
  while (i < n) {
    size_t seg = 200 + rng.Index(300);
    double f = rng.Uniform(0.01, 0.12);
    double amp = rng.Uniform(0.4, 2.2);
    double offset = rng.Uniform(-1.0, 1.0);
    double phase = rng.Uniform(0, 2 * kPi);
    for (size_t j = 0; j < seg && i < n; ++j, ++i) {
      double t = static_cast<double>(i);
      v[i] = static_cast<float>(offset + amp * std::sin(2 * kPi * f * t + phase) +
                                rng.Normal(0, 0.2));
    }
  }
  return v;
}

/// Two-level occupancy pattern (occupied/vacant room CO2 level).
std::vector<float> OccupancySignal(size_t n, Rng& rng) {
  std::vector<float> v(n);
  size_t i = 0;
  bool occupied = rng.Bernoulli(0.5);
  double value = occupied ? 800 : 420;
  while (i < n) {
    size_t dwell = 150 + rng.Index(350);
    double target = occupied ? rng.Uniform(700, 950) : rng.Uniform(400, 460);
    for (size_t j = 0; j < dwell && i < n; ++j, ++i) {
      value += 0.05 * (target - value) + rng.Normal(0, 4.0);
      v[i] = static_cast<float>(value);
    }
    occupied = !occupied;
  }
  return v;
}

/// Multi-component server machine KPI: OU base + bursts of load.
std::vector<float> MachineSignal(size_t n, Rng& rng) {
  std::vector<float> v = KpiSignal(n, rng, 0.03, 0.25, 0.8);
  // Superimpose load plateaus.
  size_t i = 0;
  while (i < n) {
    i += 300 + rng.Index(500);
    size_t dur = 80 + rng.Index(120);
    double lift = rng.Uniform(0.5, 1.5);
    for (size_t j = i; j < std::min(n, i + dur); ++j) {
      v[j] += static_cast<float>(lift);
    }
    i += dur;
  }
  return v;
}

struct FamilyInfo {
  Family family;
  const char* name;
  const char* description;
};

constexpr FamilyInfo kFamilyInfo[] = {
    {Family::kDodgers, "Dodgers",
     "is a loop sensor data for the Glendale on-ramp for the 101 North "
     "freeway in Los Angeles and the anomalies represent unusual traffic "
     "after a Dodgers game"},
    {Family::kEcg, "ECG",
     "is a standard electrocardiogram dataset and the anomalies represent "
     "ventricular premature contractions"},
    {Family::kIops, "IOPS",
     "is a dataset with performance indicators that reflect the scale, "
     "quality of web services, and health status of a machine"},
    {Family::kKdd21, "KDD21",
     "is a composite dataset released in a recent SIGKDD 2021 competition "
     "with 250 time series"},
    {Family::kMgab, "MGAB",
     "is composed of Mackey-Glass time series with non-trivial anomalies "
     "exhibiting chaotic behavior that is difficult for the human eye to "
     "distinguish"},
    {Family::kNab, "NAB",
     "is composed of labeled real-world and artificial time series "
     "including AWS server metrics, online advertisement clicking rates, "
     "real time traffic data, and a collection of Twitter mentions of "
     "large publicly-traded companies"},
    {Family::kSensorScope, "SensorScope",
     "is a collection of environmental data, such as temperature, humidity, "
     "and solar radiation, collected from a typical tiered sensor "
     "measurement system"},
    {Family::kYahoo, "YAHOO",
     "is a dataset published by Yahoo labs consisting of real and synthetic "
     "time series based on the real production traffic to some of the "
     "Yahoo production systems"},
    {Family::kDaphnet, "Daphnet",
     "contains the annotated readings of 3 acceleration sensors at the hip "
     "and leg of Parkinson's disease patients that experience freezing of "
     "gait during walking tasks"},
    {Family::kGhl, "GHL",
     "is a Gasoil Heating Loop Dataset and contains the status of 3 "
     "reservoirs such as the temperature and level, anomalies indicate "
     "changes in max temperature or pump frequency"},
    {Family::kGenesis, "Genesis",
     "is a portable pick-and-place demonstrator which uses an air tank to "
     "supply all the gripping and storage units"},
    {Family::kMitdb, "MITDB",
     "contains 48 half-hour excerpts of two-channel ambulatory ECG "
     "recordings, obtained from 47 subjects studied by the BIH Arrhythmia "
     "Laboratory between 1975 and 1979"},
    {Family::kOpportunity, "OPPORTUNITY",
     "is a dataset devised to benchmark human activity recognition "
     "algorithms, comprising the readings of motion sensors recorded while "
     "users executed typical daily activities"},
    {Family::kOccupancy, "Occupancy",
     "contains experimental data used for binary classification of room "
     "occupancy from temperature, humidity, light, and CO2"},
    {Family::kSmd, "SMD",
     "is a 5-week-long dataset collected from a large Internet company "
     "containing 3 groups of entities from 28 different machines"},
    {Family::kSvdb, "SVDB",
     "includes 78 half-hour ECG recordings chosen to supplement the "
     "examples of supraventricular arrhythmias in the MIT-BIH Arrhythmia "
     "Database"},
};

const FamilyInfo& InfoFor(Family family) {
  for (const auto& info : kFamilyInfo) {
    if (info.family == family) return info;
  }
  KDSEL_CHECK(false && "unknown family");
  return kFamilyInfo[0];
}

}  // namespace

const std::vector<Family>& AllFamilies() {
  static const std::vector<Family> families = [] {
    std::vector<Family> f;
    for (const auto& info : kFamilyInfo) f.push_back(info.family);
    return f;
  }();
  return families;
}

const char* FamilyName(Family family) { return InfoFor(family).name; }

const char* FamilyDescription(Family family) {
  return InfoFor(family).description;
}

StatusOr<Family> FamilyFromName(const std::string& name) {
  std::string lower = ToLower(name);
  for (const auto& info : kFamilyInfo) {
    if (ToLower(info.name) == lower) return info.family;
  }
  return Status::NotFound("unknown dataset family: " + name);
}

std::vector<float> GenerateBaseSignal(Family family, size_t length, Rng& rng) {
  switch (family) {
    case Family::kDodgers:
      return TrafficSignal(length, rng);
    case Family::kEcg:
      return EcgLikeSignal(length, rng, /*rate=*/46, /*sharp=*/0.05,
                           /*wander=*/0.08);
    case Family::kIops:
      return KpiSignal(length, rng, 0.05, 0.3, 1.2);
    case Family::kKdd21: {
      // Composite: rotate among several shapes, like the UCR/KDD21 mix.
      switch (rng.Index(4)) {
        case 0:
          return EcgLikeSignal(length, rng, 58, 0.06, 0.05);
        case 1:
          return TrendSeasonalSignal(length, rng);
        case 2:
          return AccelerometerSignal(length, rng, 0.035);
        default:
          return MackeyGlassSignal(length, rng);
      }
    }
    case Family::kMgab:
      return MackeyGlassSignal(length, rng);
    case Family::kNab:
      return StepSignal(length, rng);
    case Family::kSensorScope:
      return EnvironmentalSignal(length, rng);
    case Family::kYahoo:
      return TrendSeasonalSignal(length, rng);
    case Family::kDaphnet:
      return AccelerometerSignal(length, rng, 0.05);
    case Family::kGhl:
      return IndustrialCycleSignal(length, rng);
    case Family::kGenesis:
      return ActuationSignal(length, rng);
    case Family::kMitdb:
      return EcgLikeSignal(length, rng, 64, 0.045, 0.15);
    case Family::kOpportunity:
      return ActivitySignal(length, rng);
    case Family::kOccupancy:
      return OccupancySignal(length, rng);
    case Family::kSmd:
      return MachineSignal(length, rng);
    case Family::kSvdb:
      return EcgLikeSignal(length, rng, 38, 0.055, 0.10);
  }
  return std::vector<float>(length, 0.0f);
}

InjectionPlan FamilyInjectionPlan(Family family) {
  InjectionPlan plan;
  switch (family) {
    case Family::kDodgers:
      plan.candidates = {{AnomalyType::kAmplitudeChange, 30, 90, 1.2},
                         {AnomalyType::kLevelShift, 30, 80, 2.5}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kEcg:
      plan.candidates = {{AnomalyType::kFrequencyShift, 40, 120, 2.0},
                         {AnomalyType::kAmplitudeChange, 40, 100, 1.5}};
      plan.min_count = 1;
      plan.max_count = 4;
      break;
    case Family::kIops:
      plan.candidates = {{AnomalyType::kLevelShift, 20, 80, 3.0},
                         {AnomalyType::kSpike, 1, 4, 5.0}};
      plan.min_count = 1;
      plan.max_count = 3;
      break;
    case Family::kKdd21:
      plan.candidates = {{AnomalyType::kSegmentSwap, 30, 90, 1.5},
                         {AnomalyType::kFrequencyShift, 30, 90, 1.5},
                         {AnomalyType::kNoiseBurst, 20, 60, 2.0}};
      plan.min_count = 1;
      plan.max_count = 1;  // KDD21 series have exactly one anomaly.
      break;
    case Family::kMgab:
      plan.candidates = {{AnomalyType::kSegmentSwap, 30, 60, 0.8},
                         {AnomalyType::kFrequencyShift, 30, 60, 0.8}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kNab:
      plan.candidates = {{AnomalyType::kSpike, 1, 6, 6.0},
                         {AnomalyType::kLevelShift, 40, 120, 3.5},
                         {AnomalyType::kNoiseBurst, 20, 60, 3.0}};
      plan.min_count = 1;
      plan.max_count = 3;
      break;
    case Family::kSensorScope:
      plan.candidates = {{AnomalyType::kFlatline, 30, 100, 0.0},
                         {AnomalyType::kNoiseBurst, 20, 70, 3.0}};
      plan.min_count = 1;
      plan.max_count = 3;
      break;
    case Family::kYahoo:
      plan.candidates = {{AnomalyType::kSpike, 1, 3, 6.0},
                         {AnomalyType::kLevelShift, 10, 40, 3.0}};
      plan.min_count = 1;
      plan.max_count = 4;
      break;
    case Family::kDaphnet:
      plan.candidates = {{AnomalyType::kFlatline, 60, 160, 0.0},
                         {AnomalyType::kAmplitudeChange, 60, 140, -0.6}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kGhl:
      plan.candidates = {{AnomalyType::kSpike, 4, 16, 4.5},
                         {AnomalyType::kLevelShift, 40, 120, 2.5}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kGenesis:
      plan.candidates = {{AnomalyType::kFlatline, 20, 60, 0.0},
                         {AnomalyType::kSpike, 2, 8, 4.0}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kMitdb:
      plan.candidates = {{AnomalyType::kFrequencyShift, 50, 130, 2.0},
                         {AnomalyType::kAmplitudeChange, 50, 120, 1.8},
                         {AnomalyType::kNoiseBurst, 30, 80, 2.0}};
      plan.min_count = 1;
      plan.max_count = 4;
      break;
    case Family::kOpportunity:
      plan.candidates = {{AnomalyType::kSegmentSwap, 40, 120, 1.2},
                         {AnomalyType::kNoiseBurst, 30, 90, 2.5}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kOccupancy:
      plan.candidates = {{AnomalyType::kLevelShift, 30, 100, 2.0},
                         {AnomalyType::kSpike, 2, 8, 4.0}};
      plan.min_count = 1;
      plan.max_count = 2;
      break;
    case Family::kSmd:
      plan.candidates = {{AnomalyType::kLevelShift, 40, 120, 3.0},
                         {AnomalyType::kNoiseBurst, 30, 90, 2.5},
                         {AnomalyType::kSpike, 1, 5, 5.0}};
      plan.min_count = 1;
      plan.max_count = 3;
      break;
    case Family::kSvdb:
      plan.candidates = {{AnomalyType::kFrequencyShift, 30, 90, 2.0},
                         {AnomalyType::kAmplitudeChange, 30, 90, 1.5}};
      plan.min_count = 1;
      plan.max_count = 4;
      break;
  }
  return plan;
}

StatusOr<ts::TimeSeries> GenerateSeries(Family family, size_t length,
                                        size_t index, Rng& rng) {
  if (length < 64) {
    return Status::InvalidArgument("series length must be >= 64");
  }
  ts::TimeSeries series(
      StrFormat("%s_%04zu", FamilyName(family), index),
      GenerateBaseSignal(family, length, rng));
  InjectionPlan plan = FamilyInjectionPlan(family);
  KDSEL_ASSIGN_OR_RETURN(size_t injected, InjectAnomalies(plan, rng, series));
  (void)injected;
  series.SetMeta("dataset", FamilyName(family));
  series.SetMeta("domain", FamilyDescription(family));
  return series;
}

}  // namespace kdsel::datagen
