#include "datagen/anomaly_injector.h"

#include <algorithm>
#include <cmath>

namespace kdsel::datagen {

namespace {

/// Population stddev of a span of values (used to scale magnitudes).
double LocalStddev(const std::vector<float>& v, size_t begin, size_t end) {
  if (end <= begin) return 0.0;
  double mean = 0.0;
  for (size_t i = begin; i < end; ++i) mean += v[i];
  mean /= static_cast<double>(end - begin);
  double ss = 0.0;
  for (size_t i = begin; i < end; ++i) {
    double d = v[i] - mean;
    ss += d * d;
  }
  double sd = std::sqrt(ss / static_cast<double>(end - begin));
  return std::max(sd, 1e-3);  // Floor so flat signals still show anomalies.
}

void ApplyAnomaly(const AnomalySpec& spec, size_t begin, size_t end, Rng& rng,
                  std::vector<float>& v) {
  const double sd = LocalStddev(v, 0, v.size());
  const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  switch (spec.type) {
    case AnomalyType::kSpike: {
      for (size_t i = begin; i < end; ++i) {
        v[i] += static_cast<float>(sign * spec.magnitude * sd *
                                   (0.8 + 0.4 * rng.Uniform()));
      }
      break;
    }
    case AnomalyType::kLevelShift: {
      double shift = sign * spec.magnitude * sd;
      for (size_t i = begin; i < end; ++i) v[i] += static_cast<float>(shift);
      break;
    }
    case AnomalyType::kNoiseBurst: {
      for (size_t i = begin; i < end; ++i) {
        v[i] += static_cast<float>(rng.Normal(0.0, spec.magnitude * sd));
      }
      break;
    }
    case AnomalyType::kFlatline: {
      float level = v[begin];
      for (size_t i = begin; i < end; ++i) v[i] = level;
      break;
    }
    case AnomalyType::kAmplitudeChange: {
      double mean = 0.0;
      for (size_t i = begin; i < end; ++i) mean += v[i];
      mean /= static_cast<double>(end - begin);
      double scale = 1.0 + spec.magnitude * (0.5 + rng.Uniform());
      for (size_t i = begin; i < end; ++i) {
        v[i] = static_cast<float>(mean + (v[i] - mean) * scale);
      }
      break;
    }
    case AnomalyType::kFrequencyShift: {
      // Time-compress the segment by 2x, repeating it to fill the span.
      std::vector<float> seg(v.begin() + static_cast<ptrdiff_t>(begin),
                             v.begin() + static_cast<ptrdiff_t>(end));
      size_t n = seg.size();
      for (size_t i = 0; i < n; ++i) {
        v[begin + i] = seg[(2 * i) % n];
      }
      break;
    }
    case AnomalyType::kSegmentSwap: {
      size_t n = end - begin;
      if (v.size() > 3 * n) {
        // Copy a distant segment over this one.
        size_t src;
        do {
          src = rng.Index(v.size() - n);
        } while (src + n > begin && src < end);  // avoid self-overlap
        for (size_t i = 0; i < n; ++i) v[begin + i] = v[src + i];
        // Add a slight offset so the swap is detectable in principle.
        double shift = 0.5 * spec.magnitude * LocalStddev(v, begin, end);
        for (size_t i = begin; i < end; ++i) {
          v[i] += static_cast<float>(shift);
        }
      } else {
        // Series too short to swap; degrade to a level shift.
        double shift = sign * spec.magnitude * sd;
        for (size_t i = begin; i < end; ++i) v[i] += static_cast<float>(shift);
      }
      break;
    }
  }
}

}  // namespace

const char* AnomalyTypeToString(AnomalyType type) {
  switch (type) {
    case AnomalyType::kSpike:
      return "spike";
    case AnomalyType::kLevelShift:
      return "level_shift";
    case AnomalyType::kNoiseBurst:
      return "noise_burst";
    case AnomalyType::kFlatline:
      return "flatline";
    case AnomalyType::kAmplitudeChange:
      return "amplitude_change";
    case AnomalyType::kFrequencyShift:
      return "frequency_shift";
    case AnomalyType::kSegmentSwap:
      return "segment_swap";
  }
  return "unknown";
}

StatusOr<size_t> InjectAnomalies(const InjectionPlan& plan, Rng& rng,
                                 ts::TimeSeries& series) {
  if (plan.candidates.empty()) {
    return Status::InvalidArgument("injection plan has no candidate specs");
  }
  if (series.length() < 32) {
    return Status::InvalidArgument("series too short for anomaly injection");
  }
  auto& v = series.mutable_values();
  if (plan.none_probability > 0 && rng.Bernoulli(plan.none_probability)) {
    KDSEL_RETURN_NOT_OK(series.SetLabels(
        std::vector<uint8_t>(series.length(), 0)));
    return size_t{0};
  }
  size_t count = static_cast<size_t>(
      rng.Int(static_cast<int64_t>(plan.min_count),
              static_cast<int64_t>(plan.max_count)));
  const size_t margin = std::max<size_t>(4, series.length() / 50);

  std::vector<std::pair<size_t, size_t>> placed;
  size_t injected = 0;
  for (size_t a = 0; a < count; ++a) {
    const AnomalySpec& spec =
        plan.candidates[rng.Index(plan.candidates.size())];
    size_t max_len = std::min(spec.max_length, series.length() / 4);
    size_t min_len = std::min(spec.min_length, max_len);
    if (max_len == 0) continue;
    size_t len = static_cast<size_t>(rng.Int(
        static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
    if (len == 0 || series.length() < len + 2 * margin) continue;

    // Rejection-sample a non-overlapping placement.
    bool ok = false;
    size_t begin = 0;
    for (int attempt = 0; attempt < 32 && !ok; ++attempt) {
      begin = margin + rng.Index(series.length() - len - 2 * margin + 1);
      ok = true;
      for (auto [b, e] : placed) {
        if (begin < e + margin && b < begin + len + margin) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;

    ApplyAnomaly(spec, begin, begin + len, rng, v);
    KDSEL_RETURN_NOT_OK(series.MarkAnomaly(begin, begin + len));
    placed.emplace_back(begin, begin + len);
    ++injected;
  }
  if (!series.has_labels()) {
    KDSEL_RETURN_NOT_OK(
        series.SetLabels(std::vector<uint8_t>(series.length(), 0)));
  }
  return injected;
}

}  // namespace kdsel::datagen
