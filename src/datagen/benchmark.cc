#include "datagen/benchmark.h"

#include "common/stringutil.h"

namespace kdsel::datagen {

StatusOr<ts::Dataset> GenerateFamilyDataset(Family family,
                                            const BenchmarkOptions& options) {
  if (options.series_per_family == 0) {
    return Status::InvalidArgument("series_per_family must be positive");
  }
  if (options.min_length > options.max_length || options.min_length < 64) {
    return Status::InvalidArgument("invalid length range");
  }
  // Seed derived from family so each dataset is independent of the others
  // and of series_per_family changes elsewhere.
  Rng rng(options.seed * 1315423911ull +
          static_cast<uint64_t>(family) * 2654435761ull);
  ts::Dataset ds;
  ds.name = FamilyName(family);
  ds.domain_description = FamilyDescription(family);
  for (size_t i = 0; i < options.series_per_family; ++i) {
    size_t length = options.min_length +
                    rng.Index(options.max_length - options.min_length + 1);
    KDSEL_ASSIGN_OR_RETURN(auto series,
                           GenerateSeries(family, length, i, rng));
    ds.series.push_back(std::move(series));
  }
  return ds;
}

StatusOr<std::vector<ts::Dataset>> GenerateBenchmark(
    const BenchmarkOptions& options) {
  std::vector<ts::Dataset> benchmark;
  for (Family family : AllFamilies()) {
    KDSEL_ASSIGN_OR_RETURN(auto ds, GenerateFamilyDataset(family, options));
    benchmark.push_back(std::move(ds));
  }
  return benchmark;
}

std::string BuildMetadataText(const ts::TimeSeries& series) {
  auto regions = series.AnomalyRegions();
  std::string text = StrFormat(
      "This is a time series from dataset %s, %s. The length of the series "
      "is %zu. There are %zu anomalies in this series.",
      series.GetMeta("dataset").c_str(), series.GetMeta("domain").c_str(),
      series.length(), regions.size());
  if (!regions.empty()) {
    std::vector<std::string> lengths;
    lengths.reserve(regions.size());
    for (const auto& r : regions) lengths.push_back(std::to_string(r.length()));
    text += " The lengths of the anomalies are " + Join(lengths, ", ") + ".";
  }
  return text;
}

}  // namespace kdsel::datagen
