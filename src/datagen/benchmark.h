#ifndef KDSEL_DATAGEN_BENCHMARK_H_
#define KDSEL_DATAGEN_BENCHMARK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/families.h"
#include "ts/dataset.h"

namespace kdsel::datagen {

/// Options for synthesizing the 16-family benchmark that stands in for
/// TSB-UAD (see DESIGN.md substitution table).
struct BenchmarkOptions {
  size_t series_per_family = 12;
  size_t min_length = 800;
  size_t max_length = 1600;
  uint64_t seed = 42;
};

/// Generates all 16 datasets. Deterministic for a fixed seed.
StatusOr<std::vector<ts::Dataset>> GenerateBenchmark(
    const BenchmarkOptions& options);

/// Generates a single family's dataset.
StatusOr<ts::Dataset> GenerateFamilyDataset(Family family,
                                            const BenchmarkOptions& options);

/// Renders the paper's metadata template for one series:
///
///   "This is a time series from dataset [name], [description]. The length
///    of the series is [L]. There are [k] anomalies in this series. The
///    lengths of the anomalies are [l1, l2, ...]."
///
/// The final sentence is omitted when the series has no anomalies,
/// matching the paper's template exactly.
std::string BuildMetadataText(const ts::TimeSeries& series);

}  // namespace kdsel::datagen

#endif  // KDSEL_DATAGEN_BENCHMARK_H_
