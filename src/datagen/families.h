#ifndef KDSEL_DATAGEN_FAMILIES_H_
#define KDSEL_DATAGEN_FAMILIES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "datagen/anomaly_injector.h"
#include "ts/time_series.h"

namespace kdsel::datagen {

/// The 16 TSB-UAD-like dataset families this library synthesizes. Each
/// family has a characteristic base signal and anomaly profile so that no
/// single TSAD model wins on all of them — the premise of model selection.
enum class Family {
  kDodgers,
  kEcg,
  kIops,
  kKdd21,
  kMgab,
  kNab,
  kSensorScope,
  kYahoo,
  kDaphnet,
  kGhl,
  kGenesis,
  kMitdb,
  kOpportunity,
  kOccupancy,
  kSmd,
  kSvdb,
};

/// All 16 families in a stable order.
const std::vector<Family>& AllFamilies();

/// Canonical dataset name, e.g. "ECG", "YAHOO".
const char* FamilyName(Family family);

/// Natural-language domain knowledge, adapted from TSB-UAD's dataset
/// descriptions (paper Table 4). Used as MKI metadata text.
const char* FamilyDescription(Family family);

/// Parses a family from its canonical name (case-insensitive).
StatusOr<Family> FamilyFromName(const std::string& name);

/// Generates one base (anomaly-free) series of `length` points for
/// `family`. Deterministic given `rng` state.
std::vector<float> GenerateBaseSignal(Family family, size_t length, Rng& rng);

/// The anomaly-injection profile characteristic of `family`.
InjectionPlan FamilyInjectionPlan(Family family);

/// Generates one fully-labeled series (base signal + injected anomalies +
/// metadata: dataset name, domain, series name).
StatusOr<ts::TimeSeries> GenerateSeries(Family family, size_t length,
                                        size_t index, Rng& rng);

}  // namespace kdsel::datagen

#endif  // KDSEL_DATAGEN_FAMILIES_H_
