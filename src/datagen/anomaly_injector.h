#ifndef KDSEL_DATAGEN_ANOMALY_INJECTOR_H_
#define KDSEL_DATAGEN_ANOMALY_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series.h"

namespace kdsel::datagen {

/// Anomaly shapes the injector can plant into a base signal. Different
/// dataset families mix these differently, which is what makes detector
/// rankings family-dependent (the property model selection relies on).
enum class AnomalyType {
  kSpike,           ///< One or a few extreme point outliers.
  kLevelShift,      ///< Segment offset by a constant.
  kNoiseBurst,      ///< Segment with greatly increased variance.
  kFlatline,        ///< Segment frozen at a constant value.
  kAmplitudeChange, ///< Segment scaled up/down around its local mean.
  kFrequencyShift,  ///< Segment time-warped (compressed oscillation).
  kSegmentSwap,     ///< Segment replaced by a copy from elsewhere (subtle).
};

const char* AnomalyTypeToString(AnomalyType type);

/// Specification of one anomaly to inject.
struct AnomalySpec {
  AnomalyType type = AnomalyType::kSpike;
  size_t min_length = 1;
  size_t max_length = 1;
  double magnitude = 3.0;  ///< In units of the signal's local stddev.
};

/// Plan for injecting anomalies into one series.
struct InjectionPlan {
  std::vector<AnomalySpec> candidates;  ///< Sampled uniformly per anomaly.
  size_t min_count = 1;
  size_t max_count = 3;
  double none_probability = 0.0;  ///< Chance the series stays clean.
};

/// Injects anomalies according to `plan` into `series` (values mutated,
/// labels set). Anomaly placements avoid overlapping each other and keep
/// a margin from the series boundaries. Returns the number injected.
StatusOr<size_t> InjectAnomalies(const InjectionPlan& plan, Rng& rng,
                                 ts::TimeSeries& series);

}  // namespace kdsel::datagen

#endif  // KDSEL_DATAGEN_ANOMALY_INJECTOR_H_
