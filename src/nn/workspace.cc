#include "nn/workspace.h"

#include <atomic>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace kdsel::nn {
namespace {

obs::Counter& PoolHits() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("kdsel.nn.workspace.pool_hits");
  return counter;
}

obs::Counter& PoolMisses() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "kdsel.nn.workspace.pool_misses");
  return counter;
}

// Buckets are powers of two: bucket b holds buffers of exactly
// kMinCapacity << b floats. 32 buckets covers 64 .. 2^37 floats, far
// beyond any tensor this library builds.
constexpr size_t kNumBuckets = 32;

std::atomic<uint64_t> g_heap_allocations{0};

size_t BucketForCapacity(size_t capacity) {
  size_t bucket = 0;
  size_t cap = Workspace::kMinCapacity;
  while (cap < capacity) {
    cap <<= 1;
    ++bucket;
  }
  return bucket;
}

float* HeapAllocate(size_t capacity) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::allocator<float>().allocate(capacity);
}

void HeapFree(float* buffer, size_t capacity) {
  std::allocator<float>().deallocate(buffer, capacity);
}

struct ThreadCache;
// Set when the calling thread's cache has already been destroyed
// (thread teardown); buffers released after that go straight back to
// the heap instead of resurrecting the cache.
thread_local bool t_cache_destroyed = false;

struct ThreadCache {
  std::vector<float*> buckets[kNumBuckets];

  ~ThreadCache() {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      const size_t cap = Workspace::kMinCapacity << b;
      for (float* p : buckets[b]) HeapFree(p, cap);
      buckets[b].clear();
    }
    t_cache_destroyed = true;
  }
};

ThreadCache* Cache() {
  if (t_cache_destroyed) return nullptr;
  thread_local ThreadCache cache;
  return &cache;
}

}  // namespace

float* Workspace::Acquire(size_t n, size_t* capacity) {
  KDSEL_CHECK(n > 0);
  size_t cap = kMinCapacity;
  while (cap < n) cap <<= 1;
  *capacity = cap;
  ThreadCache* cache = Cache();
  if (cache != nullptr) {
    auto& bucket = cache->buckets[BucketForCapacity(cap)];
    if (!bucket.empty()) {
      float* p = bucket.back();
      bucket.pop_back();
      PoolHits().Increment();
      return p;
    }
  }
  PoolMisses().Increment();
  return HeapAllocate(cap);
}

void Workspace::Release(float* buffer, size_t capacity) {
  KDSEL_CHECK(buffer != nullptr);
  ThreadCache* cache = Cache();
  if (cache == nullptr) {
    HeapFree(buffer, capacity);
    return;
  }
  cache->buckets[BucketForCapacity(capacity)].push_back(buffer);
}

uint64_t Workspace::HeapAllocationCount() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

void Workspace::TrimThreadCache() {
  ThreadCache* cache = Cache();
  if (cache == nullptr) return;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const size_t cap = kMinCapacity << b;
    for (float* p : cache->buckets[b]) HeapFree(p, cap);
    cache->buckets[b].clear();
  }
}

}  // namespace kdsel::nn
