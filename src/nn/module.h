#ifndef KDSEL_NN_MODULE_H_
#define KDSEL_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace kdsel::nn {

class Quantizable;

/// A learnable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for all NN layers/blocks.
///
/// Contract: `Forward` consumes a batch and caches whatever `Backward`
/// needs; `Backward` consumes dL/d(output) and returns dL/d(input),
/// accumulating parameter gradients into `Parameter::grad` (so callers
/// must zero gradients between steps, normally via the optimizer).
/// A module's Backward must be called at most once per Forward.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor Forward(const Tensor& input, bool training) = 0;
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// All learnable parameters (non-owning; stable for module lifetime).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Non-trainable state that must persist with the model (e.g. batch-norm
  /// running statistics). Serialized alongside parameters.
  virtual std::vector<Tensor*> StateTensors() { return {}; }

  /// Appends the int8-quantizable layers inside this module, depth-first
  /// in declaration order — the deterministic order activation scales
  /// serialize in (see nn/quantize.h). Default: none.
  virtual void CollectQuantizable(std::vector<Quantizable*>* out) {
    (void)out;
  }
};

/// Chains modules; Forward runs them in order, Backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module and returns a raw pointer for convenience.
  template <typename M>
  M* Add(std::unique_ptr<M> module) {
    M* raw = module.get();
    modules_.push_back(std::move(module));
    return raw;
  }

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<Tensor*> StateTensors() override;
  void CollectQuantizable(std::vector<Quantizable*>* out) override;

  size_t size() const { return modules_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

/// He-normal initialization for weights feeding a ReLU.
void InitHeNormal(Tensor& w, size_t fan_in, Rng& rng);
/// Xavier-uniform initialization.
void InitXavierUniform(Tensor& w, size_t fan_in, size_t fan_out, Rng& rng);

/// Total number of scalar parameters in a module.
size_t ParameterCount(Module& module);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_MODULE_H_
