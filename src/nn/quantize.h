#ifndef KDSEL_NN_QUANTIZE_H_
#define KDSEL_NN_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace kdsel::nn {

/// Post-training int8 quantization interface, implemented by the layers
/// that carry the selector forward pass's contraction work (Linear,
/// Conv1d, MultiHeadSelfAttention). Everything else — BatchNorm, ReLU,
/// pooling, softmax, LayerNorm, GELU — stays fp32: those are O(n) tails
/// next to the O(n*k) matmuls, so quantizing them would cost ranking
/// accuracy for no measurable speed.
///
/// Protocol: BeginQuantCalibration(), run inference forwards over
/// representative inputs (each layer records the absmax of the
/// activations it would quantize), then EndQuantCalibration() to derive
/// per-tensor activation scales (absmax/127) and quantize the weights
/// with symmetric per-output-channel scales. QuantizeWithScales()
/// replays previously-derived activation scales (checkpoint load /
/// clone paths): weights re-quantize deterministically from the fp32
/// master copy, so persisting the activation scales alone reproduces
/// the quantized model bit-for-bit.
///
/// Quantization only affects inference forwards (training=false);
/// training always runs the fp32 path.
class Quantizable {
 public:
  virtual ~Quantizable() = default;

  /// Drops quantized state and starts recording activation ranges on
  /// subsequent inference forwards.
  virtual void BeginQuantCalibration() = 0;
  /// Derives activation scales from the recorded ranges and quantizes
  /// the layer for int8 inference.
  virtual void EndQuantCalibration() = 0;
  /// Number of per-tensor activation scales this layer carries (a fixed
  /// property of the layer type).
  virtual size_t NumActivationScales() const = 0;
  /// The derived activation scales; valid once quantized.
  virtual std::vector<float> ActivationScales() const = 0;
  /// Quantizes directly from previously-derived activation scales
  /// (size must equal NumActivationScales()).
  virtual void QuantizeWithScales(const std::vector<float>& scales) = 0;
  /// Reverts the layer to fp32 inference.
  virtual void ClearQuantization() = 0;
  virtual bool IsQuantized() const = 0;
};

/// Every quantizable layer reachable from `module`, depth-first in
/// declaration order — the deterministic order activation scales
/// serialize in.
std::vector<Quantizable*> CollectQuantizableLayers(Module& module);

/// Activation scales of all `layers`, flattened in order. Every layer
/// must be quantized.
std::vector<float> CollectActivationScales(
    const std::vector<Quantizable*>& layers);

/// Re-applies quantization from a CollectActivationScales() vector.
/// InvalidArgument when the flat count does not match the layer set or
/// a scale is not strictly positive.
Status ApplyActivationScales(const std::vector<Quantizable*>& layers,
                             const std::vector<float>& flat);

/// max_i |x[i]| (0 when n == 0).
float AbsMax(const float* x, size_t n);

/// Symmetric per-tensor scale for a recorded absmax: absmax / 127, with
/// a scale of 1 for degenerate (all-zero) ranges so requantization
/// never divides by zero — a zero-range tensor quantizes to all zeros
/// under any positive scale.
float QuantScaleFromAbsMax(float absmax);

/// Quantizes `rows` rows of `k` fp32 weights each with symmetric
/// per-row scales: writes rows*k int8 values to `q` and the combined
/// requantize factor act_scale * w_scale[row] to `requant_scale`.
void QuantizeWeightRows(const float* w, size_t rows, size_t k,
                        float act_scale, int8_t* q, float* requant_scale);

/// Dequantizing int8 matmul C = dequant(Aq Bq^T) with Aq:[n,k],
/// Bq:[m,k], C:[n,m], parallelized row-wise with the same shape-only
/// chunking as MatMulTransposedB (bitwise-deterministic at any thread
/// count; int8 results are additionally identical across variants).
void I8MatMulTbParallel(const int8_t* a, const int8_t* b, float* c, size_t n,
                        size_t k, size_t m, const float* scale,
                        const float* bias);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_QUANTIZE_H_
