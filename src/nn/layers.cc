#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace kdsel::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor({out_features, in_features})),
      bias_("linear.bias", Tensor({out_features})) {
  InitHeNormal(weight_.value, in_features, rng);
}

Tensor Linear::Forward(const Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == in_features_);
  if (!training) {
    if (calibrating_) {
      act_absmax_ = std::max(act_absmax_, AbsMax(input.raw(), input.size()));
    } else if (quantized_) {
      return ForwardInt8(input);
    }
  }
  cached_input_ = input;
  Tensor out = MatMulTransposedB(input, weight_.value);  // [B, out]
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t b = out.dim(0);
  for (size_t i = 0; i < b; ++i) {
    ops.add(out.raw() + i * out_features_, bias_.value.raw(), out_features_);
  }
  return out;
}

Tensor Linear::ForwardInt8(const Tensor& input) {
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t b = input.dim(0);
  // Pool-backed int8 scratch for the quantized activations (the pool
  // stores floats; 4 int8 lanes per float slot).
  ScratchBuffer iq_buf((b * in_features_ + 3) / 4);
  int8_t* iq = reinterpret_cast<int8_t*>(iq_buf.data());
  ops.i8_quantize(input.raw(), 1.0f / act_scale_, iq, b * in_features_);
  Tensor out;
  out.Resize({b, out_features_});
  I8MatMulTbParallel(iq, weight_q_.data(), out.raw(), b, in_features_,
                     out_features_, requant_scale_.data(), bias_.value.raw());
  return out;
}

void Linear::BeginQuantCalibration() {
  ClearQuantization();
  calibrating_ = true;
}

void Linear::EndQuantCalibration() {
  QuantizeWithScales({QuantScaleFromAbsMax(act_absmax_)});
}

std::vector<float> Linear::ActivationScales() const {
  KDSEL_CHECK(quantized_);
  return {act_scale_};
}

void Linear::QuantizeWithScales(const std::vector<float>& scales) {
  KDSEL_CHECK(scales.size() == 1 && scales[0] > 0.0f);
  act_scale_ = scales[0];
  weight_q_.resize(out_features_ * in_features_);
  requant_scale_.resize(out_features_);
  QuantizeWeightRows(weight_.value.raw(), out_features_, in_features_,
                     act_scale_, weight_q_.data(), requant_scale_.data());
  calibrating_ = false;
  quantized_ = true;
}

void Linear::ClearQuantization() {
  quantized_ = false;
  calibrating_ = false;
  act_absmax_ = 0.0f;
  act_scale_ = 0.0f;
  weight_q_.clear();
  weight_q_.shrink_to_fit();
  requant_scale_.clear();
  requant_scale_.shrink_to_fit();
}

Tensor Linear::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(grad_output.rank() == 2 &&
              grad_output.dim(1) == out_features_);
  // dW = dY^T X ; db = sum rows dY ; dX = dY W
  Tensor dw = MatMulTransposedA(grad_output, cached_input_);  // [out, in]
  weight_.grad.AddInPlace(dw);
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t b = grad_output.dim(0);
  for (size_t i = 0; i < b; ++i) {
    ops.add(bias_.grad.raw(), grad_output.raw() + i * out_features_,
            out_features_);
  }
  return MatMul(grad_output, weight_.value);  // [B, in]
}

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (float& v : out.mutable_data()) v = v > 0 ? v : 0.0f;
  cached_output_ = out;
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_output_));
  Tensor g = grad_output;
  const float* y = cached_output_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) {
    if (y[i] <= 0) gd[i] = 0.0f;
  }
  return g;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor Gelu::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (float& v : out.mutable_data()) {
    float x = v;
    float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    v = 0.5f * x * (1.0f + t);
  }
  return out;
}

Tensor Gelu::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_input_));
  Tensor g = grad_output;
  const float* x = cached_input_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) {
    float xi = x[i];
    float u = kGeluC * (xi + 0.044715f * xi * xi * xi);
    float t = std::tanh(u);
    float sech2 = 1.0f - t * t;
    float du = kGeluC * (1.0f + 3.0f * 0.044715f * xi * xi);
    float dy = 0.5f * (1.0f + t) + 0.5f * xi * sech2 * du;
    gd[i] *= dy;
  }
  return g;
}

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.Fork()) {
  KDSEL_CHECK(rate >= 0.0 && rate < 1.0);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  last_training_ = training && rate_ > 0.0;
  if (!last_training_) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* m = mask_.raw();
  for (size_t i = 0; i < mask_.size(); ++i) {
    m[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  Tensor out = input;
  float* o = out.raw();
  for (size_t i = 0; i < out.size(); ++i) o[i] *= m[i];
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!last_training_) return grad_output;
  KDSEL_CHECK(SameShape(grad_output, mask_));
  Tensor g = grad_output;
  const float* m = mask_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) gd[i] *= m[i];
  return g;
}

}  // namespace kdsel::nn
