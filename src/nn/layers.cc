#include "nn/layers.h"

#include <cmath>

#include "nn/kernels/kernels.h"

namespace kdsel::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor({out_features, in_features})),
      bias_("linear.bias", Tensor({out_features})) {
  InitHeNormal(weight_.value, in_features, rng);
}

Tensor Linear::Forward(const Tensor& input, bool /*training*/) {
  KDSEL_CHECK(input.rank() == 2 && input.dim(1) == in_features_);
  cached_input_ = input;
  Tensor out = MatMulTransposedB(input, weight_.value);  // [B, out]
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t b = out.dim(0);
  for (size_t i = 0; i < b; ++i) {
    ops.add(out.raw() + i * out_features_, bias_.value.raw(), out_features_);
  }
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(grad_output.rank() == 2 &&
              grad_output.dim(1) == out_features_);
  // dW = dY^T X ; db = sum rows dY ; dX = dY W
  Tensor dw = MatMulTransposedA(grad_output, cached_input_);  // [out, in]
  weight_.grad.AddInPlace(dw);
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t b = grad_output.dim(0);
  for (size_t i = 0; i < b; ++i) {
    ops.add(bias_.grad.raw(), grad_output.raw() + i * out_features_,
            out_features_);
  }
  return MatMul(grad_output, weight_.value);  // [B, in]
}

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (float& v : out.mutable_data()) v = v > 0 ? v : 0.0f;
  cached_output_ = out;
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_output_));
  Tensor g = grad_output;
  const float* y = cached_output_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) {
    if (y[i] <= 0) gd[i] = 0.0f;
  }
  return g;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor Gelu::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (float& v : out.mutable_data()) {
    float x = v;
    float t = std::tanh(kGeluC * (x + 0.044715f * x * x * x));
    v = 0.5f * x * (1.0f + t);
  }
  return out;
}

Tensor Gelu::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_input_));
  Tensor g = grad_output;
  const float* x = cached_input_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) {
    float xi = x[i];
    float u = kGeluC * (xi + 0.044715f * xi * xi * xi);
    float t = std::tanh(u);
    float sech2 = 1.0f - t * t;
    float du = kGeluC * (1.0f + 3.0f * 0.044715f * xi * xi);
    float dy = 0.5f * (1.0f + t) + 0.5f * xi * sech2 * du;
    gd[i] *= dy;
  }
  return g;
}

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(rng.Fork()) {
  KDSEL_CHECK(rate >= 0.0 && rate < 1.0);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  last_training_ = training && rate_ > 0.0;
  if (!last_training_) return input;
  mask_ = Tensor(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* m = mask_.raw();
  for (size_t i = 0; i < mask_.size(); ++i) {
    m[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  Tensor out = input;
  float* o = out.raw();
  for (size_t i = 0; i < out.size(); ++i) o[i] *= m[i];
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!last_training_) return grad_output;
  KDSEL_CHECK(SameShape(grad_output, mask_));
  Tensor g = grad_output;
  const float* m = mask_.raw();
  float* gd = g.raw();
  for (size_t i = 0; i < g.size(); ++i) gd[i] *= m[i];
  return g;
}

}  // namespace kdsel::nn
