#include "nn/optimizer.h"

#include <cmath>

#include "nn/kernels/kernels.h"

namespace kdsel::nn {

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& v = velocity_[i];
    float* pv = p->value.raw();
    const float* pg = p->grad.raw();
    float* vel = v.raw();
    const float mom = static_cast<float>(momentum_);
    const float lr = static_cast<float>(lr_);
    const float wd = static_cast<float>(weight_decay_);
    for (size_t j = 0; j < p->value.size(); ++j) {
      vel[j] = mom * vel[j] + pg[j];
      pv[j] -= lr * (vel[j] + wd * pv[j]);
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float lr = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  const float wd = static_cast<float>(weight_decay_);
  // (lr_ * wd) matches the grouping of the historical update expression
  // `lr_ * wd * pv[j]`; the scalar kernel keeps its mixed-double math.
  const double lr_wd = lr_ * wd;
  const kernels::Ops& ops = kernels::Dispatch();
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    ops.adam_update(p->value.raw(), m_[i].raw(), v_[i].raw(), p->grad.raw(),
                    p->value.size(), lr, b1, b2, eps, lr_wd);
  }
}

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  double total = 0.0;
  for (Parameter* p : params) total += p->grad.SquaredL2Norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) p->grad.ScaleInPlace(scale);
  }
  return norm;
}

}  // namespace kdsel::nn
