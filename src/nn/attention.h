#ifndef KDSEL_NN_ATTENTION_H_
#define KDSEL_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/quantize.h"

namespace kdsel::nn {

/// Layer normalization over the last dimension of [B, T, D] or [B, D].
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t dim, double eps = 1e-5);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&gamma_, &beta_}; }

 private:
  size_t dim_;
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

/// Multi-head self-attention over [B, T, D] (post-norm omitted; this is
/// the bare attention sublayer). D must be divisible by num_heads.
/// Int8 inference quantizes the four projections (the O(D^2) work); the
/// attention core — QK^T, softmax, PV — stays fp32. Two activation
/// scales: the flat input (feeds Wq/Wk/Wv) and the concat (feeds Wo).
class MultiHeadSelfAttention : public Module, public Quantizable {
 public:
  MultiHeadSelfAttention(size_t dim, size_t num_heads, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  void CollectQuantizable(std::vector<Quantizable*>* out) override {
    out->push_back(this);
  }

  void BeginQuantCalibration() override;
  void EndQuantCalibration() override;
  size_t NumActivationScales() const override { return 2; }
  std::vector<float> ActivationScales() const override;
  void QuantizeWithScales(const std::vector<float>& scales) override;
  void ClearQuantization() override;
  bool IsQuantized() const override { return quantized_; }

 private:
  /// Shared fp32 attention core: fills cached_attn_ / cached_concat_
  /// from cached_q_/k_/v_ (both the fp32 and int8 paths run this).
  void AttentionCore(size_t B, size_t T);
  Tensor ForwardInt8(const Tensor& input);

  size_t dim_;
  size_t num_heads_;
  size_t head_dim_;
  Parameter wq_, wk_, wv_, wo_;  // each [D, D]
  // Forward caches.
  Tensor cached_input_;                 // [B, T, D]
  Tensor cached_q_, cached_k_, cached_v_;  // [B, T, D]
  Tensor cached_attn_;                  // [B, H, T, T] softmaxed
  Tensor cached_concat_;                // [B, T, D] pre-Wo
  // Int8 inference state; empty/false unless quantized.
  bool quantized_ = false;
  bool calibrating_ = false;
  float in_absmax_ = 0.0f, concat_absmax_ = 0.0f;
  float in_scale_ = 0.0f, concat_scale_ = 0.0f;
  std::vector<int8_t> wq_q_, wk_q_, wv_q_, wo_q_;     // each [D, D]
  std::vector<float> rq_q_, rq_k_, rq_v_, rq_o_;      // each [D]
};

/// One pre-norm Transformer encoder block:
///   x = x + MHSA(LN(x));  x = x + FFN(LN(x))
/// with FFN = Linear(D, hidden) -> GELU -> Linear(hidden, D).
class TransformerEncoderBlock : public Module {
 public:
  TransformerEncoderBlock(size_t dim, size_t num_heads, size_t ffn_hidden,
                          double dropout_rate, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  void CollectQuantizable(std::vector<Quantizable*>* out) override {
    attn_.CollectQuantizable(out);
    ffn1_.CollectQuantizable(out);
    ffn2_.CollectQuantizable(out);
  }

 private:
  size_t dim_;
  LayerNorm ln1_;
  MultiHeadSelfAttention attn_;
  Dropout drop1_;
  LayerNorm ln2_;
  Linear ffn1_;
  Gelu gelu_;
  Linear ffn2_;
  Dropout drop2_;
  Shape cached_shape_;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_ATTENTION_H_
