#ifndef KDSEL_NN_ATTENTION_H_
#define KDSEL_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace kdsel::nn {

/// Layer normalization over the last dimension of [B, T, D] or [B, D].
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t dim, double eps = 1e-5);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&gamma_, &beta_}; }

 private:
  size_t dim_;
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
};

/// Multi-head self-attention over [B, T, D] (post-norm omitted; this is
/// the bare attention sublayer). D must be divisible by num_heads.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(size_t dim, size_t num_heads, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

 private:
  size_t dim_;
  size_t num_heads_;
  size_t head_dim_;
  Parameter wq_, wk_, wv_, wo_;  // each [D, D]
  // Forward caches.
  Tensor cached_input_;                 // [B, T, D]
  Tensor cached_q_, cached_k_, cached_v_;  // [B, T, D]
  Tensor cached_attn_;                  // [B, H, T, T] softmaxed
  Tensor cached_concat_;                // [B, T, D] pre-Wo
};

/// One pre-norm Transformer encoder block:
///   x = x + MHSA(LN(x));  x = x + FFN(LN(x))
/// with FFN = Linear(D, hidden) -> GELU -> Linear(hidden, D).
class TransformerEncoderBlock : public Module {
 public:
  TransformerEncoderBlock(size_t dim, size_t num_heads, size_t ffn_hidden,
                          double dropout_rate, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;

 private:
  size_t dim_;
  LayerNorm ln1_;
  MultiHeadSelfAttention attn_;
  Dropout drop1_;
  LayerNorm ln2_;
  Linear ffn1_;
  Gelu gelu_;
  Linear ffn2_;
  Dropout drop2_;
  Shape cached_shape_;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_ATTENTION_H_
