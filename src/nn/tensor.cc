#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <thread>

namespace kdsel::nn {

namespace {

size_t ShapeProduct(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

/// Runs fn(row_begin, row_end) over [0, rows), splitting across threads
/// when the work is large. Each thread owns disjoint output rows, so the
/// result is deterministic.
template <typename Fn>
void ParallelRows(size_t rows, size_t work_per_row, Fn&& fn) {
  static const size_t kHardwareThreads =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t total_work = rows * work_per_row;
  if (kHardwareThreads == 1 || total_work < (1u << 16) || rows < 2) {
    fn(size_t{0}, rows);
    return;
  }
  size_t n_threads = std::min(kHardwareThreads, rows);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  size_t chunk = (rows + n_threads - 1) / n_threads;
  for (size_t t = 0; t < n_threads; ++t) {
    size_t begin = t * chunk;
    size_t end = std::min(rows, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(ShapeProduct(shape_), 0.0f) {
  KDSEL_CHECK(!shape_.empty() && shape_.size() <= 4);
}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  KDSEL_CHECK(!shape_.empty() && shape_.size() <= 4);
  KDSEL_CHECK(data_.size() == ShapeProduct(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Reshaped(std::vector<size_t> new_shape) const {
  KDSEL_CHECK(ShapeProduct(new_shape) == size());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  KDSEL_CHECK(size() == other.size());
  const float* src = other.raw();
  float* dst = raw();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += src[i];
}

void Tensor::ScaleInPlace(float factor) {
  for (float& v : data_) v *= factor;
}

void Tensor::AxpyInPlace(float a, const Tensor& x) {
  KDSEL_CHECK(size() == x.size());
  const float* src = x.raw();
  float* dst = raw();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += a * src[i];
}

double Tensor::SquaredL2Norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == k);
  Tensor c({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelRows(n, k * m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * m;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const float* brow = pb + kk * m;
        for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  KDSEL_CHECK(b.dim(1) == k);
  Tensor c({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelRows(n, k * m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * m;
      for (size_t j = 0; j < m; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == n);
  Tensor c({k, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Parallelize over output rows (k): each output row kk reads column kk
  // of A, so threads write disjoint rows.
  ParallelRows(k, n * m, [&](size_t begin, size_t end) {
    for (size_t kk = begin; kk < end; ++kk) {
      float* crow = pc + kk * m;
      for (size_t i = 0; i < n; ++i) {
        const float av = pa[i * k + kk];
        if (av == 0.0f) continue;
        const float* brow = pb + i * m;
        for (size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  KDSEL_CHECK(a.rank() == 2);
  const size_t n = a.dim(0), m = a.dim(1);
  Tensor t({m, n});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) t[j * n + i] = a[i * m + j];
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(SameShape(a, b));
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor SoftmaxRows(const Tensor& logits) {
  KDSEL_CHECK(logits.rank() == 2);
  const size_t n = logits.dim(0), m = logits.dim(1);
  Tensor out({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.raw() + i * m;
    float* orow = out.raw() + i * m;
    float mx = row[0];
    for (size_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < m; ++j) orow[j] *= inv;
  }
  return out;
}

}  // namespace kdsel::nn
