#include "nn/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/parallel.h"
#include "nn/kernels/kernels.h"
#include "obs/trace.h"

namespace kdsel::nn {

namespace {

/// Row-chunk size so ParallelFor chunks carry ~32K multiply-adds each:
/// small matmuls collapse to one chunk (inline, no pool round-trip),
/// large ones split row-wise. Depends only on the shapes, keeping the
/// chunk partition — and therefore results — independent of thread
/// count.
size_t RowGrain(size_t rows, size_t work_per_row) {
  constexpr size_t kTargetWorkPerChunk = size_t{1} << 15;
  if (work_per_row == 0) return std::max<size_t>(1, rows);
  const size_t grain = kTargetWorkPerChunk / work_per_row;
  return std::max<size_t>(1, std::min(grain == 0 ? 1 : grain, rows));
}

// Square tile for the cache-blocked transpose: 32x32 floats = two 4 KiB
// panels, so both the row-major reads and column-major writes stay
// within L1 instead of striding a cache line per element.
constexpr size_t kTransposeTile = 32;

}  // namespace

Tensor::Tensor(const Shape& shape)
    : shape_(shape), data_(shape.NumElements(), /*zero=*/true) {
  KDSEL_CHECK(!shape_.empty());
}

Tensor::Tensor(const Shape& shape, const std::vector<float>& data)
    : shape_(shape), data_(shape.NumElements(), /*zero=*/false) {
  KDSEL_CHECK(!shape_.empty());
  KDSEL_CHECK(data.size() == shape_.NumElements());
  if (!data.empty()) {
    std::memcpy(data_.data(), data.data(), data.size() * sizeof(float));
  }
}

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::Reshaped(const Shape& new_shape) const {
  KDSEL_CHECK(new_shape.NumElements() == size());
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = data_;
  return t;
}

void Tensor::Resize(const Shape& shape) {
  KDSEL_CHECK(!shape.empty());
  shape_ = shape;
  data_.ResizeDiscard(shape.NumElements());
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  KDSEL_CHECK(size() == other.size());
  kernels::Dispatch().add(raw(), other.raw(), size());
}

void Tensor::ScaleInPlace(float factor) {
  kernels::Dispatch().scale(raw(), factor, size());
}

void Tensor::AxpyInPlace(float a, const Tensor& x) {
  KDSEL_CHECK(size() == x.size());
  kernels::Dispatch().axpy(raw(), a, x.raw(), size());
}

double Tensor::SquaredL2Norm() const {
  return kernels::Dispatch().squared_l2(raw(), size());
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KDSEL_SPAN("nn.matmul");
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == k);
  Tensor c({n, m});  // Zero-initialized: the kernel accumulates.
  const kernels::Ops& ops = kernels::Dispatch();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelFor(n, RowGrain(n, k * m), [&](size_t begin, size_t end) {
    ops.matmul(pa, pb, pc, k, m, begin, end);
  });
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  KDSEL_SPAN("nn.matmul_tb");
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  KDSEL_CHECK(b.dim(1) == k);
  Tensor c;
  c.Resize({n, m});  // Overwriting kernel: no zero fill needed.
  const kernels::Ops& ops = kernels::Dispatch();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelFor(n, RowGrain(n, k * m), [&](size_t begin, size_t end) {
    ops.matmul_tb(pa, pb, pc, k, m, begin, end);
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  KDSEL_SPAN("nn.matmul_ta");
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == n);
  Tensor c({k, m});  // Zero-initialized: the kernel accumulates.
  const kernels::Ops& ops = kernels::Dispatch();
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Parallelize over output rows (k): each output row kk reads column kk
  // of A, so chunks write disjoint rows.
  ParallelFor(k, RowGrain(k, n * m), [&](size_t begin, size_t end) {
    ops.matmul_ta(pa, pb, pc, n, k, m, begin, end);
  });
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  KDSEL_CHECK(a.rank() == 2);
  const size_t n = a.dim(0), m = a.dim(1);
  Tensor t;
  t.Resize({m, n});  // Every element is written below.
  const float* src = a.raw();
  float* dst = t.raw();
  for (size_t ib = 0; ib < n; ib += kTransposeTile) {
    const size_t iend = std::min(n, ib + kTransposeTile);
    for (size_t jb = 0; jb < m; jb += kTransposeTile) {
      const size_t jend = std::min(m, jb + kTransposeTile);
      for (size_t i = ib; i < iend; ++i) {
        for (size_t j = jb; j < jend; ++j) {
          dst[j * n + i] = src[i * m + j];
        }
      }
    }
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(SameShape(a, b));
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

void SoftmaxRows(const Tensor& logits, Tensor* out) {
  KDSEL_CHECK(logits.rank() == 2);
  const size_t n = logits.dim(0), m = logits.dim(1);
  out->Resize({n, m});
  const kernels::Ops& ops = kernels::Dispatch();
  const float* in = logits.raw();
  float* o = out->raw();
  // Rows are independent; ~8 flops per element (exp-dominated) sets the
  // grain. The partition depends only on (n, m) — determinism holds at
  // any thread count.
  ParallelFor(n, RowGrain(n, 8 * m), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ops.softmax_row(in + i * m, o + i * m, m);
    }
  });
}

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor out;
  SoftmaxRows(logits, &out);
  return out;
}

}  // namespace kdsel::nn
