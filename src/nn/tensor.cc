#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/parallel.h"

namespace kdsel::nn {

namespace {

size_t ShapeProduct(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

// Column tile for the cache-blocked matmul kernels: a B panel of
// kColTile columns stays resident in L1/L2 while a block of output rows
// streams over it. Must not affect results — each c[i][j] still
// accumulates over kk in ascending order.
constexpr size_t kColTile = 128;

/// Row-chunk size so ParallelFor chunks carry ~32K multiply-adds each:
/// small matmuls collapse to one chunk (inline, no pool round-trip),
/// large ones split row-wise. Depends only on the shapes, keeping the
/// chunk partition — and therefore results — independent of thread
/// count.
size_t RowGrain(size_t rows, size_t work_per_row) {
  constexpr size_t kTargetWorkPerChunk = size_t{1} << 15;
  if (work_per_row == 0) return std::max<size_t>(1, rows);
  const size_t grain = kTargetWorkPerChunk / work_per_row;
  return std::max<size_t>(1, std::min(grain == 0 ? 1 : grain, rows));
}

}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(ShapeProduct(shape_), 0.0f) {
  KDSEL_CHECK(!shape_.empty() && shape_.size() <= 4);
}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  KDSEL_CHECK(!shape_.empty() && shape_.size() <= 4);
  KDSEL_CHECK(data_.size() == ShapeProduct(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Reshaped(std::vector<size_t> new_shape) const {
  KDSEL_CHECK(ShapeProduct(new_shape) == size());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  KDSEL_CHECK(size() == other.size());
  const float* src = other.raw();
  float* dst = raw();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += src[i];
}

void Tensor::ScaleInPlace(float factor) {
  for (float& v : data_) v *= factor;
}

void Tensor::AxpyInPlace(float a, const Tensor& x) {
  KDSEL_CHECK(size() == x.size());
  const float* src = x.raw();
  float* dst = raw();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += a * src[i];
}

double Tensor::SquaredL2Norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == k);
  Tensor c({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelFor(n, RowGrain(n, k * m), [&](size_t begin, size_t end) {
    for (size_t jb = 0; jb < m; jb += kColTile) {
      const size_t jend = std::min(m, jb + kColTile);
      for (size_t i = begin; i < end; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * m;
        for (size_t kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = pb + kk * m;
          for (size_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(0);
  KDSEL_CHECK(b.dim(1) == k);
  Tensor c({n, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  ParallelFor(n, RowGrain(n, k * m), [&](size_t begin, size_t end) {
    for (size_t jb = 0; jb < m; jb += kColTile) {
      const size_t jend = std::min(m, jb + kColTile);
      for (size_t i = begin; i < end; ++i) {
        const float* arow = pa + i * k;
        float* crow = pc + i * m;
        for (size_t j = jb; j < jend; ++j) {
          const float* brow = pb + j * k;
          float acc = 0.0f;
          for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] = acc;
        }
      }
    }
  });
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(a.rank() == 2 && b.rank() == 2);
  const size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  KDSEL_CHECK(b.dim(0) == n);
  Tensor c({k, m});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Parallelize over output rows (k): each output row kk reads column kk
  // of A, so chunks write disjoint rows.
  ParallelFor(k, RowGrain(k, n * m), [&](size_t begin, size_t end) {
    for (size_t jb = 0; jb < m; jb += kColTile) {
      const size_t jend = std::min(m, jb + kColTile);
      for (size_t kk = begin; kk < end; ++kk) {
        float* crow = pc + kk * m;
        for (size_t i = 0; i < n; ++i) {
          const float av = pa[i * k + kk];
          if (av == 0.0f) continue;
          const float* brow = pb + i * m;
          for (size_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor Transpose2D(const Tensor& a) {
  KDSEL_CHECK(a.rank() == 2);
  const size_t n = a.dim(0), m = a.dim(1);
  Tensor t({m, n});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) t[j * n + i] = a[i * m + j];
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  KDSEL_CHECK(SameShape(a, b));
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor SoftmaxRows(const Tensor& logits) {
  KDSEL_CHECK(logits.rank() == 2);
  const size_t n = logits.dim(0), m = logits.dim(1);
  Tensor out({n, m});
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.raw() + i * m;
    float* orow = out.raw() + i * m;
    float mx = row[0];
    for (size_t j = 1; j < m; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t j = 0; j < m; ++j) orow[j] *= inv;
  }
  return out;
}

}  // namespace kdsel::nn
