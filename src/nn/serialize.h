#ifndef KDSEL_NN_SERIALIZE_H_
#define KDSEL_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace kdsel::nn {

/// Saves a module's parameters and state tensors (e.g. BN running stats)
/// to a binary file. The format records tensor count, shapes, and raw
/// float payloads; loading requires an identically-constructed module.
Status SaveModule(Module& module, const std::string& path);

/// Restores tensors saved by SaveModule into `module`. Fails if the
/// number of tensors or any shape differs (i.e. the architecture or
/// hyperparameters changed between save and load).
Status LoadModule(Module& module, const std::string& path);

/// Lower-level helpers used by the selector-management layer, which
/// serializes several modules into one file.
Status WriteTensors(const std::vector<const Tensor*>& tensors,
                    const std::string& path);
Status AppendTensorsToStream(const std::vector<const Tensor*>& tensors,
                             std::string& out);
StatusOr<std::vector<Tensor>> ReadTensors(const std::string& path);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_SERIALIZE_H_
