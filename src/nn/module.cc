#include "nn/module.h"

#include <cmath>

namespace kdsel::nn {

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& m : modules_) x = m->Forward(x, training);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& m : modules_) {
    for (Parameter* p : m->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor*> Sequential::StateTensors() {
  std::vector<Tensor*> state;
  for (auto& m : modules_) {
    for (Tensor* t : m->StateTensors()) state.push_back(t);
  }
  return state;
}

void Sequential::CollectQuantizable(std::vector<Quantizable*>* out) {
  for (auto& m : modules_) m->CollectQuantizable(out);
}

void InitHeNormal(Tensor& w, size_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& v : w.mutable_data()) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

void InitXavierUniform(Tensor& w, size_t fan_in, size_t fan_out, Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : w.mutable_data()) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
}

size_t ParameterCount(Module& module) {
  size_t n = 0;
  for (Parameter* p : module.Parameters()) n += p->value.size();
  return n;
}

}  // namespace kdsel::nn
