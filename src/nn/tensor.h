#ifndef KDSEL_NN_TENSOR_H_
#define KDSEL_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace kdsel::nn {

/// A dense row-major float tensor of rank 1-4.
///
/// This is the numeric workhorse of the NN library. It is a plain value
/// type (copyable/movable); operations that allocate return new tensors,
/// while the *InPlace variants mutate. There is no autograd tape — layers
/// cache what they need in Forward and implement Backward explicitly,
/// which keeps the library small and makes gradients easy to unit-test
/// with finite differences.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<size_t> shape, float value);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const {
    KDSEL_DCHECK(i < shape_.size());
    return shape_[i];
  }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }
  const float* raw() const { return data_.data(); }
  float* raw() { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D element access (rank must be 2).
  float& At(size_t i, size_t j) {
    KDSEL_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float At(size_t i, size_t j) const {
    KDSEL_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  /// 3-D element access (rank must be 3).
  float& At(size_t i, size_t j, size_t k) {
    KDSEL_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float At(size_t i, size_t j, size_t k) const {
    KDSEL_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Returns a tensor with the same data but a new shape of equal size.
  Tensor Reshaped(std::vector<size_t> new_shape) const;

  void Fill(float value);
  void AddInPlace(const Tensor& other);       ///< this += other
  void ScaleInPlace(float factor);            ///< this *= factor
  void AxpyInPlace(float a, const Tensor& x); ///< this += a * x

  /// Sum of squares of all elements.
  double SquaredL2Norm() const;

  std::string ShapeString() const;

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// Returns true if shapes match exactly.
bool SameShape(const Tensor& a, const Tensor& b);

/// C = A * B for 2-D tensors ([n,k] x [k,m] -> [n,m]). Multithreaded over
/// rows for large problems; deterministic regardless of thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T ([n,k] x [m,k] -> [n,m]).
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T * B ([n,k] x [n,m] -> [k,m]).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

/// Elementwise sum (allocating).
Tensor Add(const Tensor& a, const Tensor& b);

/// Row-wise softmax of a 2-D tensor.
Tensor SoftmaxRows(const Tensor& logits);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_TENSOR_H_
