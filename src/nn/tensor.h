#ifndef KDSEL_NN_TENSOR_H_
#define KDSEL_NN_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"
#include "nn/workspace.h"

namespace kdsel::nn {

/// Tensor shape: up to 4 dimensions stored inline. Replaces the old
/// `std::vector<size_t>` shape so constructing/copying a Tensor never
/// heap-allocates for its metadata (part of the zero-allocation
/// training-loop contract; see nn::Workspace).
class Shape {
 public:
  static constexpr size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<size_t> dims) {
    KDSEL_CHECK(dims.size() <= kMaxRank);
    for (size_t d : dims) dims_[rank_++] = d;
  }
  /// Implicit by design: legacy call sites (serialization, tests) build
  /// shapes as vectors.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Shape(const std::vector<size_t>& dims) {
    KDSEL_CHECK(dims.size() <= kMaxRank);
    for (size_t d : dims) dims_[rank_++] = d;
  }

  size_t size() const { return rank_; }
  bool empty() const { return rank_ == 0; }
  size_t operator[](size_t i) const {
    KDSEL_DCHECK(i < rank_);
    return dims_[i];
  }
  size_t back() const {
    KDSEL_DCHECK(rank_ > 0);
    return dims_[rank_ - 1];
  }
  const size_t* begin() const { return dims_; }
  const size_t* end() const { return dims_ + rank_; }

  void push_back(size_t d) {
    KDSEL_CHECK(rank_ < kMaxRank);
    dims_[rank_++] = d;
  }
  void clear() { rank_ = 0; }

  /// Product of all dimensions (1 for the empty shape).
  size_t NumElements() const {
    size_t n = 1;
    for (size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (size_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  size_t dims_[kMaxRank] = {0, 0, 0, 0};
  size_t rank_ = 0;
};

/// A dense row-major float tensor of rank 1-4.
///
/// This is the numeric workhorse of the NN library. It is a plain value
/// type (copyable/movable); operations that allocate return new tensors,
/// while the *InPlace variants mutate. There is no autograd tape — layers
/// cache what they need in Forward and implement Backward explicitly,
/// which keeps the library small and makes gradients easy to unit-test
/// with finite differences.
///
/// Storage comes from the nn::Workspace recycling pool, so tensors of
/// shapes seen before construct without touching the heap — the batch
/// loop in core::TrainSelector relies on this to run allocation-free at
/// steady state.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(const Shape& shape);
  Tensor(const Shape& shape, const std::vector<float>& data);

  static Tensor Zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor Full(const Shape& shape, float value);

  const Shape& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const {
    KDSEL_DCHECK(i < shape_.size());
    return shape_[i];
  }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const PooledBuffer& data() const { return data_; }
  PooledBuffer& mutable_data() { return data_; }
  const float* raw() const { return data_.data(); }
  float* raw() { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D element access (rank must be 2).
  float& At(size_t i, size_t j) {
    KDSEL_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float At(size_t i, size_t j) const {
    KDSEL_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  /// 3-D element access (rank must be 3).
  float& At(size_t i, size_t j, size_t k) {
    KDSEL_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float At(size_t i, size_t j, size_t k) const {
    KDSEL_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Returns a tensor with the same data but a new shape of equal size.
  Tensor Reshaped(const Shape& new_shape) const;

  /// Re-shapes in place; element contents become UNSPECIFIED (no
  /// zeroing). The existing buffer is reused whenever its capacity
  /// suffices — the building block for allocation-free gather/forward
  /// paths that overwrite every element anyway.
  void Resize(const Shape& shape);

  void Fill(float value);
  void AddInPlace(const Tensor& other);        ///< this += other
  void ScaleInPlace(float factor);             ///< this *= factor
  void AxpyInPlace(float a, const Tensor& x);  ///< this += a * x

  /// Sum of squares of all elements.
  double SquaredL2Norm() const;

  std::string ShapeString() const;

 private:
  Shape shape_;
  PooledBuffer data_;
};

/// Returns true if shapes match exactly.
bool SameShape(const Tensor& a, const Tensor& b);

/// C = A * B for 2-D tensors ([n,k] x [k,m] -> [n,m]). Multithreaded over
/// rows for large problems; deterministic regardless of thread count for
/// a fixed kernel variant (see nn/kernels/kernels.h).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A * B^T ([n,k] x [m,k] -> [n,m]).
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = A^T * B ([n,k] x [n,m] -> [k,m]).
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

/// Elementwise sum (allocating).
Tensor Add(const Tensor& a, const Tensor& b);

/// Row-wise softmax of a 2-D tensor (row-parallel).
Tensor SoftmaxRows(const Tensor& logits);
/// As above, writing into `*out` (resized as needed, no allocation at
/// steady state).
void SoftmaxRows(const Tensor& logits, Tensor* out);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_TENSOR_H_
