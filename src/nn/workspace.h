#ifndef KDSEL_NN_WORKSPACE_H_
#define KDSEL_NN_WORKSPACE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/check.h"

namespace kdsel::nn {

/// Size-bucketed recycling pool for float buffers — the arena behind
/// every Tensor and scratch buffer in the NN library.
///
/// Training touches the same tensor shapes every batch; allocating each
/// activation/gradient from the heap made the allocator the hottest
/// "kernel" in the loop. Acquire() hands out a buffer whose capacity is
/// the smallest power of two >= n (min 64 floats) from a thread-local
/// freelist, falling back to the heap only on a cold bucket. Release()
/// returns the buffer to the releasing thread's freelist. After one
/// warm-up epoch a steady-state training loop performs zero heap
/// allocations for tensor storage (asserted by train_alloc_test via
/// HeapAllocationCount()).
///
/// Thread-safety: the freelists are thread-local, so Acquire/Release
/// never contend. A buffer may be released on a different thread than
/// it was acquired on; it then recycles within that thread's cache.
class Workspace {
 public:
  /// Smallest capacity a bucket hands out, in floats.
  static constexpr size_t kMinCapacity = 64;

  /// Returns a buffer with capacity >= n (stored to *capacity).
  /// Contents are unspecified. n == 0 is invalid.
  static float* Acquire(size_t n, size_t* capacity);

  /// Returns a buffer to the pool. `capacity` must be the value
  /// Acquire() reported for this buffer.
  static void Release(float* buffer, size_t capacity);

  /// Number of times Acquire() missed the cache and hit the heap, over
  /// the whole process. Steady-state training must not move this.
  static uint64_t HeapAllocationCount();

  /// Frees every buffer cached by the calling thread (memory pressure /
  /// leak-checker hygiene; never required for correctness).
  static void TrimThreadCache();
};

/// RAII scratch: a pooled float buffer for kernel-internal temporaries
/// (gradient shards, attention score rows, row norms...). Replaces
/// ad-hoc `std::vector<float>` locals on hot paths so steady-state
/// training stays allocation-free.
class ScratchBuffer {
 public:
  explicit ScratchBuffer(size_t n) : size_(n) {
    if (n > 0) data_ = Workspace::Acquire(n, &capacity_);
  }
  ~ScratchBuffer() {
    if (data_ != nullptr) Workspace::Release(data_, capacity_);
  }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }

  void Zero() {
    if (size_ > 0) std::memset(data_, 0, size_ * sizeof(float));
  }

 private:
  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

/// Value-semantics float storage backed by the Workspace pool. Drop-in
/// for the `std::vector<float>` Tensor previously used: iterable,
/// indexable, copyable; copy-assignment reuses existing capacity.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  /// `zero` selects zero-filled (Tensor construction semantics) or
  /// unspecified contents (resize-before-overwrite paths).
  explicit PooledBuffer(size_t n, bool zero = true) { Init(n, zero); }
  PooledBuffer(const PooledBuffer& other) {
    Init(other.size_, /*zero=*/false);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
  }
  PooledBuffer& operator=(const PooledBuffer& other) {
    if (this == &other) return *this;
    ResizeDiscard(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
    return *this;
  }
  PooledBuffer(PooledBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this == &other) return *this;
    Free();
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    return *this;
  }
  ~PooledBuffer() { Free(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float* data() { return data_; }
  const float* data() const { return data_; }
  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }
  float& operator[](size_t i) {
    KDSEL_DCHECK(i < size_);
    return data_[i];
  }
  float operator[](size_t i) const {
    KDSEL_DCHECK(i < size_);
    return data_[i];
  }

  /// Sets size to n; contents become unspecified. Keeps the current
  /// buffer whenever its capacity suffices.
  void ResizeDiscard(size_t n) {
    if (n > capacity_) {
      Free();
      Init(n, /*zero=*/false);
    } else {
      size_ = n;
    }
  }

 private:
  void Init(size_t n, bool zero) {
    size_ = n;
    if (n > 0) {
      data_ = Workspace::Acquire(n, &capacity_);
      if (zero) std::memset(data_, 0, n * sizeof(float));
    }
  }
  void Free() {
    if (data_ != nullptr) {
      Workspace::Release(data_, capacity_);
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_WORKSPACE_H_
