#include "nn/attention.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace kdsel::nn {

LayerNorm::LayerNorm(size_t dim, double eps)
    : dim_(dim),
      eps_(eps),
      gamma_("ln.gamma", Tensor::Full({dim}, 1.0f)),
      beta_("ln.beta", Tensor({dim})) {}

Tensor LayerNorm::Forward(const Tensor& input, bool /*training*/) {
  KDSEL_CHECK(input.rank() >= 2 && input.shape().back() == dim_);
  const size_t rows = input.size() / dim_;
  Tensor out;
  out.Resize(input.shape());  // Every element written below.
  cached_xhat_.Resize(input.shape());
  cached_inv_std_.assign(rows, 0.0f);
  for (size_t r = 0; r < rows; ++r) {
    const float* x = input.raw() + r * dim_;
    float* xh = cached_xhat_.raw() + r * dim_;
    float* o = out.raw() + r * dim_;
    double mean = 0.0;
    for (size_t j = 0; j < dim_; ++j) mean += x[j];
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      double d = x[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim_);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[r] = inv_std;
    for (size_t j = 0; j < dim_; ++j) {
      xh[j] = static_cast<float>((x[j] - mean) * inv_std);
      o[j] = gamma_.value[j] * xh[j] + beta_.value[j];
    }
  }
  return out;
}

Tensor LayerNorm::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_xhat_));
  const size_t rows = grad_output.size() / dim_;
  Tensor grad_input;
  grad_input.Resize(grad_output.shape());  // Every element written below.
  const double n = static_cast<double>(dim_);
  for (size_t r = 0; r < rows; ++r) {
    const float* gy = grad_output.raw() + r * dim_;
    const float* xh = cached_xhat_.raw() + r * dim_;
    float* gx = grad_input.raw() + r * dim_;
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      double dxhat = static_cast<double>(gy[j]) * gamma_.value[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[j];
      gamma_.grad[j] += gy[j] * xh[j];
      beta_.grad[j] += gy[j];
    }
    const double inv_std = cached_inv_std_[r];
    for (size_t j = 0; j < dim_; ++j) {
      double dxhat = static_cast<double>(gy[j]) * gamma_.value[j];
      gx[j] = static_cast<float>(
          inv_std * (dxhat - sum_dxhat / n - xh[j] * sum_dxhat_xhat / n));
    }
  }
  return grad_input;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t dim, size_t num_heads,
                                               Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_("attn.wq", Tensor({dim, dim})),
      wk_("attn.wk", Tensor({dim, dim})),
      wv_("attn.wv", Tensor({dim, dim})),
      wo_("attn.wo", Tensor({dim, dim})) {
  KDSEL_CHECK(dim % num_heads == 0);
  InitXavierUniform(wq_.value, dim, dim, rng);
  InitXavierUniform(wk_.value, dim, dim, rng);
  InitXavierUniform(wv_.value, dim, dim, rng);
  InitXavierUniform(wo_.value, dim, dim, rng);
}

std::vector<Parameter*> MultiHeadSelfAttention::Parameters() {
  return {&wq_, &wk_, &wv_, &wo_};
}

void MultiHeadSelfAttention::AttentionCore(size_t B, size_t T) {
  const kernels::Ops& ops = kernels::Dispatch();
  cached_attn_.Resize({B, num_heads_, T, T});  // Every row softmaxed below.
  cached_concat_ = Tensor({B, T, dim_});       // Accumulated into: zero-init.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  for (size_t b = 0; b < B; ++b) {
    for (size_t h = 0; h < num_heads_; ++h) {
      const size_t off = h * head_dim_;
      float* attn =
          cached_attn_.raw() + ((b * num_heads_ + h) * T) * T;
      // scores[i][j] = scale * q_i . k_j ; then softmax rows.
      for (size_t i = 0; i < T; ++i) {
        const float* qi = cached_q_.raw() + (b * T + i) * dim_ + off;
        float* srow = attn + i * T;
        for (size_t j = 0; j < T; ++j) {
          const float* kj = cached_k_.raw() + (b * T + j) * dim_ + off;
          srow[j] = ops.dot(qi, kj, head_dim_) * scale;
        }
        ops.softmax_row(srow, srow, T);
      }
      // concat output rows: out_i = sum_j attn[i][j] * v_j
      for (size_t i = 0; i < T; ++i) {
        const float* arow = attn + i * T;
        float* orow = cached_concat_.raw() + (b * T + i) * dim_ + off;
        for (size_t j = 0; j < T; ++j) {
          const float* vj = cached_v_.raw() + (b * T + j) * dim_ + off;
          ops.axpy(orow, arow[j], vj, head_dim_);
        }
      }
    }
  }
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 3 && input.dim(2) == dim_);
  if (!training && !calibrating_ && quantized_) return ForwardInt8(input);
  cached_input_ = input;
  const size_t B = input.dim(0), T = input.dim(1);
  Tensor flat = input.Reshaped({B * T, dim_});
  if (calibrating_ && !training) {
    in_absmax_ = std::max(in_absmax_, AbsMax(flat.raw(), flat.size()));
  }
  cached_q_ = MatMulTransposedB(flat, wq_.value).Reshaped({B, T, dim_});
  cached_k_ = MatMulTransposedB(flat, wk_.value).Reshaped({B, T, dim_});
  cached_v_ = MatMulTransposedB(flat, wv_.value).Reshaped({B, T, dim_});

  AttentionCore(B, T);
  if (calibrating_ && !training) {
    concat_absmax_ = std::max(
        concat_absmax_, AbsMax(cached_concat_.raw(), cached_concat_.size()));
  }
  Tensor out = MatMulTransposedB(cached_concat_.Reshaped({B * T, dim_}),
                                 wo_.value);
  return out.Reshaped({B, T, dim_});
}

Tensor MultiHeadSelfAttention::ForwardInt8(const Tensor& input) {
  const size_t B = input.dim(0), T = input.dim(1);
  const size_t rows = B * T;
  const kernels::Ops& ops = kernels::Dispatch();
  // Quantize the flat input once; it feeds all three projections.
  ScratchBuffer iq_buf((rows * dim_ + 3) / 4);
  int8_t* iq = reinterpret_cast<int8_t*>(iq_buf.data());
  ops.i8_quantize(input.raw(), 1.0f / in_scale_, iq, rows * dim_);
  cached_q_.Resize({B, T, dim_});
  cached_k_.Resize({B, T, dim_});
  cached_v_.Resize({B, T, dim_});
  I8MatMulTbParallel(iq, wq_q_.data(), cached_q_.raw(), rows, dim_, dim_,
                     rq_q_.data(), nullptr);
  I8MatMulTbParallel(iq, wk_q_.data(), cached_k_.raw(), rows, dim_, dim_,
                     rq_k_.data(), nullptr);
  I8MatMulTbParallel(iq, wv_q_.data(), cached_v_.raw(), rows, dim_, dim_,
                     rq_v_.data(), nullptr);

  AttentionCore(B, T);

  ScratchBuffer cq_buf((rows * dim_ + 3) / 4);
  int8_t* cq = reinterpret_cast<int8_t*>(cq_buf.data());
  ops.i8_quantize(cached_concat_.raw(), 1.0f / concat_scale_, cq,
                  rows * dim_);
  Tensor out;
  out.Resize({B, T, dim_});
  I8MatMulTbParallel(cq, wo_q_.data(), out.raw(), rows, dim_, dim_,
                     rq_o_.data(), nullptr);
  return out;
}

void MultiHeadSelfAttention::BeginQuantCalibration() {
  ClearQuantization();
  calibrating_ = true;
}

void MultiHeadSelfAttention::EndQuantCalibration() {
  QuantizeWithScales({QuantScaleFromAbsMax(in_absmax_),
                      QuantScaleFromAbsMax(concat_absmax_)});
}

std::vector<float> MultiHeadSelfAttention::ActivationScales() const {
  KDSEL_CHECK(quantized_);
  return {in_scale_, concat_scale_};
}

void MultiHeadSelfAttention::QuantizeWithScales(
    const std::vector<float>& scales) {
  KDSEL_CHECK(scales.size() == 2 && scales[0] > 0.0f && scales[1] > 0.0f);
  in_scale_ = scales[0];
  concat_scale_ = scales[1];
  wq_q_.resize(dim_ * dim_);
  wk_q_.resize(dim_ * dim_);
  wv_q_.resize(dim_ * dim_);
  wo_q_.resize(dim_ * dim_);
  rq_q_.resize(dim_);
  rq_k_.resize(dim_);
  rq_v_.resize(dim_);
  rq_o_.resize(dim_);
  QuantizeWeightRows(wq_.value.raw(), dim_, dim_, in_scale_, wq_q_.data(),
                     rq_q_.data());
  QuantizeWeightRows(wk_.value.raw(), dim_, dim_, in_scale_, wk_q_.data(),
                     rq_k_.data());
  QuantizeWeightRows(wv_.value.raw(), dim_, dim_, in_scale_, wv_q_.data(),
                     rq_v_.data());
  QuantizeWeightRows(wo_.value.raw(), dim_, dim_, concat_scale_, wo_q_.data(),
                     rq_o_.data());
  calibrating_ = false;
  quantized_ = true;
}

void MultiHeadSelfAttention::ClearQuantization() {
  quantized_ = false;
  calibrating_ = false;
  in_absmax_ = concat_absmax_ = 0.0f;
  in_scale_ = concat_scale_ = 0.0f;
  for (auto* v : {&wq_q_, &wk_q_, &wv_q_, &wo_q_}) {
    v->clear();
    v->shrink_to_fit();
  }
  for (auto* v : {&rq_q_, &rq_k_, &rq_v_, &rq_o_}) {
    v->clear();
    v->shrink_to_fit();
  }
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_output) {
  const size_t B = cached_input_.dim(0), T = cached_input_.dim(1);
  KDSEL_CHECK(grad_output.rank() == 3 && grad_output.dim(0) == B &&
              grad_output.dim(1) == T && grad_output.dim(2) == dim_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  const kernels::Ops& ops = kernels::Dispatch();
  Tensor gy_flat = grad_output.Reshaped({B * T, dim_});
  Tensor concat_flat = cached_concat_.Reshaped({B * T, dim_});
  wo_.grad.AddInPlace(MatMulTransposedA(gy_flat, concat_flat));
  Tensor d_concat =
      MatMul(gy_flat, wo_.value).Reshaped({B, T, dim_});  // [B,T,D]

  Tensor dq({B, T, dim_}), dk({B, T, dim_}), dv({B, T, dim_});
  ScratchBuffer d_attn(T * T);  // Fully rewritten per (b, h) below.

  for (size_t b = 0; b < B; ++b) {
    for (size_t h = 0; h < num_heads_; ++h) {
      const size_t off = h * head_dim_;
      const float* attn = cached_attn_.raw() + ((b * num_heads_ + h) * T) * T;
      // dV and dAttn.
      for (size_t i = 0; i < T; ++i) {
        const float* doi = d_concat.raw() + (b * T + i) * dim_ + off;
        const float* arow = attn + i * T;
        float* darow = d_attn.data() + i * T;
        for (size_t j = 0; j < T; ++j) {
          const float* vj = cached_v_.raw() + (b * T + j) * dim_ + off;
          float* dvj = dv.raw() + (b * T + j) * dim_ + off;
          darow[j] = ops.dot(doi, vj, head_dim_);
          ops.axpy(dvj, arow[j], doi, head_dim_);
        }
      }
      // Softmax backward per row -> dScores, then dQ, dK.
      for (size_t i = 0; i < T; ++i) {
        const float* arow = attn + i * T;
        float* darow = d_attn.data() + i * T;
        double dot = 0.0;
        for (size_t j = 0; j < T; ++j) dot += double(darow[j]) * arow[j];
        for (size_t j = 0; j < T; ++j) {
          darow[j] = static_cast<float>(arow[j] * (darow[j] - dot)) * scale;
        }
        // dQ_i += sum_j dS[i][j] K_j ; dK_j += dS[i][j] Q_i
        float* dqi = dq.raw() + (b * T + i) * dim_ + off;
        const float* qi = cached_q_.raw() + (b * T + i) * dim_ + off;
        for (size_t j = 0; j < T; ++j) {
          const float ds = darow[j];
          const float* kj = cached_k_.raw() + (b * T + j) * dim_ + off;
          float* dkj = dk.raw() + (b * T + j) * dim_ + off;
          ops.axpy(dqi, ds, kj, head_dim_);
          ops.axpy(dkj, ds, qi, head_dim_);
        }
      }
    }
  }

  Tensor x_flat = cached_input_.Reshaped({B * T, dim_});
  Tensor dq_flat = dq.Reshaped({B * T, dim_});
  Tensor dk_flat = dk.Reshaped({B * T, dim_});
  Tensor dv_flat = dv.Reshaped({B * T, dim_});
  wq_.grad.AddInPlace(MatMulTransposedA(dq_flat, x_flat));
  wk_.grad.AddInPlace(MatMulTransposedA(dk_flat, x_flat));
  wv_.grad.AddInPlace(MatMulTransposedA(dv_flat, x_flat));

  Tensor dx = MatMul(dq_flat, wq_.value);
  dx.AddInPlace(MatMul(dk_flat, wk_.value));
  dx.AddInPlace(MatMul(dv_flat, wv_.value));
  return dx.Reshaped({B, T, dim_});
}

TransformerEncoderBlock::TransformerEncoderBlock(size_t dim, size_t num_heads,
                                                 size_t ffn_hidden,
                                                 double dropout_rate, Rng& rng)
    : dim_(dim),
      ln1_(dim),
      attn_(dim, num_heads, rng),
      drop1_(dropout_rate, rng),
      ln2_(dim),
      ffn1_(dim, ffn_hidden, rng),
      ffn2_(ffn_hidden, dim, rng),
      drop2_(dropout_rate, rng) {}

std::vector<Parameter*> TransformerEncoderBlock::Parameters() {
  std::vector<Parameter*> params;
  for (Module* m : std::initializer_list<Module*>{&ln1_, &attn_, &ln2_,
                                                  &ffn1_, &ffn2_}) {
    for (Parameter* p : m->Parameters()) params.push_back(p);
  }
  return params;
}

Tensor TransformerEncoderBlock::Forward(const Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 3 && input.dim(2) == dim_);
  cached_shape_ = input.shape();
  const size_t B = input.dim(0), T = input.dim(1);

  // Attention sublayer with residual.
  Tensor a = ln1_.Forward(input, training);
  a = attn_.Forward(a, training);
  a = drop1_.Forward(a, training);
  Tensor x1 = Add(input, a);

  // FFN sublayer (token-wise; flatten to 2-D for Linear) with residual.
  Tensor f = ln2_.Forward(x1, training);
  f = ffn1_.Forward(f.Reshaped({B * T, dim_}), training);
  f = gelu_.Forward(f, training);
  f = ffn2_.Forward(f, training);
  f = drop2_.Forward(f.Reshaped({B, T, dim_}), training);
  return Add(x1, f);
}

Tensor TransformerEncoderBlock::Backward(const Tensor& grad_output) {
  const size_t B = cached_shape_[0], T = cached_shape_[1];
  // FFN path.
  Tensor gf = drop2_.Backward(grad_output);
  gf = ffn2_.Backward(gf.Reshaped({B * T, dim_}));
  gf = gelu_.Backward(gf);
  gf = ffn1_.Backward(gf);
  gf = ln2_.Backward(gf.Reshaped({B, T, dim_}));
  // Residual: gradient w.r.t. x1 flows both through FFN path and directly.
  Tensor gx1 = Add(grad_output, gf);
  // Attention path.
  Tensor ga = drop1_.Backward(gx1);
  ga = attn_.Backward(ga);
  ga = ln1_.Backward(ga);
  return Add(gx1, ga);
}

}  // namespace kdsel::nn
