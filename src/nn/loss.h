#ifndef KDSEL_NN_LOSS_H_
#define KDSEL_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace kdsel::nn {

/// Result of a loss evaluation over a batch.
///
/// `per_sample` holds each sample's *unweighted* loss (used by the PA
/// pruning module to maintain loss histories), while `mean_loss` and the
/// gradients incorporate the per-sample weights: the optimized objective
/// is (1/B) * sum_i w_i * L_i. Weights are how InfoBatch/PA implement
/// gradient rescaling of surviving samples.
struct LossResult {
  double mean_loss = 0.0;
  std::vector<float> per_sample;
  Tensor grad;  ///< d(objective)/d(logits or features), matching the input.
};

/// Cross-entropy with hard integer labels: L_i = -log softmax(logits_i)[y_i].
/// `weights` may be empty (all ones) or size B.
LossResult SoftmaxCrossEntropyHard(const Tensor& logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& weights);
/// Out-param form: reuses `result`'s buffers so the training batch loop
/// stays allocation-free at steady state.
void SoftmaxCrossEntropyHard(const Tensor& logits,
                             const std::vector<int>& labels,
                             const std::vector<float>& weights,
                             LossResult* result);

/// Cross-entropy against soft target distributions (paper's PISL term):
/// L_i = -sum_j p_ij log softmax(logits_i)_j. `targets` is [B, m] with
/// rows summing to 1.
LossResult SoftmaxCrossEntropySoft(const Tensor& logits, const Tensor& targets,
                                   const std::vector<float>& weights);
/// Out-param form (see SoftmaxCrossEntropyHard).
void SoftmaxCrossEntropySoft(const Tensor& logits, const Tensor& targets,
                             const std::vector<float>& weights,
                             LossResult* result);

/// Result of the InfoNCE contrastive loss between two views.
struct InfoNceResult {
  double mean_loss = 0.0;
  std::vector<float> per_sample;
  Tensor grad_a;  ///< d/d(view_a), same shape as view_a.
  Tensor grad_b;  ///< d/d(view_b).
};

/// Symmetric InfoNCE (paper's MKI term; van den Oord et al.).
///
/// Rows of `view_a`/`view_b` are L2-normalized internally; similarities
/// are scaled by 1/temperature; the positives are the diagonal pairs
/// (a_i, b_i) and the loss averages the a->b and b->a directions.
/// Gradients are with respect to the *unnormalized* inputs.
///
/// `group_ids` (empty, or size B) marks samples whose second view is
/// identical (e.g. windows of one series sharing one metadata text).
/// Same-group off-diagonal pairs are *excluded* from the denominators:
/// they are false negatives — sample i must not be repelled from a text
/// that is literally its own.
InfoNceResult InfoNce(const Tensor& view_a, const Tensor& view_b,
                      double temperature, const std::vector<float>& weights,
                      const std::vector<size_t>& group_ids = {});
/// Out-param form (see SoftmaxCrossEntropyHard); `group_ids` required to
/// keep the overload set unambiguous.
void InfoNce(const Tensor& view_a, const Tensor& view_b, double temperature,
             const std::vector<float>& weights,
             const std::vector<size_t>& group_ids, InfoNceResult* result);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_LOSS_H_
