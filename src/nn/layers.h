#ifndef KDSEL_NN_LAYERS_H_
#define KDSEL_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "nn/quantize.h"

namespace kdsel::nn {

/// Fully-connected layer: [B, in] -> [B, out], y = x W^T + b.
/// Supports int8 inference (nn/quantize.h): one per-tensor input scale,
/// per-output-row weight scales, bias fused into the requantize.
class Linear : public Module, public Quantizable {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }
  void CollectQuantizable(std::vector<Quantizable*>* out) override {
    out->push_back(this);
  }

  void BeginQuantCalibration() override;
  void EndQuantCalibration() override;
  size_t NumActivationScales() const override { return 1; }
  std::vector<float> ActivationScales() const override;
  void QuantizeWithScales(const std::vector<float>& scales) override;
  void ClearQuantization() override;
  bool IsQuantized() const override { return quantized_; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

 private:
  Tensor ForwardInt8(const Tensor& input);

  size_t in_features_;
  size_t out_features_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
  // Int8 inference state; empty/false unless quantized.
  bool quantized_ = false;
  bool calibrating_ = false;
  float act_absmax_ = 0.0f;
  float act_scale_ = 0.0f;
  std::vector<int8_t> weight_q_;      // [out, in]
  std::vector<float> requant_scale_;  // [out] = act_scale * w_scale[o]
};

/// Elementwise ReLU; shape-preserving.
class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

/// Elementwise GELU (tanh approximation); shape-preserving.
class Gelu : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// Inverted dropout. Deterministic given the module's RNG stream. Active
/// only when training; identity at inference.
class Dropout : public Module {
 public:
  Dropout(double rate, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_LAYERS_H_
