#ifndef KDSEL_NN_LAYERS_H_
#define KDSEL_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"

namespace kdsel::nn {

/// Fully-connected layer: [B, in] -> [B, out], y = x W^T + b.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;
};

/// Elementwise ReLU; shape-preserving.
class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_output_;
};

/// Elementwise GELU (tanh approximation); shape-preserving.
class Gelu : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

/// Inverted dropout. Deterministic given the module's RNG stream. Active
/// only when training; identity at inference.
class Dropout : public Module {
 public:
  Dropout(double rate, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_LAYERS_H_
