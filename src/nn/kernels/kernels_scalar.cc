// Scalar reference kernels: the original loop nests from tensor.cc /
// conv.cc / loss.cc / optimizer.cc, verbatim except for the removed
// `v == 0.0f` skip branches (which silently turned 0 * NaN/Inf into 0
// and cost a branch per element). For finite inputs the accumulation
// order — and therefore every bit of the result — is unchanged from the
// pre-kernel code.

#include <algorithm>
#include <cmath>

#include "common/annotations.h"
#include "nn/kernels/kernels.h"

namespace kdsel::nn::kernels {
namespace scalar {
namespace {

// Column tile for the cache-blocked matmul kernels: a B panel of
// kColTile columns stays resident in L1/L2 while a block of output rows
// streams over it. Must not affect results — each c[i][j] still
// accumulates over kk in ascending order.
constexpr size_t kColTile = 128;

KDSEL_HOT void MatMulRows(const float* a, const float* b, float* c, size_t k, size_t m,
                size_t i0, size_t i1) {
  for (size_t jb = 0; jb < m; jb += kColTile) {
    const size_t jend = std::min(m, jb + kColTile);
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + kk * m;
        for (size_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

KDSEL_HOT void MatMulTbRows(const float* a, const float* b, float* c, size_t k, size_t m,
                  size_t i0, size_t i1) {
  for (size_t jb = 0; jb < m; jb += kColTile) {
    const size_t jend = std::min(m, jb + kColTile);
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      for (size_t j = jb; j < jend; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  }
}

KDSEL_HOT void MatMulTaRows(const float* a, const float* b, float* c, size_t n, size_t k,
                  size_t m, size_t k0, size_t k1) {
  for (size_t jb = 0; jb < m; jb += kColTile) {
    const size_t jend = std::min(m, jb + kColTile);
    for (size_t kk = k0; kk < k1; ++kk) {
      float* crow = c + kk * m;
      for (size_t i = 0; i < n; ++i) {
        const float av = a[i * k + kk];
        const float* brow = b + i * m;
        for (size_t j = jb; j < jend; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

KDSEL_HOT void Add(float* y, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i];
}

KDSEL_HOT void Axpy(float* y, float a, const float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

KDSEL_HOT void Scale(float* x, float a, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

KDSEL_HOT void AddScalar(float* x, float a, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] += a;
}

KDSEL_HOT void ScaledCopy(float* y, const float* x, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = s * x[i];
}

KDSEL_HOT void ScaledDiff(float* g, const float* p, const float* t, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) g[i] = s * (p[i] - t[i]);
}

KDSEL_HOT float Dot(const float* a, const float* b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

KDSEL_HOT float Sum(const float* x, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

KDSEL_HOT double SquaredL2(const float* x, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(x[i]) * x[i];
  }
  return sum;
}

KDSEL_HOT float ConvGradTap(const float* gy, const float* x, float w, float* gx,
                  size_t n) {
  float wgrad_acc = 0.0f;
  for (size_t t = 0; t < n; ++t) {
    wgrad_acc += gy[t] * x[t];
    gx[t] += gy[t] * w;
  }
  return wgrad_acc;
}

KDSEL_HOT void SoftmaxRow(const float* x, float* y, size_t m) {
  float mx = x[0];
  for (size_t j = 1; j < m; ++j) mx = std::max(mx, x[j]);
  double sum = 0.0;
  for (size_t j = 0; j < m; ++j) {
    y[j] = std::exp(x[j] - mx);
    sum += y[j];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t j = 0; j < m; ++j) y[j] *= inv;
}

KDSEL_HOT void AdamUpdate(float* p, float* m, float* v, const float* g, size_t n,
                float lr, float b1, float b2, float eps, double lr_wd) {
  for (size_t j = 0; j < n; ++j) {
    m[j] = b1 * m[j] + (1 - b1) * g[j];
    v[j] = b2 * v[j] + (1 - b2) * g[j] * g[j];
    // Mixed float/double expression preserved exactly from the original
    // Adam::Step: the lr*weight_decay term promotes the sum to double
    // before the single truncating store.
    p[j] -= lr * m[j] / (std::sqrt(v[j]) + eps) + lr_wd * p[j];
  }
}

#include "nn/kernels/kernels_i8_ref.inc"

}  // namespace

const Ops kOps = {
    Variant::kScalar,
    "scalar",
    MatMulRows,
    MatMulTbRows,
    MatMulTaRows,
    Add,
    Axpy,
    Scale,
    AddScalar,
    ScaledCopy,
    ScaledDiff,
    Dot,
    Sum,
    SquaredL2,
    ConvGradTap,
    SoftmaxRow,
    AdamUpdate,
    I8Quantize,
    I8MatMulTb,
    I8Dot,
    kI8ImplName,
};

}  // namespace scalar

namespace detail {
const Ops* ScalarOps() { return &scalar::kOps; }
}  // namespace detail

}  // namespace kdsel::nn::kernels
