// Generic portable-vector kernels: 4 float lanes via GCC vector
// extensions, compiled with the project's baseline flags (SSE2 on
// x86-64; NEON-sized on aarch64). Always available, no CPU gate.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/annotations.h"
#include "nn/kernels/kernels.h"

#define KDSEL_VEC_WIDTH 4
#define KDSEL_VEC_VARIANT Variant::kGeneric
#define KDSEL_VEC_NAME "generic"

namespace kdsel::nn::kernels {
namespace generic {
#include "nn/kernels/kernels_vec.inc"
}  // namespace generic

namespace detail {
const Ops* GenericOps() { return &generic::kOps; }
}  // namespace detail

}  // namespace kdsel::nn::kernels
