#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/cpu.h"
#include "nn/kernels/kernels.h"
#include "obs/metrics.h"

namespace kdsel::nn::kernels {
namespace {

// Which Ops table is live, as the Variant enum's integer value, so a
// metrics snapshot records the kernel backend a run actually used.
void PublishVariantGauge(const Ops& ops) {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("kdsel.nn.kernel_variant");
  gauge.Set(static_cast<double>(static_cast<int>(ops.variant)));
}

// Active table. nullptr until first Dispatch(); resolution is
// idempotent, so the benign first-use race is harmless.
std::atomic<const Ops*> g_active{nullptr};

const Ops* Resolve() {
  const char* env = std::getenv("KDSEL_SIMD");
  if (env == nullptr || *env == '\0') return &GetOps(BestSupportedVariant());
  auto parsed = ParseVariantName(env);
  if (parsed.ok() && VariantSupported(*parsed)) return &GetOps(*parsed);
  // Fallback warnings name the table actually returned (its own `name`
  // field, not an independently recomputed variant) so the message can
  // never drift from the kernels that end up running.
  const Ops& chosen = GetOps(BestSupportedVariant());
  if (!parsed.ok()) {
    std::fprintf(stderr,
                 "[kernels] ignoring invalid KDSEL_SIMD=%s (%s); using %s\n",
                 env, parsed.status().message().c_str(), chosen.name);
  } else {
    std::fprintf(stderr,
                 "[kernels] KDSEL_SIMD=%s is not available on this build/CPU; "
                 "using %s\n",
                 env, chosen.name);
  }
  return &chosen;
}

}  // namespace

const Ops& Dispatch() {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = Resolve();
    g_active.store(ops, std::memory_order_release);
    PublishVariantGauge(*ops);
  }
  return *ops;
}

Variant ActiveVariant() { return Dispatch().variant; }

bool VariantSupported(Variant v) {
  switch (v) {
    case Variant::kScalar:
    case Variant::kGeneric:
      return true;
    case Variant::kAvx2:
      return detail::Avx2Ops() != nullptr && CpuSupportsAvx2Fma();
  }
  return false;
}

const Ops& GetOps(Variant v) {
  KDSEL_CHECK(VariantSupported(v));
  switch (v) {
    case Variant::kScalar:
      return *detail::ScalarOps();
    case Variant::kGeneric:
      return *detail::GenericOps();
    case Variant::kAvx2:
      return *detail::Avx2Ops();
  }
  return *detail::ScalarOps();
}

Variant BestSupportedVariant() {
  if (VariantSupported(Variant::kAvx2)) return Variant::kAvx2;
  return Variant::kGeneric;
}

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> variants = {Variant::kScalar, Variant::kGeneric};
  if (VariantSupported(Variant::kAvx2)) variants.push_back(Variant::kAvx2);
  return variants;
}

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kGeneric:
      return "generic";
    case Variant::kAvx2:
      return "avx2";
  }
  return "unknown";
}

StatusOr<Variant> ParseVariantName(std::string_view name) {
  if (name == "scalar") return Variant::kScalar;
  if (name == "generic") return Variant::kGeneric;
  if (name == "avx2") return Variant::kAvx2;
  return Status::InvalidArgument("expected scalar|generic|avx2, got '" +
                                 std::string(name) + "'");
}

void ResetDispatchForTesting(Variant v) {
  const Ops* ops = &GetOps(v);
  g_active.store(ops, std::memory_order_release);
  PublishVariantGauge(*ops);
}

void ResetDispatchForTesting() {
  const Ops* ops = Resolve();
  g_active.store(ops, std::memory_order_release);
  PublishVariantGauge(*ops);
}

}  // namespace kdsel::nn::kernels
