// AVX2+FMA kernels: 8 float lanes. This translation unit alone is built
// with -mavx2 -mfma -ffp-contract=fast (CMake defines KDSEL_AVX2_TU
// when the compiler accepts those flags), so mul+add chains contract to
// FMAs; contraction is fixed at build time, keeping results
// deterministic for the variant. Dispatch() only selects this table
// when CPUID reports avx2+fma, so no illegal instruction can leak onto
// older machines.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/annotations.h"
#include "nn/kernels/kernels.h"

#if defined(KDSEL_AVX2_TU) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#define KDSEL_VEC_WIDTH 8
#define KDSEL_VEC_VARIANT Variant::kAvx2
#define KDSEL_VEC_NAME "avx2"
// This TU supplies its own int8 kernels below instead of the scalar
// reference in kernels_i8_ref.inc.
#define KDSEL_VEC_I8_EXTERNAL 1

namespace kdsel::nn::kernels {
namespace avx2 {
namespace {

// Int8 kernels on the VPMADDUBSW/VPMADDWD dot-product pair: 32 int8
// MACs per instruction sequence vs 8 fp32 FMAs, which is where the >=2x
// quantized-inference throughput comes from. All accumulation is exact
// integer math, so results are bitwise-identical to the scalar
// reference regardless of the blocking below.

constexpr const char* kI8ImplName = "i8-maddubs";

inline __m256i LoadI8(const int8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// acc += sum of 32 a[i]*b[i] products, widened pairwise to int32.
// maddubs wants an unsigned left operand: feed it |a| and move a's sign
// onto b. Operands are clamped to [-127, 127] at quantize time, so each
// i16 pair sum is at most 2*127*127 = 32258 < 32767 — never saturates.
inline __m256i I8DotStep(__m256i acc, __m256i va, __m256i vb) {
  const __m256i abs_a = _mm256_sign_epi8(va, va);
  const __m256i signed_b = _mm256_sign_epi8(vb, va);
  const __m256i pairs = _mm256_maddubs_epi16(abs_a, signed_b);
  return _mm256_add_epi32(acc,
                          _mm256_madd_epi16(pairs, _mm256_set1_epi16(1)));
}

inline int32_t HSumI32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

void I8Quantize(const float* x, float inv_scale, int8_t* q, size_t n) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  // packs_epi32/packs_epi16 interleave 128-bit lanes; this permute puts
  // the 32 bytes back in source order.
  const __m256i lane_fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i d[4];
    for (size_t t = 0; t < 4; ++t) {
      const __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * t), vs);
      // cvtps rounds to nearest-even, matching the reference lrintf;
      // the float-domain clamp keeps packs saturation (to -128) out of
      // reach.
      d[t] = _mm256_cvtps_epi32(_mm256_min_ps(_mm256_max_ps(v, vlo), vhi));
    }
    const __m256i p01 = _mm256_packs_epi32(d[0], d[1]);
    const __m256i p23 = _mm256_packs_epi32(d[2], d[3]);
    const __m256i packed =
        _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), lane_fix);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), packed);
  }
  for (; i < n; ++i) {
    float v = x[i] * inv_scale;
    v = v < -127.0f ? -127.0f : v;
    v = v > 127.0f ? 127.0f : v;
    q[i] = static_cast<int8_t>(std::lrintf(v));
  }
}

void I8MatMulTb(const int8_t* a, const int8_t* b, float* c, size_t k, size_t m,
                const float* scale, const float* bias, size_t i0, size_t i1) {
  for (size_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * k;
    float* crow = c + i * m;
    size_t j = 0;
    // 4-wide output blocking: each 32-byte A load feeds four B rows.
    for (; j + 4 <= m; j += 4) {
      const int8_t* b0 = b + j * k;
      const int8_t* b1 = b0 + k;
      const int8_t* b2 = b1 + k;
      const int8_t* b3 = b2 + k;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      size_t kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        const __m256i va = LoadI8(arow + kk);
        acc0 = I8DotStep(acc0, va, LoadI8(b0 + kk));
        acc1 = I8DotStep(acc1, va, LoadI8(b1 + kk));
        acc2 = I8DotStep(acc2, va, LoadI8(b2 + kk));
        acc3 = I8DotStep(acc3, va, LoadI8(b3 + kk));
      }
      int32_t acc[4] = {HSumI32(acc0), HSumI32(acc1), HSumI32(acc2),
                        HSumI32(acc3)};
      for (; kk < k; ++kk) {
        const int32_t av = arow[kk];
        acc[0] += av * b0[kk];
        acc[1] += av * b1[kk];
        acc[2] += av * b2[kk];
        acc[3] += av * b3[kk];
      }
      for (size_t t = 0; t < 4; ++t) {
        const float deq = static_cast<float>(acc[t]);
        crow[j + t] = bias != nullptr
                          ? std::fmaf(scale[j + t], deq, bias[j + t])
                          : scale[j + t] * deq;
      }
    }
    for (; j < m; ++j) {
      const int8_t* brow = b + j * k;
      __m256i vacc = _mm256_setzero_si256();
      size_t kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        vacc = I8DotStep(vacc, LoadI8(arow + kk), LoadI8(brow + kk));
      }
      int32_t acc = HSumI32(vacc);
      for (; kk < k; ++kk) {
        acc += static_cast<int32_t>(arow[kk]) * static_cast<int32_t>(brow[kk]);
      }
      const float deq = static_cast<float>(acc);
      crow[j] = bias != nullptr ? std::fmaf(scale[j], deq, bias[j])
                                : scale[j] * deq;
    }
  }
}

int32_t I8Dot(const int8_t* a, const int8_t* b, size_t n) {
  __m256i vacc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vacc = I8DotStep(vacc, LoadI8(a + i), LoadI8(b + i));
  }
  int32_t acc = HSumI32(vacc);
  for (; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

}  // namespace

#include "nn/kernels/kernels_vec.inc"
}  // namespace avx2

namespace detail {
const Ops* Avx2Ops() { return &avx2::kOps; }
}  // namespace detail

}  // namespace kdsel::nn::kernels

#else  // compiler lacks AVX2 support: variant reported unavailable

namespace kdsel::nn::kernels::detail {
const Ops* Avx2Ops() { return nullptr; }
}  // namespace kdsel::nn::kernels::detail

#endif
