// AVX2+FMA kernels: 8 float lanes. This translation unit alone is built
// with -mavx2 -mfma -ffp-contract=fast (CMake defines KDSEL_AVX2_TU
// when the compiler accepts those flags), so mul+add chains contract to
// FMAs; contraction is fixed at build time, keeping results
// deterministic for the variant. Dispatch() only selects this table
// when CPUID reports avx2+fma, so no illegal instruction can leak onto
// older machines.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "nn/kernels/kernels.h"

#if defined(KDSEL_AVX2_TU) && defined(__AVX2__) && defined(__FMA__)

#define KDSEL_VEC_WIDTH 8
#define KDSEL_VEC_VARIANT Variant::kAvx2
#define KDSEL_VEC_NAME "avx2"

namespace kdsel::nn::kernels {
namespace avx2 {
#include "nn/kernels/kernels_vec.inc"
}  // namespace avx2

namespace detail {
const Ops* Avx2Ops() { return &avx2::kOps; }
}  // namespace detail

}  // namespace kdsel::nn::kernels

#else  // compiler lacks AVX2 support: variant reported unavailable

namespace kdsel::nn::kernels::detail {
const Ops* Avx2Ops() { return nullptr; }
}  // namespace kdsel::nn::kernels::detail

#endif
