#ifndef KDSEL_NN_KERNELS_KERNELS_H_
#define KDSEL_NN_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kdsel::nn::kernels {

/// Vector-width flavor of the compute kernels. kScalar is the original
/// loop nest (always available, bitwise-stable reference); kGeneric is
/// a 4-lane portable-vector build (SSE2 on x86-64 baseline); kAvx2 is
/// an 8-lane AVX2+FMA build, present only when the compiler supports
/// the flags and the CPU reports avx2+fma at runtime.
enum class Variant {
  kScalar = 0,
  kGeneric = 1,
  kAvx2 = 2,
};

/// Function-pointer table for the hot numeric kernels. All matrices are
/// row-major float. Row-range kernels ([i0,i1) / [k0,k1)) exist so
/// ParallelFor chunks map 1:1 onto kernel calls; every kernel uses a
/// fixed per-element accumulation order that depends only on the
/// operand shapes, never on the chunk bounds or thread count, which is
/// what keeps training bitwise-deterministic for a fixed variant.
struct Ops {
  Variant variant;
  const char* name;

  /// C[i0:i1, :] += A[i0:i1, :] * B with A:[n,k], B:[k,m], C:[n,m].
  /// C rows must be zero-initialized by the caller (accumulating form).
  void (*matmul)(const float* a, const float* b, float* c, size_t k, size_t m,
                 size_t i0, size_t i1);
  /// C[i0:i1, :] = A[i0:i1, :] * B^T with A:[n,k], B:[m,k], C:[n,m].
  /// Overwrites its output rows.
  void (*matmul_tb)(const float* a, const float* b, float* c, size_t k,
                    size_t m, size_t i0, size_t i1);
  /// C[k0:k1, :] += A^T[k0:k1, :] * B with A:[n,k], B:[n,m], C:[k,m].
  /// C rows must be zero-initialized by the caller (accumulating form).
  void (*matmul_ta)(const float* a, const float* b, float* c, size_t n,
                    size_t k, size_t m, size_t k0, size_t k1);

  /// y[i] += x[i]
  void (*add)(float* y, const float* x, size_t n);
  /// y[i] += a * x[i]
  void (*axpy)(float* y, float a, const float* x, size_t n);
  /// x[i] *= a
  void (*scale)(float* x, float a, size_t n);
  /// x[i] += a
  void (*add_scalar)(float* x, float a, size_t n);
  /// y[i] = s * x[i]
  void (*scaled_copy)(float* y, const float* x, float s, size_t n);
  /// g[i] = s * (p[i] - t[i])
  void (*scaled_diff)(float* g, const float* p, const float* t, float s,
                      size_t n);

  /// sum_i a[i] * b[i]
  float (*dot)(const float* a, const float* b, size_t n);
  /// sum_i x[i]
  float (*sum)(const float* x, size_t n);
  /// sum_i double(x[i])^2, accumulated in double
  double (*squared_l2)(const float* x, size_t n);
  /// Fused Conv1d backward tap: gx[i] += w * gy[i]; returns
  /// sum_i gy[i] * x[i] (the weight-gradient contribution).
  float (*conv_grad_tap)(const float* gy, const float* x, float w, float* gx,
                         size_t n);

  /// y = softmax(x) over one row of length m (max-shifted, double-
  /// accumulated normalizer; matches the original SoftmaxRows math).
  void (*softmax_row)(const float* x, float* y, size_t m);

  /// One Adam step over n contiguous elements. `lr_wd` is the
  /// double-precision product lr * weight_decay; the scalar kernel
  /// reproduces the historical mixed-double update expression exactly.
  void (*adam_update)(float* p, float* m, float* v, const float* g, size_t n,
                      float lr, float beta1, float beta2, float eps,
                      double lr_wd);

  // --- Int8 inference kernels (quantized selector forward pass). ---
  // Integer accumulation is exact, so unlike the fp32 kernels these
  // produce bitwise-identical results across every variant.

  /// q[i] = clamp(round_nearest_even(x[i] * inv_scale), -127, 127).
  /// Symmetric quantization; -128 is excluded so signed products keep
  /// the i16 headroom the AVX2 maddubs path relies on.
  void (*i8_quantize)(const float* x, float inv_scale, int8_t* q, size_t n);
  /// C[i0:i1, :] = dequant(Aq[i0:i1, :] * Bq^T) with Aq:[n,k] int8,
  /// Bq:[m,k] int8, C:[n,m] float. acc_ij is exact in int32; the fused
  /// per-output-column requantize is C[i][j] = fmaf(scale[j], acc_ij,
  /// bias[j]) (bias == nullptr drops the addend). Overwrites its output
  /// rows.
  void (*i8_matmul_tb)(const int8_t* a, const int8_t* b, float* c, size_t k,
                       size_t m, const float* scale, const float* bias,
                       size_t i0, size_t i1);
  /// sum_i a[i] * b[i], exact in int32.
  int32_t (*i8_dot)(const int8_t* a, const int8_t* b, size_t n);

  /// Human-readable int8 implementation behind this table ("i8-scalar"
  /// reference loops or "i8-maddubs"); surfaced by `kdsel version`.
  const char* i8_impl;
};

/// The active kernel table. Resolved once (CPUID best, overridable via
/// KDSEL_SIMD=scalar|generic|avx2) on first use; subsequent calls are a
/// single atomic load.
const Ops& Dispatch();

/// Variant behind Dispatch().
Variant ActiveVariant();

/// Table for a specific variant. The variant must be supported
/// (VariantSupported) — asking for an unavailable one aborts.
const Ops& GetOps(Variant v);

/// True when `v` is compiled into this binary and safe on this CPU.
bool VariantSupported(Variant v);

/// Widest supported variant (what Dispatch() picks absent KDSEL_SIMD).
Variant BestSupportedVariant();

/// Every supported variant, scalar first.
std::vector<Variant> SupportedVariants();

/// "scalar" | "generic" | "avx2" — also the accepted KDSEL_SIMD values.
const char* VariantName(Variant v);

/// Strict KDSEL_SIMD value parsing; InvalidArgument on anything other
/// than the three variant names.
StatusOr<Variant> ParseVariantName(std::string_view name);

/// Point Dispatch() at a specific supported variant (tests/bench).
void ResetDispatchForTesting(Variant v);
/// Restore the default env/CPUID resolution.
void ResetDispatchForTesting();

namespace detail {
/// Per-translation-unit kernel tables. Avx2Ops() returns nullptr when
/// the binary was built without AVX2 codegen support.
const Ops* ScalarOps();
const Ops* GenericOps();
const Ops* Avx2Ops();
}  // namespace detail

}  // namespace kdsel::nn::kernels

#endif  // KDSEL_NN_KERNELS_KERNELS_H_
