#ifndef KDSEL_NN_OPTIMIZER_H_
#define KDSEL_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace kdsel::nn {

/// Base optimizer over a fixed set of parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all gradients. Call after each Step.
  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.9,
      double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Scales gradients so their global L2 norm is at most `max_norm`
/// (the bound B_L/B_F assumed by the paper's Sect. A.1 analysis).
/// Returns the pre-clip norm.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace kdsel::nn

#endif  // KDSEL_NN_OPTIMIZER_H_
