#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace kdsel::nn {

namespace {

/// Expands an optional weight vector: empty means all ones.
float WeightAt(const std::vector<float>& weights, size_t i) {
  return weights.empty() ? 1.0f : weights[i];
}

}  // namespace

void SoftmaxCrossEntropyHard(const Tensor& logits,
                             const std::vector<int>& labels,
                             const std::vector<float>& weights,
                             LossResult* result) {
  KDSEL_CHECK(logits.rank() == 2);
  const size_t B = logits.dim(0), m = logits.dim(1);
  KDSEL_CHECK(labels.size() == B);
  KDSEL_CHECK(weights.empty() || weights.size() == B);

  const kernels::Ops& ops = kernels::Dispatch();
  Tensor probs;
  SoftmaxRows(logits, &probs);
  result->per_sample.resize(B);
  result->grad.Resize({B, m});
  const float inv_b = 1.0f / static_cast<float>(B);
  double total = 0.0;
  for (size_t i = 0; i < B; ++i) {
    const int y = labels[i];
    KDSEL_CHECK(y >= 0 && static_cast<size_t>(y) < m);
    const float* p = probs.raw() + i * m;
    const float w = WeightAt(weights, i);
    const float li = -std::log(std::max(p[static_cast<size_t>(y)], 1e-12f));
    result->per_sample[i] = li;
    total += static_cast<double>(w) * li;
    // g[j] = s * (p[j] - 1[y == j]): scaled copy of the row, then the
    // label element recomputed with the exact same expression the
    // scalar loop used.
    float* g = result->grad.raw() + i * m;
    const float s = w * inv_b;
    ops.scaled_copy(g, p, s, m);
    g[static_cast<size_t>(y)] = s * (p[static_cast<size_t>(y)] - 1.0f);
  }
  result->mean_loss = total * inv_b;
}

LossResult SoftmaxCrossEntropyHard(const Tensor& logits,
                                   const std::vector<int>& labels,
                                   const std::vector<float>& weights) {
  LossResult result;
  SoftmaxCrossEntropyHard(logits, labels, weights, &result);
  return result;
}

void SoftmaxCrossEntropySoft(const Tensor& logits, const Tensor& targets,
                             const std::vector<float>& weights,
                             LossResult* result) {
  KDSEL_CHECK(logits.rank() == 2 && SameShape(logits, targets));
  const size_t B = logits.dim(0), m = logits.dim(1);
  KDSEL_CHECK(weights.empty() || weights.size() == B);

  const kernels::Ops& ops = kernels::Dispatch();
  Tensor probs;
  SoftmaxRows(logits, &probs);
  result->per_sample.resize(B);
  result->grad.Resize({B, m});
  const float inv_b = 1.0f / static_cast<float>(B);
  double total = 0.0;
  for (size_t i = 0; i < B; ++i) {
    const float* p = probs.raw() + i * m;
    const float* t = targets.raw() + i * m;
    const float w = WeightAt(weights, i);
    double li = 0.0;
    for (size_t j = 0; j < m; ++j) {
      li -= static_cast<double>(t[j]) * std::log(std::max(p[j], 1e-12f));
    }
    result->per_sample[i] = static_cast<float>(li);
    total += w * li;
    ops.scaled_diff(result->grad.raw() + i * m, p, t, w * inv_b, m);
  }
  result->mean_loss = total * inv_b;
}

LossResult SoftmaxCrossEntropySoft(const Tensor& logits, const Tensor& targets,
                                   const std::vector<float>& weights) {
  LossResult result;
  SoftmaxCrossEntropySoft(logits, targets, weights, &result);
  return result;
}

void InfoNce(const Tensor& view_a, const Tensor& view_b, double temperature,
             const std::vector<float>& weights,
             const std::vector<size_t>& group_ids, InfoNceResult* result) {
  KDSEL_CHECK(view_a.rank() == 2 && SameShape(view_a, view_b));
  KDSEL_CHECK(temperature > 0);
  const size_t B = view_a.dim(0), H = view_a.dim(1);
  KDSEL_CHECK(weights.empty() || weights.size() == B);
  KDSEL_CHECK(group_ids.empty() || group_ids.size() == B);

  const kernels::Ops& ops = kernels::Dispatch();

  // L2-normalize rows, remembering norms and unit vectors.
  ScratchBuffer a_norm(B), b_norm(B);
  auto normalize = [&](const Tensor& x, Tensor& unit, float* norm) {
    unit.Resize({B, H});
    for (size_t i = 0; i < B; ++i) {
      const float* r = x.raw() + i * H;
      float n = static_cast<float>(std::sqrt(ops.squared_l2(r, H)));
      norm[i] = std::max(n, 1e-8f);
      float* u = unit.raw() + i * H;
      for (size_t j = 0; j < H; ++j) u[j] = r[j] / norm[i];
    }
  };
  Tensor an, bn;
  normalize(view_a, an, a_norm.data());
  normalize(view_b, bn, b_norm.data());

  const float inv_temp = static_cast<float>(1.0 / temperature);
  Tensor sim = MatMulTransposedB(an, bn);  // [B, B]
  sim.ScaleInPlace(inv_temp);

  // Mask false negatives: off-diagonal pairs from the same group (their
  // b-views are identical) drop out of both softmax denominators.
  if (!group_ids.empty()) {
    constexpr float kMasked = -1e30f;
    for (size_t i = 0; i < B; ++i) {
      for (size_t j = 0; j < B; ++j) {
        if (i != j && group_ids[i] == group_ids[j]) {
          sim.At(i, j) = kMasked;
        }
      }
    }
  }

  // Row softmax (a->b direction) and column softmax (b->a direction).
  Tensor p_row;
  SoftmaxRows(sim, &p_row);
  Tensor p_col = Transpose2D(SoftmaxRows(Transpose2D(sim)));  // col-normalized

  result->per_sample.resize(B);
  const float inv_b = 1.0f / static_cast<float>(B);
  double total = 0.0;
  // dS[i][j] accumulated from both directions.
  Tensor d_sim;
  d_sim.Resize({B, B});  // Every element written below.
  for (size_t i = 0; i < B; ++i) {
    const float w = WeightAt(weights, i);
    const float pr = std::max(p_row.At(i, i), 1e-12f);
    const float pc = std::max(p_col.At(i, i), 1e-12f);
    const float li = 0.5f * (-std::log(pr) - std::log(pc));
    result->per_sample[i] = li;
    total += static_cast<double>(w) * li;
  }
  result->mean_loss = total * inv_b;
  for (size_t i = 0; i < B; ++i) {
    for (size_t j = 0; j < B; ++j) {
      const float wi = WeightAt(weights, i);
      const float wj = WeightAt(weights, j);
      const float kron = (i == j) ? 1.0f : 0.0f;
      // Row direction: sample i's loss differentiates row i.
      float g = 0.5f * wi * inv_b * (p_row.At(i, j) - kron);
      // Column direction: sample j's loss differentiates column j.
      g += 0.5f * wj * inv_b * (p_col.At(i, j) - kron);
      d_sim.At(i, j) = g;
    }
  }

  // Back through sim = (1/temp) * an bn^T.
  Tensor d_an = MatMul(d_sim, bn);
  d_an.ScaleInPlace(inv_temp);
  Tensor d_bn = MatMulTransposedA(d_sim, an);
  d_bn.ScaleInPlace(inv_temp);

  // Back through row normalization: dx = (du - (du.u) u) / ||x||.
  auto denormalize = [&](const Tensor& du, const Tensor& unit,
                         const float* norm, Tensor& dx) {
    dx.Resize({B, H});
    for (size_t i = 0; i < B; ++i) {
      const float* durow = du.raw() + i * H;
      const float* u = unit.raw() + i * H;
      float* d = dx.raw() + i * H;
      double dot = 0.0;
      for (size_t j = 0; j < H; ++j) {
        dot += static_cast<double>(durow[j]) * u[j];
      }
      for (size_t j = 0; j < H; ++j) {
        d[j] = static_cast<float>((durow[j] - dot * u[j]) / norm[i]);
      }
    }
  };
  denormalize(d_an, an, a_norm.data(), result->grad_a);
  denormalize(d_bn, bn, b_norm.data(), result->grad_b);
}

InfoNceResult InfoNce(const Tensor& view_a, const Tensor& view_b,
                      double temperature, const std::vector<float>& weights,
                      const std::vector<size_t>& group_ids) {
  InfoNceResult result;
  InfoNce(view_a, view_b, temperature, weights, group_ids, &result);
  return result;
}

}  // namespace kdsel::nn
