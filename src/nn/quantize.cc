#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "nn/kernels/kernels.h"

namespace kdsel::nn {

namespace {

/// Row-chunk size mirroring tensor.cc's MatMul chunking: ~32K MACs per
/// chunk, depending only on the operand shapes.
size_t RowGrain(size_t rows, size_t work_per_row) {
  constexpr size_t kTargetWorkPerChunk = size_t{1} << 15;
  if (work_per_row == 0) return std::max<size_t>(1, rows);
  const size_t grain = kTargetWorkPerChunk / work_per_row;
  return std::max<size_t>(1, std::min(grain == 0 ? 1 : grain, rows));
}

}  // namespace

std::vector<Quantizable*> CollectQuantizableLayers(Module& module) {
  std::vector<Quantizable*> layers;
  module.CollectQuantizable(&layers);
  return layers;
}

std::vector<float> CollectActivationScales(
    const std::vector<Quantizable*>& layers) {
  std::vector<float> flat;
  for (Quantizable* q : layers) {
    const std::vector<float> scales = q->ActivationScales();
    flat.insert(flat.end(), scales.begin(), scales.end());
  }
  return flat;
}

Status ApplyActivationScales(const std::vector<Quantizable*>& layers,
                             const std::vector<float>& flat) {
  size_t expected = 0;
  for (Quantizable* q : layers) expected += q->NumActivationScales();
  if (flat.size() != expected) {
    return Status::InvalidArgument(
        "activation scale count mismatch: got " + std::to_string(flat.size()) +
        ", model needs " + std::to_string(expected));
  }
  for (float s : flat) {
    if (!(s > 0.0f) || !std::isfinite(s)) {
      return Status::InvalidArgument(
          "activation scales must be finite and > 0");
    }
  }
  size_t off = 0;
  for (Quantizable* q : layers) {
    const size_t count = q->NumActivationScales();
    q->QuantizeWithScales(
        std::vector<float>(flat.begin() + static_cast<ptrdiff_t>(off),
                           flat.begin() + static_cast<ptrdiff_t>(off + count)));
    off += count;
  }
  return Status::OK();
}

float AbsMax(const float* x, size_t n) {
  float mx = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > mx) mx = a;
  }
  return mx;
}

float QuantScaleFromAbsMax(float absmax) {
  return absmax > 0.0f ? absmax / 127.0f : 1.0f;
}

void QuantizeWeightRows(const float* w, size_t rows, size_t k, float act_scale,
                        int8_t* q, float* requant_scale) {
  const kernels::Ops& ops = kernels::Dispatch();
  for (size_t r = 0; r < rows; ++r) {
    const float* wrow = w + r * k;
    const float w_scale = QuantScaleFromAbsMax(AbsMax(wrow, k));
    ops.i8_quantize(wrow, 1.0f / w_scale, q + r * k, k);
    requant_scale[r] = act_scale * w_scale;
  }
}

void I8MatMulTbParallel(const int8_t* a, const int8_t* b, float* c, size_t n,
                        size_t k, size_t m, const float* scale,
                        const float* bias) {
  const kernels::Ops& ops = kernels::Dispatch();
  ParallelFor(n, RowGrain(n, k * m), [&](size_t begin, size_t end) {
    ops.i8_matmul_tb(a, b, c, k, m, scale, bias, begin, end);
  });
}

}  // namespace kdsel::nn
