#include "nn/conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "nn/kernels/kernels.h"
#include "nn/workspace.h"
#include "obs/trace.h"

namespace kdsel::nn {

namespace {

// Backward shards gradient accumulation over batch chunks. The shard
// count depends only on the batch size (never on the thread count), and
// the shards are reduced serially in ascending order, so gradients are
// bitwise-identical at any KDSEL_THREADS setting.
constexpr size_t kMaxGradShards = 16;

size_t BatchGrain(size_t batch) {
  return std::max<size_t>(1, (batch + kMaxGradShards - 1) / kMaxGradShards);
}

}  // namespace

Conv1d::Conv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
               Rng& rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      use_bias_(use_bias),
      weight_("conv1d.weight",
              Tensor({out_channels, in_channels, kernel_size})),
      bias_("conv1d.bias", Tensor({out_channels})) {
  KDSEL_CHECK(kernel_size >= 1);
  InitHeNormal(weight_.value, in_channels * kernel_size, rng);
}

std::vector<Parameter*> Conv1d::Parameters() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Conv1d::Forward(const Tensor& input, bool training) {
  KDSEL_SPAN("nn.conv1d.forward");
  KDSEL_CHECK(input.rank() == 3 && input.dim(1) == in_channels_);
  if (!training) {
    if (calibrating_) {
      act_absmax_ = std::max(act_absmax_, AbsMax(input.raw(), input.size()));
    } else if (quantized_) {
      return ForwardInt8(input);
    }
  }
  cached_input_ = input;
  const size_t B = input.dim(0), L = input.dim(2);
  const size_t K = kernel_size_;
  const ptrdiff_t pad = static_cast<ptrdiff_t>((K - 1) / 2);
  Tensor out({B, out_channels_, L});
  const kernels::Ops& ops = kernels::Dispatch();
  const float* x = input.raw();
  const float* w = weight_.value.raw();
  float* y = out.raw();
  // Each batch item writes a disjoint slice of `out`, so batch-parallel
  // execution is race-free and bitwise-deterministic. Each kernel tap is
  // an axpy over the valid [t_lo, t_hi) range of the shifted input row.
  ParallelFor(B, 1, [&](size_t b_begin, size_t b_end) {
  for (size_t b = b_begin; b < b_end; ++b) {
    const float* xb = x + b * in_channels_ * L;
    float* yb = y + b * out_channels_ * L;
    for (size_t co = 0; co < out_channels_; ++co) {
      float* yrow = yb + co * L;
      const float* wco = w + co * in_channels_ * K;
      for (size_t ci = 0; ci < in_channels_; ++ci) {
        const float* xrow = xb + ci * L;
        const float* wk = wco + ci * K;
        for (size_t k = 0; k < K; ++k) {
          const ptrdiff_t shift = static_cast<ptrdiff_t>(k) - pad;
          const size_t t_lo = shift < 0 ? static_cast<size_t>(-shift) : 0;
          const size_t t_hi =
              shift > 0 ? L - static_cast<size_t>(shift) : L;
          ops.axpy(yrow + t_lo, wk[k],
                   xrow + static_cast<size_t>(static_cast<ptrdiff_t>(t_lo) +
                                              shift),
                   t_hi - t_lo);
        }
      }
      if (use_bias_) ops.add_scalar(yrow, bias_.value[co], L);
    }
  }
  });
  return out;
}

Tensor Conv1d::ForwardInt8(const Tensor& input) {
  KDSEL_SPAN("nn.conv1d.forward_int8");
  const size_t B = input.dim(0), L = input.dim(2);
  const size_t K = kernel_size_;
  const size_t CK = in_channels_ * K;
  const ptrdiff_t pad = static_cast<ptrdiff_t>((K - 1) / 2);
  Tensor out;
  out.Resize({B, out_channels_, L});
  const kernels::Ops& ops = kernels::Dispatch();
  const float* x = input.raw();
  float* y = out.raw();
  const float inv_scale = 1.0f / act_scale_;
  const float* bias = use_bias_ ? bias_.value.raw() : nullptr;
  // im2col per batch item: quantize [C_in, L] once, then gather the K
  // taps of each output position into a [L, C_in*K] int8 row block and
  // run the dequantizing matmul against the [C_out, C_in*K] weights.
  // Each batch item writes a disjoint slice of `out`, so batch-parallel
  // execution stays race-free and bitwise-deterministic; the int8
  // accumulation itself is exact, so chunking cannot change results.
  ParallelFor(B, 1, [&](size_t b_begin, size_t b_end) {
    // Pool-backed scratch (4 int8 lanes per float slot), per chunk.
    ScratchBuffer xq_buf((in_channels_ * L + 3) / 4);
    ScratchBuffer col_buf((L * CK + 3) / 4);
    ScratchBuffer tile(L * out_channels_);  // [L, C_out] pre-transpose
    int8_t* xq = reinterpret_cast<int8_t*>(xq_buf.data());
    int8_t* col = reinterpret_cast<int8_t*>(col_buf.data());
    for (size_t b = b_begin; b < b_end; ++b) {
      ops.i8_quantize(x + b * in_channels_ * L, inv_scale, xq,
                      in_channels_ * L);
      for (size_t t = 0; t < L; ++t) {
        int8_t* crow = col + t * CK;
        for (size_t ci = 0; ci < in_channels_; ++ci) {
          const int8_t* xrow = xq + ci * L;
          for (size_t k = 0; k < K; ++k) {
            const ptrdiff_t src =
                static_cast<ptrdiff_t>(t) + static_cast<ptrdiff_t>(k) - pad;
            crow[ci * K + k] =
                (src >= 0 && src < static_cast<ptrdiff_t>(L))
                    ? xrow[static_cast<size_t>(src)]
                    : int8_t{0};
          }
        }
      }
      ops.i8_matmul_tb(col, weight_q_.data(), tile.data(), CK, out_channels_,
                       requant_scale_.data(), bias, 0, L);
      float* yb = y + b * out_channels_ * L;
      for (size_t t = 0; t < L; ++t) {
        const float* trow = tile.data() + t * out_channels_;
        for (size_t co = 0; co < out_channels_; ++co) yb[co * L + t] = trow[co];
      }
    }
  });
  return out;
}

void Conv1d::BeginQuantCalibration() {
  ClearQuantization();
  calibrating_ = true;
}

void Conv1d::EndQuantCalibration() {
  QuantizeWithScales({QuantScaleFromAbsMax(act_absmax_)});
}

std::vector<float> Conv1d::ActivationScales() const {
  KDSEL_CHECK(quantized_);
  return {act_scale_};
}

void Conv1d::QuantizeWithScales(const std::vector<float>& scales) {
  KDSEL_CHECK(scales.size() == 1 && scales[0] > 0.0f);
  act_scale_ = scales[0];
  const size_t CK = in_channels_ * kernel_size_;
  weight_q_.resize(out_channels_ * CK);
  requant_scale_.resize(out_channels_);
  // Weight rows [C_out, C_in, K] are contiguous [C_out, C_in*K] blocks —
  // exactly the im2col contraction layout.
  QuantizeWeightRows(weight_.value.raw(), out_channels_, CK, act_scale_,
                     weight_q_.data(), requant_scale_.data());
  calibrating_ = false;
  quantized_ = true;
}

void Conv1d::ClearQuantization() {
  quantized_ = false;
  calibrating_ = false;
  act_absmax_ = 0.0f;
  act_scale_ = 0.0f;
  weight_q_.clear();
  weight_q_.shrink_to_fit();
  requant_scale_.clear();
  requant_scale_.shrink_to_fit();
}

Tensor Conv1d::Backward(const Tensor& grad_output) {
  KDSEL_SPAN("nn.conv1d.backward");
  const size_t B = cached_input_.dim(0), L = cached_input_.dim(2);
  const size_t K = kernel_size_;
  KDSEL_CHECK(grad_output.rank() == 3 && grad_output.dim(0) == B &&
              grad_output.dim(1) == out_channels_ && grad_output.dim(2) == L);
  const ptrdiff_t pad = static_cast<ptrdiff_t>((K - 1) / 2);
  Tensor grad_input({B, in_channels_, L});
  const float* x = cached_input_.raw();
  const float* gy = grad_output.raw();
  const float* w = weight_.value.raw();
  float* gx = grad_input.raw();

  // grad_input slices are disjoint per batch item, but weight/bias
  // gradients reduce across the batch: each batch chunk accumulates into
  // its own scratch shard, reduced serially below in ascending shard
  // order so the result is independent of the thread count.
  const kernels::Ops& ops = kernels::Dispatch();
  const size_t wsize = out_channels_ * in_channels_ * K;
  const size_t grain = BatchGrain(B);
  const size_t shards = ParallelChunkCount(B, grain);
  ScratchBuffer gw_scratch(shards * wsize);
  gw_scratch.Zero();
  ScratchBuffer gb_scratch(use_bias_ ? shards * out_channels_ : 0);
  gb_scratch.Zero();

  ParallelFor(B, grain, [&](size_t b_begin, size_t b_end) {
  const size_t shard = b_begin / grain;
  float* gw = gw_scratch.data() + shard * wsize;
  float* gb = use_bias_ ? gb_scratch.data() + shard * out_channels_ : nullptr;
  for (size_t b = b_begin; b < b_end; ++b) {
    const float* xb = x + b * in_channels_ * L;
    const float* gyb = gy + b * out_channels_ * L;
    float* gxb = gx + b * in_channels_ * L;
    for (size_t co = 0; co < out_channels_; ++co) {
      const float* gyrow = gyb + co * L;
      const float* wco = w + co * in_channels_ * K;
      float* gwco = gw + co * in_channels_ * K;
      if (use_bias_) gb[co] += ops.sum(gyrow, L);
      for (size_t ci = 0; ci < in_channels_; ++ci) {
        const float* xrow = xb + ci * L;
        float* gxrow = gxb + ci * L;
        const float* wk = wco + ci * K;
        float* gwk = gwco + ci * K;
        for (size_t k = 0; k < K; ++k) {
          const ptrdiff_t shift = static_cast<ptrdiff_t>(k) - pad;
          const size_t t_lo = shift < 0 ? static_cast<size_t>(-shift) : 0;
          const size_t t_hi = shift > 0 ? L - static_cast<size_t>(shift) : L;
          const size_t src_lo =
              static_cast<size_t>(static_cast<ptrdiff_t>(t_lo) + shift);
          // Fused tap: accumulates the weight gradient and scatters the
          // input gradient in one pass over the valid range.
          gwk[k] += ops.conv_grad_tap(gyrow + t_lo, xrow + src_lo, wk[k],
                                      gxrow + src_lo, t_hi - t_lo);
        }
      }
    }
  }
  });

  float* gw_out = weight_.grad.raw();
  for (size_t shard = 0; shard < shards; ++shard) {
    ops.add(gw_out, gw_scratch.data() + shard * wsize, wsize);
    if (use_bias_) {
      ops.add(bias_.grad.raw(), gb_scratch.data() + shard * out_channels_,
              out_channels_);
    }
  }
  return grad_input;
}

BatchNorm1d::BatchNorm1d(size_t num_features, double momentum, double eps)
    : num_features_(num_features),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor::Full({num_features}, 1.0f)),
      beta_("bn.beta", Tensor({num_features})),
      running_mean_({num_features}),
      running_var_(Tensor::Full({num_features}, 1.0f)) {}

Tensor BatchNorm1d::Forward(const Tensor& input, bool training) {
  KDSEL_CHECK(input.rank() == 2 || input.rank() == 3);
  const bool has_length = input.rank() == 3;
  const size_t B = input.dim(0);
  const size_t C = has_length ? input.dim(1) : input.dim(1);
  KDSEL_CHECK(C == num_features_);
  const size_t L = has_length ? input.dim(2) : 1;
  const size_t n = B * L;
  cached_shape_ = input.shape();

  mean_scratch_.assign(C, 0.0);
  var_scratch_.assign(C, 0.0);
  std::vector<double>& mean = mean_scratch_;
  std::vector<double>& var = var_scratch_;
  if (training) {
    for (size_t b = 0; b < B; ++b) {
      for (size_t c = 0; c < C; ++c) {
        const float* row = input.raw() + (b * C + c) * L;
        double acc = 0.0;
        for (size_t t = 0; t < L; ++t) acc += row[t];
        mean[c] += acc;
      }
    }
    for (size_t c = 0; c < C; ++c) mean[c] /= static_cast<double>(n);
    for (size_t b = 0; b < B; ++b) {
      for (size_t c = 0; c < C; ++c) {
        const float* row = input.raw() + (b * C + c) * L;
        double acc = 0.0;
        for (size_t t = 0; t < L; ++t) {
          double d = row[t] - mean[c];
          acc += d * d;
        }
        var[c] += acc;
      }
    }
    for (size_t c = 0; c < C; ++c) var[c] /= static_cast<double>(n);
    for (size_t c = 0; c < C; ++c) {
      running_mean_[c] = static_cast<float>(
          (1 - momentum_) * running_mean_[c] + momentum_ * mean[c]);
      running_var_[c] = static_cast<float>(
          (1 - momentum_) * running_var_[c] + momentum_ * var[c]);
    }
  } else {
    for (size_t c = 0; c < C; ++c) {
      mean[c] = running_mean_[c];
      var[c] = running_var_[c];
    }
  }

  cached_inv_std_.assign(C, 0.0);
  for (size_t c = 0; c < C; ++c) {
    cached_inv_std_[c] = 1.0 / std::sqrt(var[c] + eps_);
  }

  Tensor out;
  out.Resize(input.shape());  // Every element written below.
  cached_xhat_.Resize(input.shape());
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* row = input.raw() + (b * C + c) * L;
      float* xh = cached_xhat_.raw() + (b * C + c) * L;
      float* o = out.raw() + (b * C + c) * L;
      const float g = gamma_.value[c], bb = beta_.value[c];
      const double m = mean[c], is = cached_inv_std_[c];
      for (size_t t = 0; t < L; ++t) {
        xh[t] = static_cast<float>((row[t] - m) * is);
        o[t] = g * xh[t] + bb;
      }
    }
  }
  if (!training) cached_xhat_ = Tensor();  // No backward at inference.
  return out;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(!cached_xhat_.empty());
  KDSEL_CHECK(grad_output.shape() == cached_shape_);
  const bool has_length = cached_shape_.size() == 3;
  const size_t B = cached_shape_[0];
  const size_t C = cached_shape_[1];
  const size_t L = has_length ? cached_shape_[2] : 1;
  const double n = static_cast<double>(B * L);

  // Standard BN backward:
  // dxhat = dy * gamma
  // dx = (1/N) * inv_std * (N*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
  sum_dy_scratch_.assign(C, 0.0);
  sum_dy_xhat_scratch_.assign(C, 0.0);
  std::vector<double>& sum_dy = sum_dy_scratch_;
  std::vector<double>& sum_dy_xhat = sum_dy_xhat_scratch_;
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* gy = grad_output.raw() + (b * C + c) * L;
      const float* xh = cached_xhat_.raw() + (b * C + c) * L;
      double a = 0.0, d = 0.0;
      for (size_t t = 0; t < L; ++t) {
        a += gy[t];
        d += static_cast<double>(gy[t]) * xh[t];
      }
      sum_dy[c] += a;
      sum_dy_xhat[c] += d;
    }
  }
  for (size_t c = 0; c < C; ++c) {
    beta_.grad[c] += static_cast<float>(sum_dy[c]);
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat[c]);
  }

  Tensor grad_input;
  grad_input.Resize(cached_shape_);  // Every element written below.
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* gy = grad_output.raw() + (b * C + c) * L;
      const float* xh = cached_xhat_.raw() + (b * C + c) * L;
      float* gx = grad_input.raw() + (b * C + c) * L;
      const double g = gamma_.value[c];
      const double is = cached_inv_std_[c];
      for (size_t t = 0; t < L; ++t) {
        double dxhat = gy[t] * g;
        gx[t] = static_cast<float>(
            is * (dxhat - sum_dy[c] * g / n - xh[t] * sum_dy_xhat[c] * g / n));
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool1d::Forward(const Tensor& input, bool /*training*/) {
  KDSEL_CHECK(input.rank() == 3);
  cached_shape_ = input.shape();
  const size_t B = input.dim(0), C = input.dim(1), L = input.dim(2);
  Tensor out({B, C});
  const float inv = 1.0f / static_cast<float>(L);
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* row = input.raw() + (b * C + c) * L;
      float acc = 0.0f;
      for (size_t t = 0; t < L; ++t) acc += row[t];
      out[b * C + c] = acc * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool1d::Backward(const Tensor& grad_output) {
  const size_t B = cached_shape_[0], C = cached_shape_[1],
               L = cached_shape_[2];
  KDSEL_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == B &&
              grad_output.dim(1) == C);
  Tensor grad_input(cached_shape_);
  const float inv = 1.0f / static_cast<float>(L);
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float g = grad_output[b * C + c] * inv;
      float* row = grad_input.raw() + (b * C + c) * L;
      for (size_t t = 0; t < L; ++t) row[t] = g;
    }
  }
  return grad_input;
}

Tensor MaxPool1dSame::Forward(const Tensor& input, bool /*training*/) {
  KDSEL_CHECK(input.rank() == 3);
  cached_input_ = input;
  const size_t B = input.dim(0), C = input.dim(1), L = input.dim(2);
  Tensor out(input.shape());
  argmax_.assign(B * C * L, 0);
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* row = input.raw() + (b * C + c) * L;
      float* orow = out.raw() + (b * C + c) * L;
      int32_t* arow = argmax_.data() + (b * C + c) * L;
      for (size_t t = 0; t < L; ++t) {
        size_t lo = t > 0 ? t - 1 : 0;
        size_t hi = std::min(L - 1, t + 1);
        size_t best = lo;
        for (size_t u = lo + 1; u <= hi; ++u) {
          if (row[u] > row[best]) best = u;
        }
        orow[t] = row[best];
        arow[t] = static_cast<int32_t>(best);
      }
    }
  }
  return out;
}

Tensor MaxPool1dSame::Backward(const Tensor& grad_output) {
  KDSEL_CHECK(SameShape(grad_output, cached_input_));
  const size_t B = cached_input_.dim(0), C = cached_input_.dim(1),
               L = cached_input_.dim(2);
  Tensor grad_input(cached_input_.shape());
  for (size_t b = 0; b < B; ++b) {
    for (size_t c = 0; c < C; ++c) {
      const float* gy = grad_output.raw() + (b * C + c) * L;
      float* gx = grad_input.raw() + (b * C + c) * L;
      const int32_t* arow = argmax_.data() + (b * C + c) * L;
      for (size_t t = 0; t < L; ++t) {
        gx[static_cast<size_t>(arow[t])] += gy[t];
      }
    }
  }
  return grad_input;
}

}  // namespace kdsel::nn
