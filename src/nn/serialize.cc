#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace kdsel::nn {

namespace {

constexpr uint32_t kMagic = 0x4b44534cu;  // "KDSL"

void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Collects value tensors of parameters plus state tensors.
std::vector<const Tensor*> CollectTensors(Module& module) {
  std::vector<const Tensor*> tensors;
  for (Parameter* p : module.Parameters()) tensors.push_back(&p->value);
  for (Tensor* t : module.StateTensors()) tensors.push_back(t);
  return tensors;
}

std::vector<Tensor*> CollectMutableTensors(Module& module) {
  std::vector<Tensor*> tensors;
  for (Parameter* p : module.Parameters()) tensors.push_back(&p->value);
  for (Tensor* t : module.StateTensors()) tensors.push_back(t);
  return tensors;
}

}  // namespace

Status AppendTensorsToStream(const std::vector<const Tensor*>& tensors,
                             std::string& out) {
  AppendU32(out, kMagic);
  AppendU64(out, tensors.size());
  for (const Tensor* t : tensors) {
    AppendU32(out, static_cast<uint32_t>(t->rank()));
    for (size_t d : t->shape()) AppendU64(out, d);
    out.append(reinterpret_cast<const char*>(t->raw()),
               t->size() * sizeof(float));
  }
  return Status::OK();
}

Status WriteTensors(const std::vector<const Tensor*>& tensors,
                    const std::string& path) {
  std::string blob;
  KDSEL_RETURN_NOT_OK(AppendTensorsToStream(tensors, blob));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<Tensor>> ReadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  auto read_u32 = [&](uint32_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  auto read_u64 = [&](uint64_t* v) {
    in.read(reinterpret_cast<char*>(v), sizeof(*v));
    return static_cast<bool>(in);
  };
  uint32_t magic = 0;
  if (!read_u32(&magic) || magic != kMagic) {
    return Status::IoError("bad magic in " + path);
  }
  uint64_t count = 0;
  if (!read_u64(&count)) return Status::IoError("truncated header");
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!read_u32(&rank) || rank == 0 || rank > 4) {
      return Status::IoError("bad tensor rank");
    }
    std::vector<size_t> shape(rank);
    size_t total = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!read_u64(&dim)) return Status::IoError("truncated shape");
      shape[d] = static_cast<size_t>(dim);
      total *= shape[d];
    }
    std::vector<float> data(total);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(total * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor payload");
    tensors.emplace_back(std::move(shape), std::move(data));
  }
  return tensors;
}

Status SaveModule(Module& module, const std::string& path) {
  return WriteTensors(CollectTensors(module), path);
}

Status LoadModule(Module& module, const std::string& path) {
  KDSEL_ASSIGN_OR_RETURN(auto tensors, ReadTensors(path));
  auto targets = CollectMutableTensors(module);
  if (tensors.size() != targets.size()) {
    return Status::FailedPrecondition(
        "tensor count mismatch: model architecture differs from checkpoint");
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (tensors[i].shape() != targets[i]->shape()) {
      return Status::FailedPrecondition("tensor shape mismatch at index " +
                                        std::to_string(i));
    }
    *targets[i] = std::move(tensors[i]);
  }
  return Status::OK();
}

}  // namespace kdsel::nn
