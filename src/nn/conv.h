#ifndef KDSEL_NN_CONV_H_
#define KDSEL_NN_CONV_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "nn/quantize.h"

namespace kdsel::nn {

/// 1-D convolution over [B, C_in, L] -> [B, C_out, L] with stride 1 and
/// "same" zero padding (pad = (K-1)/2 left, K/2 right for even K).
/// Supports int8 inference via im2col (nn/quantize.h): symmetric scales
/// make the zero padding exact (zero-point 0), so the int8 path sees the
/// same padded taps as fp32.
class Conv1d : public Module, public Quantizable {
 public:
  Conv1d(size_t in_channels, size_t out_channels, size_t kernel_size,
         Rng& rng, bool use_bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  void CollectQuantizable(std::vector<Quantizable*>* out) override {
    out->push_back(this);
  }

  void BeginQuantCalibration() override;
  void EndQuantCalibration() override;
  size_t NumActivationScales() const override { return 1; }
  std::vector<float> ActivationScales() const override;
  void QuantizeWithScales(const std::vector<float>& scales) override;
  void ClearQuantization() override;
  bool IsQuantized() const override { return quantized_; }

  size_t in_channels() const { return in_channels_; }
  size_t out_channels() const { return out_channels_; }
  size_t kernel_size() const { return kernel_size_; }

 private:
  Tensor ForwardInt8(const Tensor& input);

  size_t in_channels_;
  size_t out_channels_;
  size_t kernel_size_;
  bool use_bias_;
  Parameter weight_;  // [C_out, C_in, K]
  Parameter bias_;    // [C_out]
  Tensor cached_input_;
  // Int8 inference state; empty/false unless quantized.
  bool quantized_ = false;
  bool calibrating_ = false;
  float act_absmax_ = 0.0f;
  float act_scale_ = 0.0f;
  std::vector<int8_t> weight_q_;      // [C_out, C_in*K]
  std::vector<float> requant_scale_;  // [C_out]
};

/// Batch normalization over the channel dimension. Accepts [B, C, L]
/// (per-channel stats over B*L) or [B, F] (per-feature stats over B).
class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(size_t num_features, double momentum = 0.1,
                       double eps = 1e-5);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> StateTensors() override {
    return {&running_mean_, &running_var_};
  }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  /// Exposed mutably for serialization (running stats are state, not
  /// parameters, but must persist with the model).
  Tensor& mutable_running_mean() { return running_mean_; }
  Tensor& mutable_running_var() { return running_var_; }

 private:
  size_t num_features_;
  double momentum_;
  double eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // Forward cache for backward.
  Tensor cached_xhat_;
  std::vector<double> cached_inv_std_;
  Shape cached_shape_;
  // Reused per-call stat scratch (capacity persists across batches so
  // steady-state training stays allocation-free).
  std::vector<double> mean_scratch_, var_scratch_;
  std::vector<double> sum_dy_scratch_, sum_dy_xhat_scratch_;
};

/// Global average pooling: [B, C, L] -> [B, C].
class GlobalAvgPool1d : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Shape cached_shape_;
};

/// Max pooling with window 3, stride 1, same padding: [B,C,L] -> [B,C,L].
/// (Used by the InceptionTime max-pool branch.)
class MaxPool1dSame : public Module {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
  std::vector<int32_t> argmax_;
};

}  // namespace kdsel::nn

#endif  // KDSEL_NN_CONV_H_
