#include "features/features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"

namespace kdsel::features {

namespace {

const char* kFeatureNames[] = {
    "mean",
    "std",
    "min",
    "max",
    "median",
    "q25",
    "q75",
    "iqr",
    "skewness",
    "kurtosis",
    "abs_energy",
    "mean_abs_change",
    "mean_change",
    "max_abs_change",
    "zero_cross_rate",
    "mean_cross_rate",
    "count_above_mean",
    "longest_strike_above_mean",
    "longest_strike_below_mean",
    "first_loc_max",
    "first_loc_min",
    "autocorr_lag1",
    "autocorr_lag2",
    "autocorr_lag4",
    "autocorr_lag8",
    "partial_range_1",  // range of first half
    "partial_range_2",  // range of second half
    "cid_ce",
    "c3",
    "binned_entropy",
    "num_peaks",
    "var_of_diff",
    "ratio_beyond_1sigma",
    "ratio_beyond_2sigma",
    "time_reversal_asymmetry",
    "abs_sum_of_changes",
    "last_minus_first",
    "rms",
    "mad",
};

double Quantile(const std::vector<float>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return (1 - frac) * sorted[lo] + frac * sorted[hi];
}

double Autocorr(const float* v, size_t n, double mean, double var, size_t lag,
                bool degenerate) {
  if (n <= lag || degenerate) return 0.0;
  double acc = 0.0;
  for (size_t i = lag; i < n; ++i) {
    acc += (v[i] - mean) * (v[i - lag] - mean);
  }
  return acc / (var * static_cast<double>(n - lag));
}

}  // namespace

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const char* name : kFeatureNames) n.push_back(name);
    return n;
  }();
  return names;
}

size_t FeatureCount() { return FeatureNames().size(); }

bool DegenerateVariance(double var, double mean) {
  // Relative threshold: a window at level ~1e3 carries ~1e-4 of float
  // quantization noise in its variance, which an absolute 1e-12 cutoff
  // would treat as structure.
  return !(var > 1e-12 * (1.0 + mean * mean));
}

void ExtractFeaturesInto(const float* v, size_t n, FeatureScratch& scratch,
                         float* out) {
  KDSEL_CHECK(n >= 4);
  size_t k = 0;

  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += v[i];
  mean /= static_cast<double>(n);
  double var = 0.0, m3 = 0.0, m4 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = v[i] - mean;
    var += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  var /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  const double stddev = std::sqrt(var);
  const bool degenerate = DegenerateVariance(var, mean);

  std::vector<float>& sorted = scratch.sorted;
  sorted.assign(v, v + n);
  std::sort(sorted.begin(), sorted.end());
  const double median = Quantile(sorted, 0.5);
  const double q25 = Quantile(sorted, 0.25);
  const double q75 = Quantile(sorted, 0.75);

  out[k++] = static_cast<float>(mean);
  out[k++] = static_cast<float>(stddev);
  out[k++] = sorted.front();
  out[k++] = sorted.back();
  out[k++] = static_cast<float>(median);
  out[k++] = static_cast<float>(q25);
  out[k++] = static_cast<float>(q75);
  out[k++] = static_cast<float>(q75 - q25);
  out[k++] = static_cast<float>(degenerate ? 0.0 : m3 / (var * stddev));
  out[k++] = static_cast<float>(degenerate ? 0.0 : m4 / (var * var) - 3.0);

  double abs_energy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    abs_energy += static_cast<double>(v[i]) * v[i];
  }
  out[k++] = static_cast<float>(abs_energy / static_cast<double>(n));

  double sum_abs_change = 0.0, sum_change = 0.0, max_abs_change = 0.0;
  double var_diff = 0.0, mean_diff = 0.0;
  for (size_t i = 1; i < n; ++i) {
    double d = static_cast<double>(v[i]) - v[i - 1];
    sum_abs_change += std::abs(d);
    sum_change += d;
    max_abs_change = std::max(max_abs_change, std::abs(d));
    mean_diff += d;
  }
  mean_diff /= static_cast<double>(n - 1);
  for (size_t i = 1; i < n; ++i) {
    double d = static_cast<double>(v[i]) - v[i - 1] - mean_diff;
    var_diff += d * d;
  }
  var_diff /= static_cast<double>(n - 1);
  out[k++] = static_cast<float>(sum_abs_change / static_cast<double>(n - 1));
  out[k++] = static_cast<float>(sum_change / static_cast<double>(n - 1));
  out[k++] = static_cast<float>(max_abs_change);

  size_t zero_cross = 0, mean_cross = 0;
  for (size_t i = 1; i < n; ++i) {
    if ((v[i] >= 0) != (v[i - 1] >= 0)) ++zero_cross;
    if ((v[i] >= mean) != (v[i - 1] >= mean)) ++mean_cross;
  }
  out[k++] = static_cast<float>(zero_cross) / static_cast<float>(n - 1);
  out[k++] = static_cast<float>(mean_cross) / static_cast<float>(n - 1);

  size_t above = 0, strike_above = 0, strike_below = 0;
  size_t cur_above = 0, cur_below = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] > mean) {
      ++above;
      ++cur_above;
      cur_below = 0;
    } else {
      ++cur_below;
      cur_above = 0;
    }
    strike_above = std::max(strike_above, cur_above);
    strike_below = std::max(strike_below, cur_below);
  }
  out[k++] = static_cast<float>(above) / static_cast<float>(n);
  out[k++] = static_cast<float>(strike_above) / static_cast<float>(n);
  out[k++] = static_cast<float>(strike_below) / static_cast<float>(n);

  size_t argmax = 0, argmin = 0;
  for (size_t i = 1; i < n; ++i) {
    if (v[i] > v[argmax]) argmax = i;
    if (v[i] < v[argmin]) argmin = i;
  }
  out[k++] = static_cast<float>(argmax) / static_cast<float>(n);
  out[k++] = static_cast<float>(argmin) / static_cast<float>(n);

  out[k++] = static_cast<float>(Autocorr(v, n, mean, var, 1, degenerate));
  out[k++] = static_cast<float>(Autocorr(v, n, mean, var, 2, degenerate));
  out[k++] = static_cast<float>(Autocorr(v, n, mean, var, 4, degenerate));
  out[k++] = static_cast<float>(Autocorr(v, n, mean, var, 8, degenerate));

  auto range_of = [&](size_t begin, size_t end) {
    float lo = v[begin], hi = v[begin];
    for (size_t i = begin; i < end; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    return hi - lo;
  };
  out[k++] = range_of(0, n / 2);
  out[k++] = range_of(n / 2, n);

  // CID complexity estimate: sqrt(sum of squared diffs).
  double cid = 0.0;
  for (size_t i = 1; i < n; ++i) {
    double d = static_cast<double>(v[i]) - v[i - 1];
    cid += d * d;
  }
  out[k++] = static_cast<float>(std::sqrt(cid));

  // c3 nonlinearity statistic, lag 1.
  double c3 = 0.0;
  if (n > 2) {
    for (size_t i = 2; i < n; ++i) {
      c3 += static_cast<double>(v[i]) * v[i - 1] * v[i - 2];
    }
    c3 /= static_cast<double>(n - 2);
  }
  out[k++] = static_cast<float>(c3);

  // Binned entropy over 10 equi-width bins.
  {
    constexpr size_t kBins = 10;
    double lo = sorted.front(), hi = sorted.back();
    double entropy = 0.0;
    if (hi - lo > 1e-12) {
      double hist[kBins] = {};
      for (size_t i = 0; i < n; ++i) {
        size_t b = static_cast<size_t>((v[i] - lo) / (hi - lo) * kBins);
        hist[std::min(b, kBins - 1)] += 1.0;
      }
      for (double h : hist) {
        if (h > 0) {
          double p = h / static_cast<double>(n);
          entropy -= p * std::log(p);
        }
      }
    }
    out[k++] = static_cast<float>(entropy);
  }

  // Peaks: local maxima with support 1.
  size_t peaks = 0;
  for (size_t i = 1; i + 1 < n; ++i) {
    if (v[i] > v[i - 1] && v[i] > v[i + 1]) ++peaks;
  }
  out[k++] = static_cast<float>(peaks) / static_cast<float>(n);
  out[k++] = static_cast<float>(var_diff);

  // Beyond-sigma ratios are 0 by contract for degenerate windows: with
  // stddev ~ 0 the count reduces to |x - mean| > 0, which float rounding
  // of the mean turns into "all points" for a constant series.
  size_t beyond1 = 0, beyond2 = 0;
  if (!degenerate) {
    for (size_t i = 0; i < n; ++i) {
      double d = std::abs(v[i] - mean);
      if (d > stddev) ++beyond1;
      if (d > 2 * stddev) ++beyond2;
    }
  }
  out[k++] = static_cast<float>(beyond1) / static_cast<float>(n);
  out[k++] = static_cast<float>(beyond2) / static_cast<float>(n);

  // Time-reversal asymmetry statistic, lag 1.
  double tra = 0.0;
  if (n > 2) {
    for (size_t i = 0; i + 2 < n; ++i) {
      double a = v[i + 2], b = v[i + 1], c = v[i];
      tra += a * a * b - b * c * c;
    }
    tra /= static_cast<double>(n - 2);
  }
  out[k++] = static_cast<float>(tra);
  out[k++] = static_cast<float>(sum_abs_change);
  out[k++] = v[n - 1] - v[0];
  out[k++] = static_cast<float>(std::sqrt(abs_energy / double(n)));

  // Median absolute deviation.
  {
    std::vector<float>& dev = scratch.dev;
    dev.resize(n);
    for (size_t i = 0; i < n; ++i) {
      dev[i] = std::abs(v[i] - static_cast<float>(median));
    }
    std::sort(dev.begin(), dev.end());
    out[k++] = static_cast<float>(Quantile(dev, 0.5));
  }

  KDSEL_CHECK(k == FeatureCount());
  for (size_t i = 0; i < k; ++i) {
    if (!std::isfinite(out[i])) out[i] = 0.0f;
  }
}

std::vector<float> ExtractFeatures(const std::vector<float>& v) {
  std::vector<float> f(FeatureCount());
  FeatureScratch scratch;
  ExtractFeaturesInto(v.data(), v.size(), scratch, f.data());
  return f;
}

std::vector<std::vector<float>> ExtractFeaturesBatch(
    const std::vector<std::vector<float>>& windows) {
  std::vector<std::vector<float>> rows(windows.size());
  ParallelFor(windows.size(), 8, [&](size_t begin, size_t end) {
    FeatureScratch scratch;
    for (size_t i = begin; i < end; ++i) {
      rows[i].resize(FeatureCount());
      ExtractFeaturesInto(windows[i].data(), windows[i].size(), scratch,
                          rows[i].data());
    }
  });
  return rows;
}

void FeatureScaler::Fit(const std::vector<std::vector<float>>& rows) {
  KDSEL_CHECK(!rows.empty());
  const size_t d = rows[0].size();
  mean.assign(d, 0.0f);
  inv_std.assign(d, 1.0f);
  std::vector<double> m(d, 0.0), s(d, 0.0);
  for (const auto& r : rows) {
    for (size_t j = 0; j < d; ++j) m[j] += r[j];
  }
  for (size_t j = 0; j < d; ++j) m[j] /= static_cast<double>(rows.size());
  for (const auto& r : rows) {
    for (size_t j = 0; j < d; ++j) {
      double diff = r[j] - m[j];
      s[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    double stddev = std::sqrt(s[j] / static_cast<double>(rows.size()));
    mean[j] = static_cast<float>(m[j]);
    inv_std[j] = static_cast<float>(stddev > 1e-9 ? 1.0 / stddev : 0.0);
  }
}

std::vector<float> FeatureScaler::Transform(
    const std::vector<float>& row) const {
  KDSEL_CHECK(row.size() == mean.size());
  std::vector<float> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean[j]) * inv_std[j];
  }
  return out;
}

std::vector<std::vector<float>> FeatureScaler::TransformBatch(
    const std::vector<std::vector<float>>& rows) const {
  std::vector<std::vector<float>> out(rows.size());
  ParallelFor(rows.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = Transform(rows[i]);
  });
  return out;
}

}  // namespace kdsel::features
