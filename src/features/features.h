#ifndef KDSEL_FEATURES_FEATURES_H_
#define KDSEL_FEATURES_FEATURES_H_

#include <string>
#include <vector>

namespace kdsel::features {

/// Names of the extracted features, in extraction order.
const std::vector<std::string>& FeatureNames();

/// Number of features produced by ExtractFeatures.
size_t FeatureCount();

/// TSFresh-style statistical features of one subsequence (the paper's
/// feature-based baselines run TSFresh + a classical classifier).
/// Covers moments, order statistics, autocorrelation structure,
/// complexity, and run-length statistics — enough signal for the
/// KNN/SVC/AdaBoost/RandomForest baselines to be competitive.
std::vector<float> ExtractFeatures(const std::vector<float>& window);

/// Extracts features for many windows: result is [N][FeatureCount()].
std::vector<std::vector<float>> ExtractFeaturesBatch(
    const std::vector<std::vector<float>>& windows);

/// Per-column z-normalization parameters learned from training rows so
/// train/test share one scaling (classical-classifier hygiene).
struct FeatureScaler {
  std::vector<float> mean;
  std::vector<float> inv_std;

  void Fit(const std::vector<std::vector<float>>& rows);
  std::vector<float> Transform(const std::vector<float>& row) const;
  std::vector<std::vector<float>> TransformBatch(
      const std::vector<std::vector<float>>& rows) const;
};

}  // namespace kdsel::features

#endif  // KDSEL_FEATURES_FEATURES_H_
