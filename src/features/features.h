#ifndef KDSEL_FEATURES_FEATURES_H_
#define KDSEL_FEATURES_FEATURES_H_

#include <cstddef>
#include <string>
#include <vector>

namespace kdsel::features {

/// Names of the extracted features, in extraction order.
const std::vector<std::string>& FeatureNames();

/// Number of features produced by ExtractFeatures.
size_t FeatureCount();

/// True when a window's variance is too small — relative to its mean's
/// magnitude — for variance-normalized statistics to be meaningful.
/// Constant and near-constant windows land here: float rounding makes the
/// computed mean differ from the constant by a few ulps, so absolute
/// epsilon checks (and the raw beyond-sigma counts) misfire. For such
/// windows skewness, kurtosis, the autocorrelation lags, and the
/// beyond-sigma ratios are defined as exactly 0; the batch and streaming
/// extractors both honor this contract.
bool DegenerateVariance(double var, double mean);

/// Reusable temporaries for ExtractFeaturesInto. Reserve(n) once with the
/// maximum window length and every subsequent extraction of length <= n
/// is heap-allocation-free (the streaming ingest path depends on this).
struct FeatureScratch {
  std::vector<float> sorted;
  std::vector<float> dev;

  void Reserve(size_t n) {
    sorted.reserve(n);
    dev.reserve(n);
  }
};

/// Allocation-free core of ExtractFeatures: writes exactly FeatureCount()
/// values to `out`, using `scratch` for sorting temporaries. Requires
/// n >= 4.
void ExtractFeaturesInto(const float* window, size_t n,
                         FeatureScratch& scratch, float* out);

/// TSFresh-style statistical features of one subsequence (the paper's
/// feature-based baselines run TSFresh + a classical classifier).
/// Covers moments, order statistics, autocorrelation structure,
/// complexity, and run-length statistics — enough signal for the
/// KNN/SVC/AdaBoost/RandomForest baselines to be competitive.
std::vector<float> ExtractFeatures(const std::vector<float>& window);

/// Extracts features for many windows: result is [N][FeatureCount()].
std::vector<std::vector<float>> ExtractFeaturesBatch(
    const std::vector<std::vector<float>>& windows);

/// Per-column z-normalization parameters learned from training rows so
/// train/test share one scaling (classical-classifier hygiene).
struct FeatureScaler {
  std::vector<float> mean;
  std::vector<float> inv_std;

  void Fit(const std::vector<std::vector<float>>& rows);
  std::vector<float> Transform(const std::vector<float>& row) const;
  std::vector<std::vector<float>> TransformBatch(
      const std::vector<std::vector<float>>& rows) const;
};

}  // namespace kdsel::features

#endif  // KDSEL_FEATURES_FEATURES_H_
