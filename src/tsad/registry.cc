#include "tsad/detector.h"

#include "tsad/density.h"
#include "tsad/iforest.h"
#include "tsad/matrix_profile.h"
#include "tsad/nn_detectors.h"
#include "tsad/norma.h"
#include "tsad/ocsvm.h"
#include "tsad/pca.h"
#include "tsad/predictors.h"

namespace kdsel::tsad {

const std::vector<std::string>& CanonicalModelNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "IForest", "IForest1", "LOF",     "HBOS", "MP",   "NORMA",
      "PCA",     "AE",       "LSTM-AD", "POLY", "CNN",  "OCSVM",
  };
  return *names;
}

StatusOr<std::unique_ptr<Detector>> BuildDetector(const std::string& name,
                                                  uint64_t seed) {
  if (name == "IForest") {
    IForestDetector::Options o;
    o.seed = seed;
    return std::unique_ptr<Detector>(new IForestDetector(o));
  }
  if (name == "IForest1") {
    IForestDetector::Options o;
    o.window = 1;
    o.seed = seed ^ 0x1;
    return std::unique_ptr<Detector>(new IForestDetector(o));
  }
  if (name == "LOF") {
    return std::unique_ptr<Detector>(new LofDetector(LofDetector::Options{}));
  }
  if (name == "HBOS") {
    return std::unique_ptr<Detector>(
        new HbosDetector(HbosDetector::Options{}));
  }
  if (name == "MP") {
    return std::unique_ptr<Detector>(
        new MatrixProfileDetector(MatrixProfileDetector::Options{}));
  }
  if (name == "NORMA") {
    NormaDetector::Options o;
    o.seed = seed ^ 0x2;
    return std::unique_ptr<Detector>(new NormaDetector(o));
  }
  if (name == "PCA") {
    PcaDetector::Options o;
    o.seed = seed ^ 0x3;
    return std::unique_ptr<Detector>(new PcaDetector(o));
  }
  if (name == "AE") {
    AutoencoderDetector::Options o;
    o.seed = seed ^ 0x4;
    return std::unique_ptr<Detector>(new AutoencoderDetector(o));
  }
  if (name == "LSTM-AD") {
    LstmAdDetector::Options o;
    o.seed = seed ^ 0x5;
    return std::unique_ptr<Detector>(new LstmAdDetector(o));
  }
  if (name == "POLY") {
    return std::unique_ptr<Detector>(
        new PolyDetector(PolyDetector::Options{}));
  }
  if (name == "CNN") {
    CnnDetector::Options o;
    o.seed = seed ^ 0x6;
    return std::unique_ptr<Detector>(new CnnDetector(o));
  }
  if (name == "OCSVM") {
    OcsvmDetector::Options o;
    o.seed = seed ^ 0x7;
    return std::unique_ptr<Detector>(new OcsvmDetector(o));
  }
  return Status::NotFound("unknown TSAD model: " + name);
}

std::vector<std::unique_ptr<Detector>> BuildDefaultModelSet(uint64_t seed) {
  std::vector<std::unique_ptr<Detector>> models;
  for (const std::string& name : CanonicalModelNames()) {
    auto detector = BuildDetector(name, seed);
    KDSEL_CHECK(detector.ok());
    models.push_back(std::move(detector).value());
  }
  return models;
}

}  // namespace kdsel::tsad
