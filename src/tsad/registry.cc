#include "tsad/detector.h"

#include <memory>
#include <utility>

#include "tsad/density.h"
#include "tsad/iforest.h"
#include "tsad/matrix_profile.h"
#include "tsad/nn_detectors.h"
#include "tsad/norma.h"
#include "tsad/ocsvm.h"
#include "tsad/pca.h"
#include "tsad/predictors.h"

namespace kdsel::tsad {

const std::vector<std::string>& CanonicalModelNames() {
  static const std::vector<std::string> names{
      "IForest", "IForest1", "LOF",     "HBOS", "MP",   "NORMA",
      "PCA",     "AE",       "LSTM-AD", "POLY", "CNN",  "OCSVM",
  };
  return names;
}

namespace {

/// make_unique with the base-typed return BuildDetector needs (a raw
/// unique_ptr<Derived> would take two user-defined conversions to reach
/// StatusOr<unique_ptr<Detector>>).
template <typename T, typename... Args>
std::unique_ptr<Detector> MakeDetector(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

StatusOr<std::unique_ptr<Detector>> BuildDetector(const std::string& name,
                                                  uint64_t seed) {
  if (name == "IForest") {
    IForestDetector::Options o;
    o.seed = seed;
    return MakeDetector<IForestDetector>(o);
  }
  if (name == "IForest1") {
    IForestDetector::Options o;
    o.window = 1;
    o.seed = seed ^ 0x1;
    return MakeDetector<IForestDetector>(o);
  }
  if (name == "LOF") {
    return MakeDetector<LofDetector>(LofDetector::Options{});
  }
  if (name == "HBOS") {
    return MakeDetector<HbosDetector>(HbosDetector::Options{});
  }
  if (name == "MP") {
    return MakeDetector<MatrixProfileDetector>(MatrixProfileDetector::Options{});
  }
  if (name == "NORMA") {
    NormaDetector::Options o;
    o.seed = seed ^ 0x2;
    return MakeDetector<NormaDetector>(o);
  }
  if (name == "PCA") {
    PcaDetector::Options o;
    o.seed = seed ^ 0x3;
    return MakeDetector<PcaDetector>(o);
  }
  if (name == "AE") {
    AutoencoderDetector::Options o;
    o.seed = seed ^ 0x4;
    return MakeDetector<AutoencoderDetector>(o);
  }
  if (name == "LSTM-AD") {
    LstmAdDetector::Options o;
    o.seed = seed ^ 0x5;
    return MakeDetector<LstmAdDetector>(o);
  }
  if (name == "POLY") {
    return MakeDetector<PolyDetector>(PolyDetector::Options{});
  }
  if (name == "CNN") {
    CnnDetector::Options o;
    o.seed = seed ^ 0x6;
    return MakeDetector<CnnDetector>(o);
  }
  if (name == "OCSVM") {
    OcsvmDetector::Options o;
    o.seed = seed ^ 0x7;
    return MakeDetector<OcsvmDetector>(o);
  }
  return Status::NotFound("unknown TSAD model: " + name);
}

std::vector<std::unique_ptr<Detector>> BuildDefaultModelSet(uint64_t seed) {
  std::vector<std::unique_ptr<Detector>> models;
  for (const std::string& name : CanonicalModelNames()) {
    auto detector = BuildDetector(name, seed);
    KDSEL_CHECK(detector.ok());
    models.push_back(std::move(detector).value());
  }
  return models;
}

}  // namespace kdsel::tsad
