#ifndef KDSEL_TSAD_PREDICTORS_H_
#define KDSEL_TSAD_PREDICTORS_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// Polynomial-approximation detector (POLY): fits a least-squares
/// polynomial of degree `degree` to each length-`window` history and
/// extrapolates one step; the absolute forecast residual is the score.
/// Because the time grid is identical for every window, the projection
/// reduces to a single precomputed coefficient vector, making scoring
/// O(n * window).
class PolyDetector : public Detector {
 public:
  struct Options {
    size_t window = 16;
    size_t degree = 3;
  };

  explicit PolyDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "POLY"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

/// LSTM forecasting detector (LSTM-AD): a single-layer LSTM trained with
/// truncated BPTT to predict the next value from the preceding window;
/// forecast error is the anomaly score. Trained on a prefix of the
/// series (predominantly normal), scored everywhere.
class LstmAdDetector : public Detector {
 public:
  struct Options {
    size_t window = 24;
    size_t hidden = 12;
    size_t epochs = 12;
    size_t max_train_windows = 384;
    double learning_rate = 2e-2;
    double train_fraction = 0.6;  ///< Prefix of the series used to train.
    uint64_t seed = 23;
  };

  explicit LstmAdDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "LSTM-AD"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_PREDICTORS_H_
