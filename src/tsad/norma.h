#ifndef KDSEL_TSAD_NORMA_H_
#define KDSEL_TSAD_NORMA_H_

#include "tsad/detector.h"

namespace kdsel::tsad {

/// NormA-style detector (Boniol et al.): summarizes the series' normal
/// behaviour as a weighted set of cluster centroids over z-normalized
/// subsequences, then scores each subsequence by its weighted distance
/// to that normal model (larger = more anomalous).
class NormaDetector : public Detector {
 public:
  struct Options {
    size_t window = 32;
    size_t num_clusters = 4;
    size_t kmeans_iters = 25;
    uint64_t seed = 11;
  };

  explicit NormaDetector(const Options& options) : options_(options) {}

  std::string name() const override { return "NORMA"; }
  StatusOr<std::vector<float>> Score(
      const ts::TimeSeries& series) const override;

 private:
  Options options_;
};

}  // namespace kdsel::tsad

#endif  // KDSEL_TSAD_NORMA_H_
