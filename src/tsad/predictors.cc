#include "tsad/predictors.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "tsad/util.h"

namespace kdsel::tsad {

namespace {

/// Solves the symmetric positive-definite system A x = b in place via
/// Gaussian elimination with partial pivoting. A is d x d row-major.
bool SolveLinearSystem(std::vector<double>& a, std::vector<double>& b,
                       size_t d) {
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r * d + col]) > std::abs(a[pivot * d + col])) pivot = r;
    }
    if (std::abs(a[pivot * d + col]) < 1e-12) return false;
    if (pivot != col) {
      for (size_t cc = 0; cc < d; ++cc) std::swap(a[col * d + cc], a[pivot * d + cc]);
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * d + col];
    for (size_t r = col + 1; r < d; ++r) {
      const double f = a[r * d + col] * inv;
      if (f == 0.0) continue;
      for (size_t cc = col; cc < d; ++cc) a[r * d + cc] -= f * a[col * d + cc];
      b[r] -= f * b[col];
    }
  }
  for (size_t col = d; col-- > 0;) {
    double acc = b[col];
    for (size_t cc = col + 1; cc < d; ++cc) acc -= a[col * d + cc] * b[cc];
    b[col] = acc / a[col * d + col];
  }
  return true;
}

}  // namespace

StatusOr<std::vector<float>> PolyDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  const size_t d = options_.degree + 1;
  const size_t n = series.length();
  if (n < 2 * w || w <= d) {
    return Status::InvalidArgument("series too short (or window <= degree)");
  }
  // Vandermonde on a [-1, 1] grid; prediction point at the next step.
  auto t_of = [&](size_t i) {
    return -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(w - 1);
  };
  std::vector<double> vmat(w * d);
  for (size_t i = 0; i < w; ++i) {
    double p = 1.0;
    for (size_t k = 0; k < d; ++k) {
      vmat[i * d + k] = p;
      p *= t_of(i);
    }
  }
  const double t_pred = t_of(w);  // One step past the window.
  std::vector<double> v_pred(d);
  {
    double p = 1.0;
    for (size_t k = 0; k < d; ++k) {
      v_pred[k] = p;
      p *= t_pred;
    }
  }
  // c = V (V^T V + ridge I)^{-1} v_pred, so pred(window y) = c . y.
  std::vector<double> vtv(d * d, 0.0);
  for (size_t i = 0; i < w; ++i) {
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) {
        vtv[a * d + b] += vmat[i * d + a] * vmat[i * d + b];
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) vtv[a * d + b] = vtv[b * d + a];
    vtv[a * d + a] += 1e-9;  // tiny ridge for numerical safety
  }
  std::vector<double> alpha = v_pred;  // becomes (V^T V)^{-1} v_pred
  if (!SolveLinearSystem(vtv, alpha, d)) {
    return Status::Internal("singular Vandermonde normal equations");
  }
  std::vector<double> coeff(w);
  for (size_t i = 0; i < w; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < d; ++k) acc += vmat[i * d + k] * alpha[k];
    coeff[i] = acc;
  }

  const auto& v = series.values();
  std::vector<float> scores(n, 0.0f);
  for (size_t t = w; t < n; ++t) {
    double pred = 0.0;
    for (size_t i = 0; i < w; ++i) pred += coeff[i] * v[t - w + i];
    scores[t] = static_cast<float>(std::abs(v[t] - pred));
  }
  for (size_t i = 0; i < w; ++i) scores[i] = scores[w];
  MinMaxNormalize(scores);
  return scores;
}

namespace {

/// A single-layer LSTM with scalar input and linear readout, implemented
/// with explicit BPTT. Gate order in packed matrices: i, f, g, o.
class ScalarLstm {
 public:
  ScalarLstm(size_t hidden, uint64_t seed) : h_(hidden), rng_(seed) {
    auto init = [&](std::vector<double>& v, size_t n, double scale) {
      v.resize(n);
      for (double& x : v) x = rng_.Normal(0.0, scale);
    };
    const double s = 1.0 / std::sqrt(static_cast<double>(h_));
    init(wx_, 4 * h_, 0.5);
    init(wh_, 4 * h_ * h_, s);
    b_.assign(4 * h_, 0.0);
    // Forget-gate bias of 1 (standard trick for gradient flow).
    for (size_t j = 0; j < h_; ++j) b_[h_ + j] = 1.0;
    init(wy_, h_, s);
    by_ = 0.0;
    InitAdam();
  }

  /// Runs the window, predicts the next value, and (if training)
  /// backpropagates the squared-error loss. Returns the prediction.
  double Step(const float* window, size_t w, double target, bool train) {
    // Forward with full caches.
    std::vector<std::vector<double>> hs(w + 1, std::vector<double>(h_, 0.0));
    std::vector<std::vector<double>> cs(w + 1, std::vector<double>(h_, 0.0));
    std::vector<std::vector<double>> gates(w, std::vector<double>(4 * h_));
    for (size_t t = 0; t < w; ++t) {
      const double x = window[t];
      auto& g = gates[t];
      for (size_t j = 0; j < 4 * h_; ++j) {
        double acc = b_[j] + wx_[j] * x;
        const double* wrow = wh_.data() + j * h_;
        for (size_t k = 0; k < h_; ++k) acc += wrow[k] * hs[t][k];
        g[j] = acc;
      }
      for (size_t j = 0; j < h_; ++j) {
        const double i_g = Sigmoid(g[j]);
        const double f_g = Sigmoid(g[h_ + j]);
        const double g_g = std::tanh(g[2 * h_ + j]);
        const double o_g = Sigmoid(g[3 * h_ + j]);
        cs[t + 1][j] = f_g * cs[t][j] + i_g * g_g;
        hs[t + 1][j] = o_g * std::tanh(cs[t + 1][j]);
        // Overwrite with activated values for backward.
        g[j] = i_g;
        g[h_ + j] = f_g;
        g[2 * h_ + j] = g_g;
        g[3 * h_ + j] = o_g;
      }
    }
    double pred = by_;
    for (size_t j = 0; j < h_; ++j) pred += wy_[j] * hs[w][j];
    if (!train) return pred;

    // Backward.
    const double dl = 2.0 * (pred - target);
    std::vector<double> dwx(4 * h_, 0.0), dwh(4 * h_ * h_, 0.0),
        db(4 * h_, 0.0), dwy(h_, 0.0);
    double dby = dl;
    std::vector<double> dh(h_, 0.0), dc(h_, 0.0);
    for (size_t j = 0; j < h_; ++j) {
      dwy[j] = dl * hs[w][j];
      dh[j] = dl * wy_[j];
    }
    for (size_t t = w; t-- > 0;) {
      const auto& g = gates[t];
      std::vector<double> dgate(4 * h_);
      for (size_t j = 0; j < h_; ++j) {
        const double i_g = g[j], f_g = g[h_ + j], g_g = g[2 * h_ + j],
                     o_g = g[3 * h_ + j];
        const double tc = std::tanh(cs[t + 1][j]);
        const double dc_t = dc[j] + dh[j] * o_g * (1 - tc * tc);
        dgate[j] = dc_t * g_g * i_g * (1 - i_g);              // d(pre-i)
        dgate[h_ + j] = dc_t * cs[t][j] * f_g * (1 - f_g);    // d(pre-f)
        dgate[2 * h_ + j] = dc_t * i_g * (1 - g_g * g_g);     // d(pre-g)
        dgate[3 * h_ + j] = dh[j] * tc * o_g * (1 - o_g);     // d(pre-o)
        dc[j] = dc_t * f_g;
      }
      const double x = window[t];
      std::fill(dh.begin(), dh.end(), 0.0);
      for (size_t j = 0; j < 4 * h_; ++j) {
        const double dg = dgate[j];
        if (dg == 0.0) continue;
        dwx[j] += dg * x;
        db[j] += dg;
        double* dwrow = dwh.data() + j * h_;
        const double* wrow = wh_.data() + j * h_;
        for (size_t k = 0; k < h_; ++k) {
          dwrow[k] += dg * hs[t][k];
          dh[k] += dg * wrow[k];
        }
      }
    }
    AdamUpdate(dwx, dwh, db, dwy, dby);
    return pred;
  }

  void set_lr(double lr) { lr_ = lr; }

 private:
  static double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

  void InitAdam() {
    mwx_.assign(wx_.size(), 0.0);
    vwx_.assign(wx_.size(), 0.0);
    mwh_.assign(wh_.size(), 0.0);
    vwh_.assign(wh_.size(), 0.0);
    mb_.assign(b_.size(), 0.0);
    vb_.assign(b_.size(), 0.0);
    mwy_.assign(wy_.size(), 0.0);
    vwy_.assign(wy_.size(), 0.0);
    mby_ = vby_ = 0.0;
  }

  void AdamUpdate(const std::vector<double>& dwx,
                  const std::vector<double>& dwh,
                  const std::vector<double>& db,
                  const std::vector<double>& dwy, double dby) {
    ++t_;
    const double bc1 = 1 - std::pow(0.9, t_), bc2 = 1 - std::pow(0.999, t_);
    const double alpha = lr_ * std::sqrt(bc2) / bc1;
    auto upd = [&](std::vector<double>& p, const std::vector<double>& g,
                   std::vector<double>& m, std::vector<double>& v) {
      for (size_t i = 0; i < p.size(); ++i) {
        const double gi = std::clamp(g[i], -5.0, 5.0);
        m[i] = 0.9 * m[i] + 0.1 * gi;
        v[i] = 0.999 * v[i] + 0.001 * gi * gi;
        p[i] -= alpha * m[i] / (std::sqrt(v[i]) + 1e-8);
      }
    };
    upd(wx_, dwx, mwx_, vwx_);
    upd(wh_, dwh, mwh_, vwh_);
    upd(b_, db, mb_, vb_);
    upd(wy_, dwy, mwy_, vwy_);
    const double gby = std::clamp(dby, -5.0, 5.0);
    mby_ = 0.9 * mby_ + 0.1 * gby;
    vby_ = 0.999 * vby_ + 0.001 * gby * gby;
    by_ -= alpha * mby_ / (std::sqrt(vby_) + 1e-8);
  }

  size_t h_;
  Rng rng_;
  double lr_ = 1e-2;
  int64_t t_ = 0;
  std::vector<double> wx_, wh_, b_, wy_;
  double by_ = 0.0;
  std::vector<double> mwx_, vwx_, mwh_, vwh_, mb_, vb_, mwy_, vwy_;
  double mby_ = 0.0, vby_ = 0.0;
};

}  // namespace

StatusOr<std::vector<float>> LstmAdDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  const size_t n = series.length();
  if (n < 2 * w + 4) {
    return Status::InvalidArgument("series too short for LSTM-AD");
  }
  std::vector<float> z(series.values());
  ts::ZNormalize(z);

  ScalarLstm lstm(options_.hidden, options_.seed ^ 0x9e3779b97f4a7c15ull);
  lstm.set_lr(options_.learning_rate);

  // Train on the leading fraction of the series (assumed mostly normal).
  const size_t train_end = std::max(
      2 * w, static_cast<size_t>(options_.train_fraction * double(n)));
  const size_t n_pairs = std::min(train_end, n) - w;
  Rng rng(options_.seed);
  const size_t n_train = std::min(options_.max_train_windows, n_pairs);
  auto order = rng.Sample(n_pairs, n_train);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start : order) {
      lstm.Step(z.data() + start, w, z[start + w], /*train=*/true);
    }
  }

  std::vector<float> scores(n, 0.0f);
  for (size_t t = w; t < n; ++t) {
    const double pred = lstm.Step(z.data() + (t - w), w, 0.0, /*train=*/false);
    scores[t] = static_cast<float>(std::abs(z[t] - pred));
  }
  for (size_t i = 0; i < w; ++i) scores[i] = scores[w];
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
