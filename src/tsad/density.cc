#include "tsad/density.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tsad/util.h"

namespace kdsel::tsad {

StatusOr<std::vector<float>> LofDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t w = options_.window;
  if (series.length() < w + options_.k + 1) {
    return Status::InvalidArgument("series too short for LOF");
  }
  auto rows = EmbedWindows(series, w, /*z_normalize=*/false);
  const size_t n = rows.size();
  const size_t k = std::min(options_.k, n - 1);

  // k nearest neighbours (exact, O(n^2)).
  std::vector<std::vector<std::pair<float, size_t>>> knn(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::pair<float, size_t>> dists;
    dists.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.emplace_back(
          static_cast<float>(std::sqrt(SquaredDistance(rows[i], rows[j]))), j);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<ptrdiff_t>(k - 1),
                     dists.end());
    dists.resize(k);
    std::sort(dists.begin(), dists.end());
    knn[i] = std::move(dists);
  }

  // k-distance of each row, then local reachability density.
  std::vector<float> kdist(n);
  for (size_t i = 0; i < n; ++i) kdist[i] = knn[i].back().first;
  std::vector<float> lrd(n);
  for (size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (auto [d, j] : knn[i]) {
      reach_sum += std::max(d, kdist[j]);
    }
    lrd[i] = static_cast<float>(static_cast<double>(k) /
                                std::max(reach_sum, 1e-12));
  }
  std::vector<float> lof(n);
  for (size_t i = 0; i < n; ++i) {
    double ratio_sum = 0.0;
    for (auto [d, j] : knn[i]) ratio_sum += lrd[j];
    lof[i] = static_cast<float>(ratio_sum /
                                (static_cast<double>(k) * std::max(lrd[i], 1e-12f)));
  }
  auto scores = WindowToPointScores(lof, w, series.length());
  MinMaxNormalize(scores);
  return scores;
}

StatusOr<std::vector<float>> HbosDetector::Score(
    const ts::TimeSeries& series) const {
  const size_t n = series.length();
  const size_t lags = options_.lag_features;
  if (n < options_.num_bins + lags + 1) {
    return Status::InvalidArgument("series too short for HBOS");
  }
  const auto& v = series.values();

  // One histogram per feature (value and `lags` lagged differences);
  // HBOS multiplies per-feature inverse densities (sums logs).
  std::vector<float> scores(n, 0.0f);
  auto add_feature_scores = [&](const std::vector<float>& feat,
                                size_t offset) {
    auto [lo_it, hi_it] = std::minmax_element(feat.begin(), feat.end());
    float lo = *lo_it, hi = *hi_it;
    if (hi - lo < 1e-12f) return;
    std::vector<double> hist(options_.num_bins, 0.0);
    auto bin_of = [&](float x) {
      size_t b = static_cast<size_t>((x - lo) / (hi - lo) *
                                     static_cast<float>(options_.num_bins));
      return std::min(b, options_.num_bins - 1);
    };
    for (float x : feat) hist[bin_of(x)] += 1.0;
    for (double& h : hist) h /= static_cast<double>(feat.size());
    for (size_t i = 0; i < feat.size(); ++i) {
      double h = std::max(hist[bin_of(feat[i])], 1e-6);
      scores[i + offset] += static_cast<float>(-std::log(h));
    }
  };

  add_feature_scores(v, 0);
  for (size_t lag = 1; lag <= lags; ++lag) {
    std::vector<float> diff(n - lag);
    for (size_t i = lag; i < n; ++i) diff[i - lag] = v[i] - v[i - lag];
    add_feature_scores(diff, lag);
  }
  MinMaxNormalize(scores);
  return scores;
}

}  // namespace kdsel::tsad
